//! Reader antennas with per-port hardware phase offsets.
//!
//! Each antenna port of a real reader adds its own constant phase
//! (`θ_reader(Aⁱ)` in the paper, §IV-C): cable lengths and front-end paths
//! differ. The paper removes these by a one-time pre-deployment
//! calibration; `rfp-core::calibration` implements that procedure against
//! this model.

use rfp_geom::AntennaPose;

/// One reader antenna: pose plus the port's constant hardware phase offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Antenna {
    /// Physical pose (position, boresight, polarization frame).
    pub pose: AntennaPose,
    /// Constant hardware phase offset of this port + cable, radians.
    /// Invariant once the system is assembled (paper §IV-C).
    pub hardware_phase_offset: f64,
}

impl Antenna {
    /// An antenna with the given pose and offset.
    pub fn new(pose: AntennaPose, hardware_phase_offset: f64) -> Self {
        Antenna { pose, hardware_phase_offset }
    }

    /// An antenna with a perfectly calibrated (zero) port offset.
    pub fn calibrated(pose: AntennaPose) -> Self {
        Antenna { pose, hardware_phase_offset: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::{Vec2, Vec3};

    #[test]
    fn constructors() {
        let pose = AntennaPose::planar(Vec2::new(0.0, 0.0), Vec2::new(0.0, 1.0), 0.2);
        let a = Antenna::new(pose, 0.7);
        assert_eq!(a.hardware_phase_offset, 0.7);
        assert_eq!(a.pose.position(), Vec3::new(0.0, 0.0, 0.0));
        let c = Antenna::calibrated(pose);
        assert_eq!(c.hardware_phase_offset, 0.0);
    }
}
