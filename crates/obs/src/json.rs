//! A minimal JSON value type with a canonical serializer and a
//! recursive-descent parser — the vendored-offline substitute for a JSON
//! crate, sized to what run reports and bench snapshots need.
//!
//! * Objects preserve insertion order (they are `Vec<(String, Value)>`),
//!   so serialization is deterministic and reports diff cleanly.
//! * Numbers are `f64`; integers are printed without a fractional part
//!   when exactly representable (counters stay readable). Values above
//!   2⁵³ lose precision — far beyond any counter this workspace produces.
//! * The serializer is canonical: parsing its output and re-serializing
//!   reproduces it byte-for-byte (the round-trip the report tests pin).

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (see the module docs for integer handling).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion-ordered.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes with 2-space indentation and a trailing newline — the
    /// canonical on-disk form of every report and snapshot.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes to a single line with no whitespace (no trailing
    /// newline) — the canonical form of one JSONL record, e.g. a
    /// telemetry frame. Same escaping and number formatting as
    /// [`to_pretty`](Self::to_pretty), so the two forms parse to the same
    /// value.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&format_number(*n)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => out.push_str(&format_number(*n)),
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                newline_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] with a byte offset on malformed input (including
    /// trailing garbage).
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

/// Canonical number formatting: integers without a fractional part,
/// non-finite values (not valid JSON) as `null`-safe `0`, everything else
/// via the shortest `f64` round-trip form.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Inf/NaN; reports sanitize before serializing, this
        // is only a safety net.
        return "0".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        // `{}` on f64 always includes a '.', an 'e', or is integral —
        // integral was handled above, so `s` re-parses exactly.
        s
    }
}

fn newline_indent(out: &mut String, indent: usize) {
    out.push('\n');
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII number characters");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_canonically() {
        let v = JsonValue::obj(vec![
            ("schema_version", JsonValue::Num(1.0)),
            ("name", JsonValue::Str("solver \"x\"\n".into())),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "values",
                JsonValue::Arr(vec![
                    JsonValue::Num(0.5),
                    JsonValue::Num(-3.0),
                    JsonValue::Num(1e-9),
                    JsonValue::Num(123456789.0),
                ]),
            ),
            ("empty_arr", JsonValue::Arr(vec![])),
            ("empty_obj", JsonValue::Obj(vec![])),
        ]);
        let text = v.to_pretty();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(parsed.to_pretty(), text, "serializer is canonical");
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::Num(42.0).to_pretty(), "42\n");
        assert_eq!(JsonValue::Num(-7.0).to_pretty(), "-7\n");
        assert_eq!(JsonValue::Num(2.5).to_pretty(), "2.5\n");
    }

    #[test]
    fn compact_form_is_one_line_and_parses_to_the_same_value() {
        let v = JsonValue::obj(vec![
            ("tick", JsonValue::Num(3.0)),
            ("name", JsonValue::Str("frame \"x\"".into())),
            ("counts", JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.5)])),
            ("empty", JsonValue::Obj(vec![])),
            ("none", JsonValue::Null),
        ]);
        let line = v.to_compact();
        assert!(!line.contains('\n'), "compact form must be one line: {line}");
        assert_eq!(
            line,
            "{\"tick\":3,\"name\":\"frame \\\"x\\\"\",\"counts\":[1,2.5],\"empty\":{},\"none\":null}"
        );
        assert_eq!(JsonValue::parse(&line).unwrap(), v);
    }

    #[test]
    fn accessors() {
        let v = JsonValue::obj(vec![("k", JsonValue::Num(3.0))]);
        assert_eq!(v.get("k").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("k").and_then(JsonValue::as_f64), Some(3.0));
        assert!(v.get("missing").is_none());
        assert_eq!(JsonValue::Str("s".into()).as_str(), Some("s"));
        assert!(JsonValue::Num(-1.0).as_u64().is_none());
        assert!(JsonValue::Num(0.5).as_u64().is_none());
    }

    #[test]
    fn parse_errors_carry_offsets() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated", "1 2"] {
            let e = JsonValue::parse(bad).unwrap_err();
            assert!(!e.to_string().is_empty(), "input {bad:?}");
        }
    }

    #[test]
    fn parses_escapes_and_whitespace() {
        let v = JsonValue::parse(" { \"a\\n\" : [ 1 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(
            v,
            JsonValue::Obj(vec![(
                "a\n".into(),
                JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Str("A".into())])
            )])
        );
    }
}
