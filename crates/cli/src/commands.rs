//! The CLI subcommands, written as library functions so they are testable
//! without spawning the binary.

use crate::log::{SurveyLog, TagTruth};
use rfp_core::calibration::{CalibrationDb, DeviceCalibration};
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_core::{RfPrism, SenseError, WarmStart};
use rfp_geom::{angle, Region2, Vec2};
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};
use std::fmt::Write as _;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CommandError {
    /// Bad command-line usage; the string is the usage text to print.
    Usage(String),
    /// A file could not be read/written.
    Io(std::io::Error),
    /// A survey log failed to parse.
    Log(crate::log::LogError),
    /// A calibration database failed to parse.
    Calibration(rfp_core::calibration::DbParseError),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Usage(u) => write!(f, "{u}"),
            CommandError::Io(e) => write!(f, "io error: {e}"),
            CommandError::Log(e) => write!(f, "survey log: {e}"),
            CommandError::Calibration(e) => write!(f, "calibration db: {e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<crate::log::LogError> for CommandError {
    fn from(e: crate::log::LogError) -> Self {
        CommandError::Log(e)
    }
}

/// Tiny flag parser: `--key value` pairs after the subcommand.
pub fn parse_flags(args: &[String]) -> Result<Vec<(String, String)>, CommandError> {
    let mut out = Vec::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            return Err(CommandError::Usage(format!("unexpected argument `{k}`")));
        };
        let Some(v) = it.next() else {
            return Err(CommandError::Usage(format!("flag `--{key}` needs a value")));
        };
        out.push((key.to_string(), v.clone()));
    }
    Ok(out)
}

fn flag<'a>(flags: &'a [(String, String)], key: &str) -> Option<&'a str> {
    flags.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

/// `simulate`: run an inventory round in the standard scene and return the
/// survey-log text.
///
/// Flags: `--tags N` (default 3), `--seed S` (default 1),
/// `--material <label|mixed>` (default mixed), `--clutter <seed>`
/// (default: clean room).
pub fn simulate(args: &[String]) -> Result<String, CommandError> {
    let flags = parse_flags(args)?;
    let n_tags: usize = flag(&flags, "tags").unwrap_or("3").parse().map_err(|_| {
        CommandError::Usage("--tags expects an integer".into())
    })?;
    let seed: u64 = flag(&flags, "seed").unwrap_or("1").parse().map_err(|_| {
        CommandError::Usage("--seed expects an integer".into())
    })?;
    let material_arg = flag(&flags, "material").unwrap_or("mixed");
    if n_tags == 0 {
        return Err(CommandError::Usage("--tags must be at least 1".into()));
    }

    let mut scene = Scene::standard_2d();
    if let Some(clutter) = flag(&flags, "clutter") {
        let cseed: u64 = clutter
            .parse()
            .map_err(|_| CommandError::Usage("--clutter expects an integer seed".into()))?;
        scene = scene.with_environment(rfp_sim::MultipathEnvironment::cluttered(3, cseed));
    }

    let material_for = |i: usize| -> Result<Material, CommandError> {
        if material_arg == "mixed" {
            Ok(Material::CLASSES[i % Material::CLASSES.len()])
        } else {
            Material::CLASSES
                .iter()
                .copied()
                .find(|m| m.label() == material_arg)
                .ok_or_else(|| {
                    CommandError::Usage(format!(
                        "unknown material `{material_arg}` (try: wood plastic glass metal water milk oil alcohol mixed)"
                    ))
                })
        }
    };

    let grid: Vec<Vec2> = scene.region().grid(4, 4).collect();
    let tags: Vec<(SimTag, TagTruth)> = (0..n_tags)
        .map(|i| {
            let position = grid[(seed as usize + i * 5) % grid.len()];
            let alpha = (i as f64 * 0.5) % std::f64::consts::PI;
            let material = material_for(i)?;
            let tag = SimTag::with_seeded_diversity(i as u64 + 1)
                .attached_to(material)
                .with_motion(Motion::planar_static(position, alpha));
            Ok((tag, TagTruth { position, alpha, material }))
        })
        .collect::<Result<_, CommandError>>()?;

    let sim_tags: Vec<SimTag> = tags.iter().map(|(t, _)| t.clone()).collect();
    let round = scene.survey_inventory(&sim_tags, seed);
    let mut log = SurveyLog::new(scene.reader().plan, scene.antenna_poses());
    for ((tag, truth), (id, survey)) in tags.iter().zip(round.surveys) {
        debug_assert_eq!(tag.id(), id);
        log.add_tag(id, survey.per_antenna, Some(*truth));
    }
    Ok(log.to_text())
}

/// `sense`: replay a survey log through the pipeline; returns the report
/// text.
///
/// `jobs` is the worker-thread count for the batched solve (`0` = one per
/// CPU, `1` = sequential); tags are solved in parallel but reported in log
/// order, and the report is identical at every `jobs` value — the appended
/// run-counter summary too, because count-type metrics merge
/// deterministically across workers.
///
/// With `warm` set the log is sensed twice: a cold pass, then a second
/// pass seeded per tag from the first pass's estimates
/// ([`RfPrism::sense_batch_warm`]) — the steady-state regime of a live
/// deployment re-reading the same tags every round. The reported table
/// comes from the warm pass; the run counters show the warm-start
/// hit/miss split.
///
/// With `tuned` set the solver runs the perf backends
/// ([`rfp_core::StepSolver::Cached`] λ-ladder resolves plus
/// [`rfp_core::LaneMode::Padded4`] row lanes) — estimates stay within
/// 1e-9 of the defaults but are not bit-identical, so reports may
/// differ in the last printed digit.
pub fn sense(
    log_text: &str,
    calibration_db: Option<&str>,
    jobs: usize,
    warm: bool,
    tuned: bool,
) -> Result<String, CommandError> {
    sense_observed(log_text, calibration_db, jobs, warm, tuned).map(|(text, _)| text)
}

/// [`sense`] plus the machine-readable run report it was recorded under —
/// the entry the binary uses for `--metrics` / `--trace`. The sensing work
/// runs under a fresh recorder over [`rfp_core::obs::METRICS`]; the
/// returned [`rfp_obs::RunReport`] carries the per-stage span timings and
/// every solver/detector/pipeline counter of this invocation.
pub fn sense_observed(
    log_text: &str,
    calibration_db: Option<&str>,
    jobs: usize,
    warm: bool,
    tuned: bool,
) -> Result<(String, rfp_obs::RunReport), CommandError> {
    let (result, rec) = rfp_obs::recorder::observe(rfp_core::obs::METRICS, || {
        sense_table(log_text, calibration_db, jobs, warm, tuned)
    });
    let table = result?;
    let run = rfp_obs::RunReport::from_recorder("sense", &rec)
        .with_meta("jobs", &jobs.to_string())
        .with_meta("warm", if warm { "true" } else { "false" })
        .with_meta("tuned", if tuned { "true" } else { "false" });
    let text = format!("{table}{}", counters_footer(&run));
    Ok((text, run))
}

/// Renders one counter line of the run summary, resolving names against
/// the report (missing names read as 0, so the footer never panics).
fn counters_footer(run: &rfp_obs::RunReport) -> String {
    let c = |name: &str| {
        run.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    };
    let mut out = String::new();
    let _ = writeln!(out, "-- run counters --");
    let _ = writeln!(
        out,
        "  pipeline: {} windows, {} ok, {} moving-rejected, {} too-few-obs",
        c("pipeline.windows_total"),
        c("pipeline.windows_ok"),
        c("pipeline.windows_moving_rejected"),
        c("pipeline.windows_too_few_obs"),
    );
    let _ = writeln!(
        out,
        "  detector: {} clean, {} multipath ({} channels rejected), {} moving",
        c("detector.windows_clean"),
        c("detector.windows_multipath"),
        c("detector.channels_rejected"),
        c("detector.windows_moving"),
    );
    let _ = writeln!(
        out,
        "  solver2d: {} solves, {} iterations, {} residual evals, {} jacobian evals",
        c("solver2d.solves"),
        c("solver2d.iterations"),
        c("solver2d.residual_evals"),
        c("solver2d.jacobian_evals"),
    );
    if c("solver3d.solves") > 0 {
        let _ = writeln!(
            out,
            "  solver3d: {} solves, {} iterations, {} residual evals, {} jacobian evals",
            c("solver3d.solves"),
            c("solver3d.iterations"),
            c("solver3d.residual_evals"),
            c("solver3d.jacobian_evals"),
        );
    }
    let _ = writeln!(
        out,
        "  seeds: {} ranked, {} refined, {} pruned",
        c("solver.seeds_total"),
        c("solver.seeds_refined"),
        c("solver.seeds_pruned"),
    );
    let (hits, misses) = (c("solver.warm_start_hits"), c("solver.warm_start_misses"));
    if hits + misses > 0 {
        let _ = writeln!(out, "  warm starts: {hits} hits, {misses} misses");
    }
    let _ = writeln!(
        out,
        "  lm steps: {} lambda retries, {} chol failures, {} cached solves",
        c("solver.lambda_retries"),
        c("solver.chol_failures"),
        c("solver.step_cached_solves"),
    );
    let (updates, downdates) = (c("streaming.updates"), c("streaming.downdates"));
    if updates + downdates > 0 {
        let _ = writeln!(
            out,
            "  streaming: {updates} updates, {downdates} downdates, {} refit fallbacks",
            c("streaming.refit_fallbacks"),
        );
    }
    out
}

/// `stream`: drive the incremental sliding-window pipeline
/// ([`RfPrism::sense_streaming`]) over a simulated multi-round read
/// stream and report one estimate per window advance.
///
/// Every round's reads are pushed into the per-antenna sliding windows as
/// they "arrive"; each advance pays only for the reads that entered or
/// expired since the last one, and the solver is warm-started from the
/// tracker's extrapolated position. The footer shows the incremental
/// engine's update/downdate/fallback counters.
///
/// Flags: `--rounds N` (default 5), `--seed S` (default 1),
/// `--tag SEED` (default 1), bare `--tuned` for the cached-step +
/// padded-lane solver backends (both modes honor it).
///
/// With `--log FILE` the command switches to **telemetry replay mode**
/// ([`crate::telemetry::replay`]): the recorded round is streamed through
/// one session per tag, a [`rfp_obs::TelemetryFrame`] is emitted every
/// `--every` reads per tag (default 64), and the frames are byte-identical
/// at any `--jobs`. `--telemetry FILE` writes the JSONL frames, `--prom
/// FILE` writes the merged Prometheus exposition, the bare `--health`
/// switch folds the streaming health rules into each frame, and
/// `--window SECONDS` bounds the sliding window (0 = keep every read).
pub fn stream(args: &[String]) -> Result<String, CommandError> {
    // `--health` and `--tuned` are bare switches; split them out before
    // pair parsing.
    let health = args.iter().any(|a| a == "--health");
    let tuned = args.iter().any(|a| a == "--tuned");
    let args: Vec<String> = args
        .iter()
        .filter(|a| *a != "--health" && *a != "--tuned")
        .cloned()
        .collect();
    let flags = parse_flags(&args)?;
    if flag(&flags, "log").is_some() {
        return stream_telemetry(&flags, health, tuned);
    }
    for key in ["telemetry", "prom", "every", "window", "jobs"] {
        if flag(&flags, key).is_some() {
            return Err(CommandError::Usage(format!("--{key} requires --log FILE")));
        }
    }
    if health {
        return Err(CommandError::Usage("--health requires --log FILE".into()));
    }
    let rounds: usize = flag(&flags, "rounds").unwrap_or("5").parse().map_err(|_| {
        CommandError::Usage("--rounds expects an integer".into())
    })?;
    let seed: u64 = flag(&flags, "seed").unwrap_or("1").parse().map_err(|_| {
        CommandError::Usage("--seed expects an integer".into())
    })?;
    let tag_seed: u64 = flag(&flags, "tag").unwrap_or("1").parse().map_err(|_| {
        CommandError::Usage("--tag expects an integer seed".into())
    })?;
    if rounds == 0 {
        return Err(CommandError::Usage("--rounds must be at least 1".into()));
    }

    let scene = Scene::standard_2d();
    let grid: Vec<Vec2> = scene.region().grid(4, 4).collect();
    let position = grid[seed as usize % grid.len()];
    let alpha = (tag_seed as f64 * 0.5) % std::f64::consts::PI;
    let tag = SimTag::with_seeded_diversity(tag_seed)
        .with_motion(Motion::planar_static(position, alpha));
    let stream = rfp_sim::stream_rounds(&scene, &tag, rounds, seed);
    let mut prism =
        RfPrism::new(scene.antenna_poses(), scene.reader().plan).with_region(scene.region());
    if tuned {
        let mut config = rfp_core::RfPrismConfig::paper();
        config.solver.step_solver = rfp_core::StepSolver::Cached;
        config.solver.lane_mode = rfp_core::LaneMode::Padded4;
        prism = prism.with_config(config);
    }

    let (table, rec) = rfp_obs::recorder::observe(rfp_core::obs::METRICS, || {
        let mut session = prism.sense_streaming(scene.reader().round_duration_s());
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>18} {:>9} {:>10} {:>10} {:>10}",
            "round", "position (m)", "α (deg)", "verdict", "truth err", "reads"
        );
        for (r, round) in stream.iter().enumerate() {
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                for read in reads {
                    session.push(antenna, read);
                }
            }
            match session.advance(round.end_time_s) {
                Ok(result) => {
                    let e = &result.estimate;
                    let verdict = match result.verdict {
                        rfp_core::MobilityVerdict::Clean => "clean",
                        rfp_core::MobilityVerdict::MultipathSuppressed { .. } => "multipath",
                        rfp_core::MobilityVerdict::Moving { .. } => "moving",
                    };
                    let _ = writeln!(
                        out,
                        "{r:>6} ({:+7.3}, {:6.3}) {:>9.1} {verdict:>10} {:>7.1} cm {:>10}",
                        e.position.x,
                        e.position.y,
                        e.orientation.to_degrees(),
                        e.position.distance(position) * 100.0,
                        session.retained_reads(),
                    );
                    session.recycle(result);
                }
                Err(SenseError::TagMoving { worst_residual_std }) => {
                    let _ = writeln!(
                        out,
                        "{r:>6} window rejected: tag moved (residual {worst_residual_std:.2} rad)"
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "{r:>6} failed: {e}");
                }
            }
        }
        out
    });
    let run = rfp_obs::RunReport::from_recorder("stream", &rec)
        .with_meta("rounds", &rounds.to_string());
    Ok(format!("{table}{}", counters_footer(&run)))
}

/// The `--log` arm of [`stream`]: telemetry replay plus its file sinks.
fn stream_telemetry(
    flags: &[(String, String)],
    health: bool,
    tuned: bool,
) -> Result<String, CommandError> {
    let log_path = flag(flags, "log").expect("checked by caller");
    let jobs: usize = flag(flags, "jobs").unwrap_or("1").parse().map_err(|_| {
        CommandError::Usage("--jobs expects an integer (0 = all CPUs)".into())
    })?;
    let every: usize = flag(flags, "every").unwrap_or("64").parse().map_err(|_| {
        CommandError::Usage("--every expects an integer read count".into())
    })?;
    let window_s: f64 = flag(flags, "window").unwrap_or("0").parse().map_err(|_| {
        CommandError::Usage("--window expects seconds (0 = unbounded)".into())
    })?;
    let opts = crate::telemetry::TelemetryOptions { jobs, every, window_s, health, tuned };

    let log_text = std::fs::read_to_string(log_path)?;
    let run = crate::telemetry::replay(&log_text, &opts)?;
    if let Some(path) = flag(flags, "telemetry") {
        let jsonl = if run.frames.is_empty() {
            String::new()
        } else {
            let mut text = run.frames.join("\n");
            text.push('\n');
            text
        };
        std::fs::write(path, jsonl)?;
    }
    if let Some(path) = flag(flags, "prom") {
        std::fs::write(path, run.report.prometheus())?;
    }
    Ok(format!("{}{}", run.summary, counters_footer(&run.report)))
}

/// The tag table of [`sense`] (no counter footer); runs under whatever
/// recorder the caller installed.
fn sense_table(
    log_text: &str,
    calibration_db: Option<&str>,
    jobs: usize,
    warm: bool,
    tuned: bool,
) -> Result<String, CommandError> {
    let log = SurveyLog::from_text(log_text)?;
    let db = match calibration_db {
        Some(text) => Some(CalibrationDb::from_text(text).map_err(CommandError::Calibration)?),
        None => None,
    };
    let region = default_region(&log);
    let mut prism = RfPrism::new(log.poses.clone(), log.plan).with_region(region);
    if tuned {
        let mut config = rfp_core::RfPrismConfig::paper();
        config.solver.step_solver = rfp_core::StepSolver::Cached;
        config.solver.lane_mode = rfp_core::LaneMode::Padded4;
        prism = prism.with_config(config);
    }

    // Fan the per-tag solves across the worker pool; results come back in
    // log order, so the report below is byte-identical at any `jobs`.
    let reads: Vec<&Vec<Vec<rfp_dsp::preprocess::RawRead>>> =
        log.tags.values().map(|record| &record.per_antenna).collect();
    let cache = prism.batch_cache();
    let results = if warm {
        // Two passes: cold, then re-sense seeded from the cold estimates —
        // the steady-state regime of a deployment re-reading its tags.
        let cold = prism.sense_batch_with(&cache, &reads, jobs);
        let warms: Vec<Option<WarmStart>> = cold
            .iter()
            .map(|r| r.as_ref().ok().map(|res| WarmStart::from_estimate(&res.estimate)))
            .collect();
        prism.sense_batch_warm(&cache, &reads, &warms, jobs)
    } else {
        prism.sense_batch_with(&cache, &reads, jobs)
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>6} {:>18} {:>9} {:>13} {:>10} {:>12}",
        "tag", "position (m)", "α (deg)", "k_t (rad/Hz)", "verdict", "truth err"
    );
    for ((id, record), result) in log.tags.iter().zip(results) {
        match result {
            Ok(result) => {
                let e = &result.estimate;
                let truth_err = record
                    .truth
                    .map(|t| format!("{:.1} cm", e.position.distance(t.position) * 100.0))
                    .unwrap_or_else(|| "-".into());
                let verdict = match result.verdict {
                    rfp_core::MobilityVerdict::Clean => "clean",
                    rfp_core::MobilityVerdict::MultipathSuppressed { .. } => "multipath",
                    rfp_core::MobilityVerdict::Moving { .. } => "moving",
                };
                let _ = writeln!(
                    out,
                    "{id:>6} ({:+7.3}, {:6.3}) {:>9.1} {:>13.3e} {verdict:>10} {truth_err:>12}",
                    e.position.x,
                    e.position.y,
                    e.orientation.to_degrees(),
                    e.kt,
                );
                if let (Some(db), Some(truth)) = (&db, record.truth) {
                    if let Some(cal) = db.get(*id) {
                        let feats = result
                            .material_features(cal, log.plan.channel_count());
                        let _ = writeln!(
                            out,
                            "{:>6} calibrated material features: k_t_mat {:.3e}, truth {}",
                            "", feats.kt_material, truth.material
                        );
                    }
                }
            }
            Err(SenseError::TagMoving { worst_residual_std }) => {
                let _ = writeln!(
                    out,
                    "{id:>6} window rejected: tag moved (residual {worst_residual_std:.2} rad)"
                );
            }
            Err(e) => {
                let _ = writeln!(out, "{id:>6} failed: {e}");
            }
        }
    }
    Ok(out)
}

/// `calibrate`: simulate the §V-B bare-tag calibration for `tag_seed` and
/// return the calibration-database text.
pub fn calibrate(args: &[String]) -> Result<String, CommandError> {
    let flags = parse_flags(args)?;
    let tag_seed: u64 = flag(&flags, "tag").unwrap_or("1").parse().map_err(|_| {
        CommandError::Usage("--tag expects an integer id".into())
    })?;
    let scene = Scene::standard_2d()
        .with_noise(rfp_sim::NoiseModel::clean())
        .with_reader(rfp_sim::ReaderConfig::ideal());
    let position = Vec2::new(0.5, 1.0);
    let alpha = 0.0;
    let bare = SimTag::with_seeded_diversity(tag_seed)
        .with_motion(Motion::planar_static(position, alpha));
    let survey = scene.survey(&bare, 1000 + tag_seed);
    let observations: Vec<_> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("clean"))
        .collect();
    let cal = DeviceCalibration::from_observations(&observations, position, alpha);
    let mut db = CalibrationDb::new();
    db.insert(tag_seed, cal);
    Ok(db.to_text())
}

/// Derives the sensing search region from a log: the antennas' bounding
/// box expanded toward the hemisphere they face (same rule as
/// `RfPrism::new`, but reproduced here so a log is self-contained).
fn default_region(log: &SurveyLog) -> Region2 {
    let _ = &log.poses;
    // RfPrism::new already computes a sensible default; reuse it.
    RfPrism::new(log.poses.clone(), log.plan).region()
}

/// Top-level usage text.
pub fn usage() -> String {
    "rf-prism — RFID phase-disentangling sensing (RF-Prism reproduction)\n\
     \n\
     USAGE:\n\
     \x20 rf-prism simulate [--tags N] [--seed S] [--material LABEL|mixed] [--clutter SEED] > round.log\n\
     \x20 rf-prism sense --log round.log [--calib tags.cal] [--jobs N] [--metrics out.json] [--trace] [--warm] [--tuned]\n\
     \x20     (--jobs: worker threads for the batched solve; 0 = all CPUs, default 1)\n\
     \x20     (--metrics: write the versioned JSON run report; --trace: span/counter summary on stderr)\n\
     \x20     (--warm: sense twice, warm-starting the second pass from the first — steady-state timing)\n\
     \x20     (--tuned: cached λ-step solver + padded poly lanes; estimates within 1e-9 of the defaults)\n\
     \x20 rf-prism stream [--rounds N] [--seed S] [--tag SEED] [--tuned]\n\
     \x20     (incremental sliding-window mode: one warm estimate per round, O(new reads) per advance)\n\
     \x20 rf-prism stream --log round.log [--jobs N] [--every READS] [--window SECS]\n\
     \x20     [--telemetry frames.jsonl] [--prom metrics.prom] [--health] [--tuned]\n\
     \x20     (telemetry replay: one JSONL frame per --every reads per tag, byte-identical at any --jobs;\n\
     \x20      --health adds watchdog verdicts to each frame; --prom writes the merged exposition)\n\
     \x20 rf-prism calibrate --tag ID > tags.cal\n\
     \x20 rf-prism help\n"
        .to_string()
}

/// Angle helper re-exported for the binary's error messages.
pub fn wrap_deg(rad: f64) -> f64 {
    angle::wrap_pi(rad).to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simulate_then_sense_round_trip() {
        let log_text = simulate(&args(&["--tags", "2", "--seed", "3"])).unwrap();
        let report = sense(&log_text, None, 1, false, false).unwrap();
        // Two tag rows with truth errors present.
        assert_eq!(report.matches(" cm").count(), 2, "report:\n{report}");
        assert!(report.contains("clean") || report.contains("multipath"));
    }

    #[test]
    fn simulate_respects_material_flag() {
        let log_text = simulate(&args(&["--tags", "2", "--material", "water"])).unwrap();
        assert!(log_text.contains(" water\n"));
        assert!(!log_text.contains(" wood\n"));
    }

    #[test]
    fn simulate_rejects_bad_flags() {
        assert!(matches!(
            simulate(&args(&["--tags", "zero"])),
            Err(CommandError::Usage(_))
        ));
        assert!(matches!(
            simulate(&args(&["--material", "kryptonite"])),
            Err(CommandError::Usage(_))
        ));
        assert!(matches!(simulate(&args(&["stray"])), Err(CommandError::Usage(_))));
        assert!(matches!(
            simulate(&args(&["--tags"])),
            Err(CommandError::Usage(_))
        ));
    }

    #[test]
    fn calibrate_emits_db_text() {
        let text = calibrate(&args(&["--tag", "7"])).unwrap();
        let db = CalibrationDb::from_text(&text).unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.get(7).is_some());
    }

    #[test]
    fn sense_with_calibration_prints_material_features() {
        let log_text = simulate(&args(&["--tags", "1", "--seed", "5"])).unwrap();
        let cal_text = calibrate(&args(&["--tag", "1"])).unwrap();
        let report = sense(&log_text, Some(&cal_text), 1, false, false).unwrap();
        assert!(report.contains("k_t_mat"), "report:\n{report}");
    }

    #[test]
    fn sense_report_identical_at_any_jobs() {
        let log_text = simulate(&args(&["--tags", "3", "--seed", "2"])).unwrap();
        let sequential = sense(&log_text, None, 1, false, false).unwrap();
        assert_eq!(sequential, sense(&log_text, None, 2, false, false).unwrap());
        assert_eq!(sequential, sense(&log_text, None, 0, false, false).unwrap());
    }

    #[test]
    fn tuned_sense_is_deterministic_and_tracks_the_default_table() {
        let log_text = simulate(&args(&["--tags", "3", "--seed", "2"])).unwrap();
        let tuned = sense(&log_text, None, 1, false, true).unwrap();
        // Deterministic across worker counts, like every other mode.
        assert_eq!(tuned, sense(&log_text, None, 2, false, true).unwrap());
        assert_eq!(tuned, sense(&log_text, None, 0, false, true).unwrap());
        // The tuned backends are pinned ≤1e-9 against the defaults, so the
        // printed tag tables (3-decimal positions) must agree exactly.
        let default = sense(&log_text, None, 1, false, false).unwrap();
        let table = |s: &str| s.split("-- run counters --").next().unwrap().to_string();
        assert_eq!(table(&default), table(&tuned), "tuned estimates drifted");
    }

    #[test]
    fn warm_sense_matches_cold_table_at_any_jobs() {
        let log_text = simulate(&args(&["--tags", "3", "--seed", "4"])).unwrap();
        let cold = sense(&log_text, None, 1, false, false).unwrap();
        let warm = sense(&log_text, None, 1, true, false).unwrap();
        // A static log re-sensed warm must land on the same estimates: the
        // tag table (everything before the counter footer) is identical.
        let table = |s: &str| s.split("-- run counters --").next().unwrap().to_string();
        assert_eq!(table(&cold), table(&warm), "warm pass changed estimates");
        // And the warm report itself is deterministic across worker counts.
        assert_eq!(warm, sense(&log_text, None, 2, true, false).unwrap());
        assert_eq!(warm, sense(&log_text, None, 0, true, false).unwrap());
    }

    #[test]
    fn stream_reports_per_round_estimates() {
        let report = stream(&args(&["--rounds", "3", "--seed", "2"])).unwrap();
        // One estimate row per round, plus the streaming counter line.
        assert_eq!(report.matches(" cm").count(), 3, "report:\n{report}");
        assert!(report.contains("streaming:"), "report:\n{report}");
        assert!(report.contains("updates"), "report:\n{report}");
        // Deterministic replay.
        assert_eq!(report, stream(&args(&["--rounds", "3", "--seed", "2"])).unwrap());
    }

    #[test]
    fn stream_rejects_bad_flags() {
        assert!(matches!(stream(&args(&["--rounds", "0"])), Err(CommandError::Usage(_))));
        assert!(matches!(stream(&args(&["--rounds", "x"])), Err(CommandError::Usage(_))));
        // Telemetry flags demand a log to replay.
        assert!(matches!(stream(&args(&["--health"])), Err(CommandError::Usage(_))));
        assert!(matches!(
            stream(&args(&["--telemetry", "out.jsonl"])),
            Err(CommandError::Usage(_))
        ));
        assert!(matches!(stream(&args(&["--jobs", "2"])), Err(CommandError::Usage(_))));
    }

    #[test]
    fn stream_telemetry_writes_identical_frames_at_any_jobs() {
        let log_text = simulate(&args(&["--tags", "2", "--seed", "6"])).unwrap();
        let dir = std::env::temp_dir().join("rfp-cli-telemetry-test");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("round.log");
        std::fs::write(&log_path, &log_text).unwrap();

        let run = |jobs: &str, frames: &std::path::Path| {
            stream(&args(&[
                "--log",
                log_path.to_str().unwrap(),
                "--jobs",
                jobs,
                "--every",
                "32",
                "--health",
                "--telemetry",
                frames.to_str().unwrap(),
            ]))
            .unwrap()
        };
        let frames1 = dir.join("frames1.jsonl");
        let frames2 = dir.join("frames2.jsonl");
        let summary1 = run("1", &frames1);
        let summary2 = run("2", &frames2);
        assert_eq!(summary1, summary2, "summary must not depend on --jobs");
        let jsonl1 = std::fs::read_to_string(&frames1).unwrap();
        let jsonl2 = std::fs::read_to_string(&frames2).unwrap();
        assert_eq!(jsonl1, jsonl2, "frames must be byte-identical across --jobs");
        assert!(jsonl1.lines().count() > 0);
        assert!(jsonl1.contains("\"health\""));
        assert!(summary1.contains("-- telemetry:"), "summary:\n{summary1}");
        assert!(summary1.contains("health: worst verdict"), "summary:\n{summary1}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stream_telemetry_prom_sink_has_histogram_exposition() {
        let log_text = simulate(&args(&["--tags", "1", "--seed", "3"])).unwrap();
        let dir = std::env::temp_dir().join("rfp-cli-telemetry-prom-test");
        std::fs::create_dir_all(&dir).unwrap();
        let log_path = dir.join("round.log");
        std::fs::write(&log_path, &log_text).unwrap();
        let prom_path = dir.join("metrics.prom");
        stream(&args(&[
            "--log",
            log_path.to_str().unwrap(),
            "--prom",
            prom_path.to_str().unwrap(),
        ]))
        .unwrap();
        let prom = std::fs::read_to_string(&prom_path).unwrap();
        assert!(prom.contains("# TYPE streaming_advance_latency_us histogram"), "{prom}");
        assert!(prom.contains("streaming_advance_latency_us_bucket{le=\"+Inf\"}"), "{prom}");
        assert!(prom.contains("pipeline_windows_total"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sense_propagates_log_errors() {
        assert!(matches!(sense("garbage", None, 1, false, false), Err(CommandError::Log(_))));
    }

    #[test]
    fn usage_mentions_all_subcommands() {
        let u = usage();
        for cmd in ["simulate", "sense", "stream", "calibrate"] {
            assert!(u.contains(cmd));
        }
        assert!((wrap_deg(std::f64::consts::PI * 2.5) - 90.0).abs() < 1e-9);
    }
}
