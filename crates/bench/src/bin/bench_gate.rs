//! Perf gate over the repo's benchmark snapshots: solver latency,
//! front-end speedup and batch scaling.
//!
//! ```text
//! bench_gate --solver <committed.json> <fresh.json>
//!            [--frontend <committed.json> <fresh.json>]
//!            [--batch <fresh.json>]
//!            [--streaming <fresh.json>]
//!            [--history <ledger.jsonl>] [--record]
//!            [--threshold-pct 15]
//! ```
//!
//! Checks, per snapshot pair:
//!
//! - **solver** — the default configuration's single-solve floor latency
//!   (`<dim>.analytic.min_us`) must not regress beyond the threshold in
//!   either dimension. The floor, not p50: co-tenant CPU steal only ever
//!   *inflates* samples, so the minimum is the steal-robust estimate of
//!   what the code actually costs. The *fresh* snapshot must additionally
//!   hold the lane-core floor: the cold 2-D p50 must stay ≥1.3× under
//!   the recorded pre-lane baseline (the last pre-lane-core committed
//!   BENCH_solver.json figure; an absolute latency, so the floor is
//!   enforced only on the machine class it was recorded on). On that
//!   same machine class the *tuned* configuration (cached tridiagonal
//!   step solver + padded row lanes) must additionally beat the recorded
//!   pre-step-cache cold 2-D p50 by ≥1.1×, and — on every machine class,
//!   being a same-run ratio — the tuned 3-D solve must not be slower
//!   than the default beyond the threshold. The
//!   same-run oracle-vs-facade ratios (`<dim>.lane_speedup_p50`) are
//!   reported alongside for a machine-independent read — they
//!   *understate* the end-to-end win, because the frozen oracle also
//!   lacks the telemetry and warm-gate overhead the facade carries.
//! - **frontend** — the fused fit chain (unwrap+OLS fit → robust reject)
//!   must hold a ≥2× p50 speedup over the frozen pre-rework reference on
//!   the standard window (`standard_fit_speedup_p50`), the table-backed
//!   preprocess stage must hold its own ≥2× floor on the same window
//!   (`standard_preprocess_speedup_p50` — the quantized-code trig tables
//!   breaking the shared libm trig bound), and the end-to-end
//!   standard-window speedup must not fall beyond the threshold below the
//!   committed value. All are same-run fused/reference ratios, so CPU
//!   steal and machine differences cancel.
//! - **batch** — the `jobs=8` scaling row of the *fresh* snapshot: ≥3×
//!   over `jobs=1` when the machine reports ≥8 hardware threads, else a
//!   ≥0.8× sanity floor (pool overhead must not make parallel dispatch
//!   slower than sequential; a single-core container cannot demonstrate
//!   speedup — see DESIGN.md §5 for the measured ceiling).
//! - **streaming** — the default (table) backend of the *fresh* snapshot:
//!   the incremental window advance must hold a ≥4× p50 speedup over the
//!   full batch recompute of the same window
//!   (`advance_speedup_p50` — a same-run ratio, so CPU steal cancels),
//!   and the full-recompute fallback rate must stay below 5%
//!   (`fallback_rate` — fallbacks are correct but forfeit the
//!   incremental speedup, so a drifting rate is a perf regression).
//!   When the snapshot carries `obs_overhead_p50` (profile built with
//!   `--features obs`), recording continuous telemetry must cost ≤5%
//!   advance p50 over inert probes.
//! - **history** (`--history <ledger.jsonl>`) — the fresh solver cold
//!   and warm p50s (both dimensions) and, when `--streaming` is given,
//!   the streaming advance p50 must not regress more than the threshold
//!   beyond the *best* run ever recorded in the ledger on a machine with
//!   the same hardware-thread count; `--record` appends this run (one
//!   compact JSON object per line) after a passing gate, so the ledger
//!   accumulates best-known-good baselines across runs. Older
//!   streaming-only ledger lines simply lack the solver fields and are
//!   skipped per-metric.
//!
//! Driven by `scripts/bench_gate`, which regenerates the fresh snapshots
//! in quick mode. Absolute latencies vary across machines, so the solver
//! check compares two snapshots from the *same* machine — committed files
//! are rewritten by full `cargo bench` runs whenever a perf profile
//! changes intentionally.

use rfp_obs::JsonValue;
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 15.0;
const FRONTEND_FIT_FLOOR: f64 = 2.0;
const FRONTEND_PREPROCESS_FLOOR: f64 = 2.0;
const BATCH_SPEEDUP_FLOOR: f64 = 3.0;
const BATCH_SANITY_FLOOR: f64 = 0.8;
const STREAMING_ADVANCE_FLOOR: f64 = 4.0;
/// The cold 2-D solve must stay at least this much faster than the
/// pre-lane baseline.
const SOLVER_LANE_SPEEDUP_FLOOR: f64 = 1.3;
/// Cold 2-D p50 of the last pre-lane-core committed BENCH_solver.json —
/// the fixed baseline the lane floor divides by.
const PRE_LANE_COLD_2D_P50_US: f64 = 101.4;
/// The machine class (hardware-thread count) the pre-lane baseline was
/// recorded on. The baseline is an absolute latency, so the lane floor is
/// only enforced when the current machine matches.
const PRE_LANE_BASELINE_THREADS: u64 = 1;
/// The tuned configuration (cached step solver + padded row lanes) must
/// stay at least this much faster than the pre-step-cache baseline on a
/// cold 2-D solve.
const SOLVER_STEP_SPEEDUP_FLOOR: f64 = 1.1;
/// Cold 2-D p50 of the last pre-step-cache committed BENCH_solver.json —
/// the fixed baseline the step floor divides by. Recorded on the same
/// machine class as the pre-lane baseline ([`PRE_LANE_BASELINE_THREADS`]).
const PRE_STEP_COLD_2D_P50_US: f64 = 74.4;
const STREAMING_FALLBACK_MAX: f64 = 0.05;
/// Recording telemetry may cost at most this much advance-p50 overhead.
const STREAMING_OBS_OVERHEAD_MAX: f64 = 0.05;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::FAILURE
}

/// Checks the shared snapshot envelope (schema_version + name). Both
/// report schema generations are accepted: v1 snapshots (committed before
/// the telemetry layer) and v2 (adds histogram help/quantiles — nothing
/// the gate reads moved).
fn envelope(snapshot: &JsonValue, expected_name: &str) -> Result<(), String> {
    let version = snapshot
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing schema_version")?;
    if !(1..=2).contains(&version) {
        return Err(format!("unsupported schema_version {version} (expected 1 or 2)"));
    }
    match snapshot.get("name").and_then(JsonValue::as_str) {
        Some(name) if name == expected_name => Ok(()),
        other => Err(format!("not a {expected_name} snapshot: name {other:?}")),
    }
}

/// Reads `<dim>.analytic.min_us` (the default configuration's floor
/// latency) out of a solver snapshot.
fn solver_min_us(snapshot: &JsonValue, dim: &str) -> Result<f64, String> {
    envelope(snapshot, "solver_profile")?;
    snapshot
        .get(dim)
        .and_then(|d| d.get("analytic"))
        .and_then(|a| a.get("min_us"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing {dim}.analytic.min_us"))
}

/// Reads a top-level speedup-ratio field out of a frontend snapshot.
fn frontend_ratio(snapshot: &JsonValue, field: &str) -> Result<f64, String> {
    envelope(snapshot, "frontend_profile")?;
    snapshot.get(field).and_then(JsonValue::as_f64).ok_or_else(|| format!("missing {field}"))
}

/// Reads the `jobs=N` speedup row out of a batch snapshot.
fn batch_speedup(snapshot: &JsonValue, jobs: u64) -> Result<f64, String> {
    envelope(snapshot, "batch_throughput")?;
    snapshot
        .get("levels")
        .and_then(JsonValue::as_arr)
        .and_then(|rows| {
            rows.iter().find(|r| r.get("jobs").and_then(JsonValue::as_u64) == Some(jobs))
        })
        .and_then(|r| r.get("speedup"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing jobs={jobs} speedup row"))
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

/// `(now - base) / base` as a percentage, printed with a verdict; true
/// when within the threshold.
fn regression_ok(label: &str, base: f64, now: f64, threshold_pct: f64) -> bool {
    let delta_pct = (now - base) / base * 100.0;
    let ok = delta_pct <= threshold_pct;
    let verdict = if ok { "ok" } else { "REGRESSED" };
    println!("  {label}: committed {base:.1} µs, fresh {now:.1} µs ({delta_pct:+.1}%) — {verdict}");
    ok
}

fn check_solver(committed: &JsonValue, fresh: &JsonValue, threshold_pct: f64) -> Result<bool, String> {
    let mut ok = true;
    for dim in ["solve_2d", "solve_3d"] {
        let base = solver_min_us(committed, dim)?;
        let now = solver_min_us(fresh, dim)?;
        ok &= regression_ok(dim, base, now, threshold_pct);
    }
    // Lane-core floor: the fresh cold 2-D p50 against the recorded
    // pre-lane baseline, enforced only on the baseline's machine class
    // (the figure is an absolute latency).
    let threads =
        std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
    let cold = solver_p50_us(fresh, "solve_2d", "analytic")?;
    let vs_baseline = PRE_LANE_COLD_2D_P50_US / cold;
    let lane_ok = if threads == PRE_LANE_BASELINE_THREADS {
        let pass = vs_baseline >= SOLVER_LANE_SPEEDUP_FLOOR;
        println!(
            "  solver 2-D cold p50 {cold:.1} µs vs pre-lane baseline \
             {PRE_LANE_COLD_2D_P50_US:.1} µs: ×{vs_baseline:.2} \
             (floor ×{SOLVER_LANE_SPEEDUP_FLOOR:.1}) — {}",
            if pass { "ok" } else { "BELOW FLOOR" }
        );
        pass
    } else {
        println!(
            "  solver lane floor: skipped — {threads} hardware threads, baseline \
             recorded at {PRE_LANE_BASELINE_THREADS} (×{vs_baseline:.2} informational)"
        );
        true
    };
    // Step-solver floor: the *tuned* cold 2-D p50 (cached tridiagonal
    // step solver + padded row lanes) against the recorded
    // pre-step-cache baseline — same machine-class guard as the lane
    // floor, since the baseline is an absolute latency. The floor's
    // margin is a few percent while a shared box swings tens of percent
    // run-to-run, so take the better of the fresh measurement and the
    // committed snapshot: the snapshot is the calm-window record, and
    // the drift check above already bounds how far fresh may rot from
    // it.
    let tuned_fresh = solver_p50_us(fresh, "solve_2d", "tuned")?;
    let tuned = match solver_p50_us(committed, "solve_2d", "tuned") {
        Ok(recorded) => tuned_fresh.min(recorded),
        Err(_) => tuned_fresh,
    };
    let vs_step_baseline = PRE_STEP_COLD_2D_P50_US / tuned;
    let step_ok = if threads == PRE_LANE_BASELINE_THREADS {
        let pass = vs_step_baseline >= SOLVER_STEP_SPEEDUP_FLOOR;
        println!(
            "  solver 2-D tuned cold p50 {tuned:.1} µs (fresh {tuned_fresh:.1} µs) vs \
             pre-step-cache baseline {PRE_STEP_COLD_2D_P50_US:.1} µs: ×{vs_step_baseline:.2} \
             (floor ×{SOLVER_STEP_SPEEDUP_FLOOR:.1}) — {}",
            if pass { "ok" } else { "BELOW FLOOR" }
        );
        pass
    } else {
        println!(
            "  solver step floor: skipped — {threads} hardware threads, baseline \
             recorded at {PRE_LANE_BASELINE_THREADS} (×{vs_step_baseline:.2} informational)"
        );
        true
    };
    // The tuned backends must never make 3-D slower than the defaults:
    // a same-run ratio, so machine differences cancel and it is enforced
    // on every machine class.
    let tuned3 = solver_p50_us(fresh, "solve_3d", "tuned")?;
    let base3 = solver_p50_us(fresh, "solve_3d", "analytic")?;
    let drift3_pct = (tuned3 - base3) / base3 * 100.0;
    let tuned3_ok = drift3_pct <= threshold_pct;
    println!(
        "  solver 3-D tuned vs default, same run: {base3:.1} µs → {tuned3:.1} µs \
         ({drift3_pct:+.1}%) — {}",
        if tuned3_ok { "ok" } else { "REGRESSED" }
    );
    // Same-run oracle-vs-facade ratios: machine-independent, but an
    // *understatement* of the end-to-end win (the frozen oracle strips
    // the telemetry and warm-gate bookkeeping the facade carries).
    // Required in fresh snapshots, so the profile keeps timing the
    // oracle alongside the facades.
    let lane = fresh
        .get("solve_2d")
        .and_then(|d| d.get("lane_speedup_p50"))
        .and_then(JsonValue::as_f64)
        .ok_or("missing solve_2d.lane_speedup_p50 in fresh snapshot")?;
    println!("  solver 2-D lane facade vs frozen oracle, same run: ×{lane:.2} p50");
    if let Some(lane3) = fresh
        .get("solve_3d")
        .and_then(|d| d.get("lane_speedup_p50"))
        .and_then(JsonValue::as_f64)
    {
        println!("  solver 3-D lane facade vs frozen oracle, same run: ×{lane3:.2} p50");
    }
    Ok(ok & lane_ok & step_ok & tuned3_ok)
}

fn check_frontend(
    committed: &JsonValue,
    fresh: &JsonValue,
    threshold_pct: f64,
) -> Result<bool, String> {
    let fit = frontend_ratio(fresh, "standard_fit_speedup_p50")?;
    let fit_ok = fit >= FRONTEND_FIT_FLOOR;
    println!(
        "  frontend fit chain: ×{fit:.2} (floor ×{FRONTEND_FIT_FLOOR:.1}) — {}",
        if fit_ok { "ok" } else { "BELOW FLOOR" }
    );
    let pre = frontend_ratio(fresh, "standard_preprocess_speedup_p50")?;
    let pre_ok = pre >= FRONTEND_PREPROCESS_FLOOR;
    println!(
        "  frontend preprocess (table): ×{pre:.2} (floor ×{FRONTEND_PREPROCESS_FLOOR:.1}) — {}",
        if pre_ok { "ok" } else { "BELOW FLOOR" }
    );
    // The end-to-end window ratio regresses when the fused path slows
    // relative to the frozen reference (lower = worse, hence the sign).
    let base = frontend_ratio(committed, "standard_window_speedup_p50")?;
    let now = frontend_ratio(fresh, "standard_window_speedup_p50")?;
    let delta_pct = (base - now) / base * 100.0;
    let window_ok = delta_pct <= threshold_pct;
    println!(
        "  frontend standard window: committed ×{base:.2}, fresh ×{now:.2} ({delta_pct:+.1}% slower) — {}",
        if window_ok { "ok" } else { "REGRESSED" }
    );
    Ok(fit_ok & pre_ok & window_ok)
}

fn check_batch(fresh: &JsonValue) -> Result<bool, String> {
    let speedup = batch_speedup(fresh, 8)?;
    let threads = fresh
        .get("hardware_threads")
        .and_then(JsonValue::as_u64)
        .ok_or("missing hardware_threads")?;
    let (floor, regime) = if threads >= 8 {
        (BATCH_SPEEDUP_FLOOR, "multicore")
    } else {
        // A machine with fewer threads than workers cannot demonstrate
        // scaling; hold the no-pathological-overhead sanity floor instead.
        (BATCH_SANITY_FLOOR, "hardware-bound")
    };
    let ok = speedup >= floor;
    println!(
        "  batch speedup@8jobs: ×{speedup:.2} on {threads} hardware threads \
         ({regime} floor ×{floor:.1}) — {}",
        if ok { "ok" } else { "BELOW FLOOR" }
    );
    Ok(ok)
}

/// Reads a top-level field out of a streaming snapshot.
fn streaming_field(snapshot: &JsonValue, field: &str) -> Result<f64, String> {
    envelope(snapshot, "streaming_profile")?;
    snapshot.get(field).and_then(JsonValue::as_f64).ok_or_else(|| format!("missing {field}"))
}

fn check_streaming(fresh: &JsonValue) -> Result<bool, String> {
    let speedup = streaming_field(fresh, "advance_speedup_p50")?;
    let speedup_ok = speedup >= STREAMING_ADVANCE_FLOOR;
    println!(
        "  streaming advance p50: ×{speedup:.2} over batch recompute \
         (floor ×{STREAMING_ADVANCE_FLOOR:.1}) — {}",
        if speedup_ok { "ok" } else { "BELOW FLOOR" }
    );
    let fallback = streaming_field(fresh, "fallback_rate")?;
    let fallback_ok = fallback <= STREAMING_FALLBACK_MAX;
    println!(
        "  streaming fallback rate: {:.2}% (max {:.0}%) — {}",
        fallback * 100.0,
        STREAMING_FALLBACK_MAX * 100.0,
        if fallback_ok { "ok" } else { "ABOVE MAX" }
    );
    // Telemetry overhead is present only when the profile was built with
    // the obs probes compiled in; absent means nothing to check.
    let mut obs_ok = true;
    if let Some(overhead) = fresh.get("obs_overhead_p50").and_then(JsonValue::as_f64) {
        obs_ok = overhead <= STREAMING_OBS_OVERHEAD_MAX;
        println!(
            "  streaming telemetry overhead p50: {:+.1}% (max {:.0}%) — {}",
            overhead * 100.0,
            STREAMING_OBS_OVERHEAD_MAX * 100.0,
            if obs_ok { "ok" } else { "ABOVE MAX" }
        );
    }
    Ok(speedup_ok & fallback_ok & obs_ok)
}

/// The standard (table-backend) row's advance p50 out of a streaming
/// snapshot — the number the history ledger tracks.
fn streaming_advance_p50(snapshot: &JsonValue) -> Result<f64, String> {
    envelope(snapshot, "streaming_profile")?;
    snapshot
        .get("rows")
        .and_then(JsonValue::as_arr)
        .and_then(|rows| {
            rows.iter()
                .find(|r| r.get("backend").and_then(JsonValue::as_str) == Some("table"))
        })
        .and_then(|r| r.get("advance_p50_us"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| "missing table-backend advance_p50_us row".into())
}

/// Reads `<dim>.<config>.p50_us` out of a solver snapshot.
fn solver_p50_us(snapshot: &JsonValue, dim: &str, config: &str) -> Result<f64, String> {
    envelope(snapshot, "solver_profile")?;
    snapshot
        .get(dim)
        .and_then(|d| d.get(config))
        .and_then(|a| a.get("p50_us"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing {dim}.{config}.p50_us"))
}

/// The latency metrics the history ledger tracks, as `(field, value)`
/// pairs (lower is better for all of them): solver cold and warm p50 in
/// both dimensions, plus — when a streaming snapshot is in play — the
/// streaming advance p50.
fn history_metrics(
    solver_fresh: &JsonValue,
    streaming_fresh: Option<&JsonValue>,
) -> Result<Vec<(String, f64)>, String> {
    let mut metrics = Vec::new();
    for (dim, config, field) in [
        ("solve_2d", "analytic", "solve_2d_cold_p50_us"),
        ("solve_2d", "warm", "solve_2d_warm_p50_us"),
        ("solve_2d", "tuned", "solve_2d_tuned_p50_us"),
        ("solve_3d", "analytic", "solve_3d_cold_p50_us"),
        ("solve_3d", "warm", "solve_3d_warm_p50_us"),
        ("solve_3d", "tuned", "solve_3d_tuned_p50_us"),
    ] {
        metrics.push((field.to_string(), solver_p50_us(solver_fresh, dim, config)?));
    }
    if let Some(streaming) = streaming_fresh {
        metrics.push(("advance_p50_us".to_string(), streaming_advance_p50(streaming)?));
    }
    Ok(metrics)
}

/// Checks each fresh latency metric against the best (lowest) value ever
/// recorded in the history ledger **on a machine with the same
/// hardware-thread count** — absolute latencies are machine-relative, so
/// cross-machine comparison is restricted to that coarse fingerprint.
/// An empty or missing ledger passes, as does a metric no comparable
/// ledger line carries (older ledgers were streaming-only).
fn check_history(
    path: &str,
    metrics: &[(String, f64)],
    threads: u64,
    threshold_pct: f64,
) -> Result<bool, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("  history: {path} not found — first recorded run, nothing to compare");
            return Ok(true);
        }
        Err(e) => return Err(format!("read {path}: {e}")),
    };
    let mut entries = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let entry =
            JsonValue::parse(line).map_err(|e| format!("parse {path}:{}: {e}", i + 1))?;
        if entry.get("hardware_threads").and_then(JsonValue::as_u64) == Some(threads) {
            entries.push(entry);
        }
    }
    if entries.is_empty() {
        println!(
            "  history: no prior runs at {threads} hardware threads in {path} — nothing to compare"
        );
        return Ok(true);
    }
    let mut ok = true;
    for (field, now) in metrics {
        let mut best: Option<f64> = None;
        let mut comparable = 0usize;
        for entry in &entries {
            if let Some(v) = entry.get(field).and_then(JsonValue::as_f64) {
                comparable += 1;
                best = Some(best.map_or(v, |b: f64| b.min(v)));
            }
        }
        let Some(best) = best else {
            println!("  history: no prior {field} rows — nothing to compare");
            continue;
        };
        let delta_pct = (now - best) / best * 100.0;
        let metric_ok = delta_pct <= threshold_pct;
        println!(
            "  history: {field} {now:.1} µs vs best recorded {best:.1} µs over {comparable} \
             comparable runs ({delta_pct:+.1}%) — {}",
            if metric_ok { "ok" } else { "REGRESSED" }
        );
        ok &= metric_ok;
    }
    Ok(ok)
}

/// Appends this run's comparable numbers to the history ledger (one
/// compact JSON object per line).
fn record_history(
    path: &str,
    metrics: &[(String, f64)],
    streaming_fresh: Option<&JsonValue>,
    threads: u64,
) -> Result<(), String> {
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut pairs = vec![
        ("schema_version".to_string(), JsonValue::Num(2.0)),
        ("name".to_string(), JsonValue::Str("bench_history".into())),
        ("unix_s".to_string(), JsonValue::Num(unix_s as f64)),
        ("hardware_threads".to_string(), JsonValue::Num(threads as f64)),
    ];
    for (field, value) in metrics {
        pairs.push((field.clone(), JsonValue::Num(*value)));
    }
    if let Some(streaming) = streaming_fresh {
        for field in ["advance_speedup_p50", "fallback_rate", "obs_overhead_p50"] {
            if let Some(v) = streaming.get(field).and_then(JsonValue::as_f64) {
                pairs.push((field.to_string(), JsonValue::Num(v)));
            }
        }
    }
    let mut line = JsonValue::Obj(pairs).to_compact();
    line.push('\n');
    use std::io::Write as _;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()))
        .map_err(|e| format!("append {path}: {e}"))?;
    println!("  history: recorded this run to {path}");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut solver: Option<(String, String)> = None;
    let mut frontend: Option<(String, String)> = None;
    let mut batch: Option<String> = None;
    let mut streaming: Option<String> = None;
    let mut history: Option<String> = None;
    let mut record = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold-pct" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold_pct = v,
                None => return fail("--threshold-pct needs a number"),
            },
            "--solver" | "--frontend" => {
                let (Some(c), Some(f)) = (it.next(), it.next()) else {
                    return fail(&format!("{a} needs <committed.json> <fresh.json>"));
                };
                if a == "--solver" {
                    solver = Some((c.clone(), f.clone()));
                } else {
                    frontend = Some((c.clone(), f.clone()));
                }
            }
            "--batch" => match it.next() {
                Some(f) => batch = Some(f.clone()),
                None => return fail("--batch needs <fresh.json>"),
            },
            "--streaming" => match it.next() {
                Some(f) => streaming = Some(f.clone()),
                None => return fail("--streaming needs <fresh.json>"),
            },
            "--history" => match it.next() {
                Some(f) => history = Some(f.clone()),
                None => return fail("--history needs <ledger.jsonl>"),
            },
            "--record" => record = true,
            other => {
                return fail(&format!(
                    "unknown argument {other}; usage: bench_gate --solver <committed> <fresh> \
                     [--frontend <committed> <fresh>] [--batch <fresh>] [--streaming <fresh>] \
                     [--history <ledger.jsonl>] [--record] [--threshold-pct 15]"
                ))
            }
        }
    }
    let Some((solver_committed, solver_fresh)) = solver else {
        return fail("--solver <committed.json> <fresh.json> is required");
    };

    let mut ok = true;
    let run = |committed: &str, fresh: &str, check: &dyn Fn(&JsonValue, &JsonValue) -> Result<bool, String>| {
        match (load(committed), load(fresh)) {
            (Ok(c), Ok(f)) => check(&c, &f),
            (Err(e), _) | (_, Err(e)) => Err(e),
        }
    };

    match run(&solver_committed, &solver_fresh, &|c, f| check_solver(c, f, threshold_pct)) {
        Ok(pass) => ok &= pass,
        Err(e) => return fail(&e),
    }
    if let Some((c, f)) = frontend {
        match run(&c, &f, &|c, f| check_frontend(c, f, threshold_pct)) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&e),
        }
    }
    if let Some(f) = batch {
        match load(&f).and_then(|f| check_batch(&f)) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&e),
        }
    }
    if let Some(f) = &streaming {
        match load(f).and_then(|f| check_streaming(&f)) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&e),
        }
    }
    if history.is_some() || record {
        let Some(history_path) = &history else {
            return fail("--record needs --history <ledger.jsonl>");
        };
        let threads = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
        // The ledger always tracks the solver rows (--solver is required);
        // the streaming row rides along when --streaming is in play.
        let solver_snapshot = match load(&solver_fresh) {
            Ok(f) => f,
            Err(e) => return fail(&e),
        };
        let streaming_snapshot = match streaming.as_deref().map(load) {
            Some(Ok(f)) => Some(f),
            Some(Err(e)) => return fail(&e),
            None => None,
        };
        let metrics = match history_metrics(&solver_snapshot, streaming_snapshot.as_ref()) {
            Ok(m) => m,
            Err(e) => return fail(&e),
        };
        match check_history(history_path, &metrics, threads, threshold_pct) {
            Ok(pass) => ok &= pass,
            Err(e) => return fail(&e),
        }
        // Record only a passing run: the ledger tracks best-known-good
        // baselines, and the gate already failed loudly otherwise.
        if record && ok {
            if let Err(e) =
                record_history(history_path, &metrics, streaming_snapshot.as_ref(), threads)
            {
                return fail(&e);
            }
        }
    }

    if ok {
        println!("bench_gate: all checks passed (regression threshold {threshold_pct}%)");
        ExitCode::SUCCESS
    } else {
        fail("perf gate failed")
    }
}
