//! The two calibration procedures of the paper, end to end.
//!
//! 1. **Antenna calibration** (§IV-C, once per installation): different
//!    reader ports add different constant phases; measuring a reference
//!    tag through every antenna and differencing removes them.
//! 2. **Device calibration** (§V-B, once per tag, only needed for material
//!    identification): the bare tag's own `θ_device0(f)` is measured at a
//!    known pose and stored in a database keyed by tag id.
//!
//! ```text
//! cargo run --release --example calibration_workflow
//! ```

use rf_prism::core::model::{extract_observation, ExtractConfig};
use rf_prism::geom::angle;
use rf_prism::prelude::*;

fn main() {
    // ---- 1. Antenna (port) calibration ----------------------------------
    // A fresh installation: ports have unknown constant offsets.
    let uncalibrated = Scene::standard_2d_uncalibrated(99);
    let reference_pose = (Vec2::new(0.5, 1.5), 0.0);
    let reference_tag = SimTag::with_seeded_diversity(1)
        .with_motion(Motion::planar_static(reference_pose.0, reference_pose.1));
    let survey = uncalibrated.survey(&reference_tag, 1);

    // Measure the intercept each antenna reports for the same tag; the
    // *differences* from what geometry predicts are the port offsets.
    println!("antenna calibration (reference tag at {}):", reference_pose.0);
    let mut corrections = Vec::new();
    for (i, (pose, reads)) in uncalibrated
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .enumerate()
    {
        let obs = extract_observation(*pose, reads, &ExtractConfig::paper())
            .expect("reference survey");
        let d = pose.position().distance(reference_pose.0.with_z(0.0));
        let predicted = rf_prism::phys::propagation::slope_from_distance(d);
        // The slope excess is the tag's k_t (port offsets are constant, so
        // they land in the intercept); the intercept excess over antenna 0
        // is the port-offset difference we need to remove.
        let kt_view = obs.slope - predicted;
        corrections.push(obs.intercept);
        println!(
            "  port {i}: intercept {:.3} rad, k_t view {:.2e} rad/Hz",
            obs.intercept, kt_view
        );
    }
    // All ports should see the same θ_orient + b_t for the reference tag;
    // residual differences are the hardware offsets. (The simulator's
    // ground truth lets us verify the estimate.)
    println!("  estimated port offset deltas (vs port 0):");
    for i in 1..corrections.len() {
        let w = rf_prism::phys::polarization::planar_dipole(reference_pose.1);
        let orient_0 =
            rf_prism::phys::polarization::orientation_phase(&uncalibrated.antenna_poses()[0], w);
        let orient_i =
            rf_prism::phys::polarization::orientation_phase(&uncalibrated.antenna_poses()[i], w);
        let estimated = angle::wrap_pi((corrections[i] - orient_i) - (corrections[0] - orient_0));
        let truth = angle::wrap_pi(
            uncalibrated.antennas()[i].hardware_phase_offset
                - uncalibrated.antennas()[0].hardware_phase_offset,
        );
        println!(
            "    port {i} − port 0: estimated {estimated:+.3} rad, truth {truth:+.3} rad \
             (error {:.1} mrad)",
            angle::distance(estimated, truth) * 1000.0
        );
    }

    // ---- 2. Device calibration (per tag) --------------------------------
    // After port calibration the scene behaves like `standard_2d`.
    let scene = Scene::standard_2d();
    let mut db = CalibrationDb::new();
    for tag_id in [10u64, 11, 12] {
        let bare = SimTag::with_seeded_diversity(tag_id)
            .with_motion(Motion::planar_static(reference_pose.0, reference_pose.1));
        let survey = scene.survey(&bare, 100 + tag_id);
        let observations: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| {
                extract_observation(p, r, &ExtractConfig::paper()).expect("usable")
            })
            .collect();
        let cal = DeviceCalibration::from_observations(
            &observations,
            reference_pose.0,
            reference_pose.1,
        );
        println!();
        println!(
            "device calibration for tag {tag_id}: k_t0 = {:.3e} rad/Hz, b_t0 = {:.3} rad, \
             {} channels",
            cal.kt0(),
            cal.bt0(),
            cal.channel_count()
        );
        db.insert(tag_id, cal);
    }

    // The database round-trips through its flat-file format.
    let text = db.to_text();
    let reloaded = rf_prism::core::CalibrationDb::from_text(&text).expect("own format");
    println!();
    println!(
        "calibration database: {} tags, {} bytes serialized, round-trips: {}",
        db.len(),
        text.len(),
        reloaded == db
    );
}
