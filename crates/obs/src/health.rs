//! Health verdicts over windowed metric deltas: the watchdog layer that
//! turns "counters moved" into "the session is degrading".
//!
//! A [`HealthEvaluator`] is configured once with threshold rules over a
//! metric table's indices, then fed one [`MetricsSnapshot`] *delta* per
//! telemetry window via [`observe`](HealthEvaluator::observe). Each call
//! folds every rule over the delta and returns a [`HealthReport`]: an
//! overall [`Health`] verdict (the worst rule level) plus one
//! machine-readable [`HealthReason`] per tripped rule, so a dashboard or
//! operator can see *which* ceiling was crossed and by how much.
//!
//! Three rule shapes cover the streaming engine's failure modes:
//!
//! * [`RateRule`] — a ratio of summed counter deltas (e.g. refit
//!   fallbacks per window processed) with a `min_denominator` guard so a
//!   near-idle window never divides by noise.
//! * [`GaugeRule`] — a ceiling on a gauge's current level (e.g. stale
//!   tags right now).
//! * [`StallRule`] — stateful: trips after N *consecutive* windows where
//!   work was attempted but nothing succeeded; the evaluator carries the
//!   streak between calls (reset via [`HealthEvaluator::reset`]).
//!
//! Verdicts are pure functions of the deltas (never wall clock), so a
//! replayed log produces byte-identical health frames.

use crate::json::JsonValue;
use crate::snapshot::MetricsSnapshot;

/// An overall or per-rule health level; ordered so the worst level wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Health {
    /// All rules within thresholds.
    Healthy,
    /// At least one rule crossed its degraded threshold.
    Degraded,
    /// At least one rule crossed its unhealthy threshold.
    Unhealthy,
}

impl Health {
    /// The canonical lowercase wire name (`"healthy"` / `"degraded"` /
    /// `"unhealthy"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Unhealthy => "unhealthy",
        }
    }

    /// Parses a wire name produced by [`as_str`](Self::as_str).
    pub fn from_str_opt(s: &str) -> Option<Health> {
        match s {
            "healthy" => Some(Health::Healthy),
            "degraded" => Some(Health::Degraded),
            "unhealthy" => Some(Health::Unhealthy),
            _ => None,
        }
    }
}

/// A ratio ceiling over summed counter deltas:
/// `sum(numerators) / sum(denominators)` compared against the degraded
/// and unhealthy thresholds. Skipped (healthy) when the denominator sum
/// is below `min_denominator` — a window that processed almost nothing
/// has no meaningful rate.
#[derive(Debug, Clone)]
pub struct RateRule {
    /// Rule name, reported in [`HealthReason::rule`].
    pub name: &'static str,
    /// Counter indices summed into the numerator.
    pub numerators: Vec<usize>,
    /// Counter indices summed into the denominator.
    pub denominators: Vec<usize>,
    /// Minimum denominator sum for the rule to apply.
    pub min_denominator: u64,
    /// Ratio at or above which the rule reports [`Health::Degraded`].
    pub degraded_at: f64,
    /// Ratio at or above which the rule reports [`Health::Unhealthy`].
    pub unhealthy_at: f64,
}

/// A ceiling on a gauge's current level.
#[derive(Debug, Clone)]
pub struct GaugeRule {
    /// Rule name, reported in [`HealthReason::rule`].
    pub name: &'static str,
    /// Gauge index to read.
    pub gauge: usize,
    /// Level at or above which the rule reports [`Health::Degraded`].
    pub degraded_at: f64,
    /// Level at or above which the rule reports [`Health::Unhealthy`].
    pub unhealthy_at: f64,
}

/// A stall detector: trips after `degraded_after` (resp.
/// `unhealthy_after`) *consecutive* observed windows in which the
/// attempted counters moved but the ok counters did not. The streak state
/// lives in the evaluator, not the rule.
#[derive(Debug, Clone)]
pub struct StallRule {
    /// Rule name, reported in [`HealthReason::rule`].
    pub name: &'static str,
    /// Counter indices whose delta sum counts as "progress".
    pub ok: Vec<usize>,
    /// Counter indices whose delta sum counts as "work attempted".
    pub attempted: Vec<usize>,
    /// Consecutive stalled windows for [`Health::Degraded`].
    pub degraded_after: u32,
    /// Consecutive stalled windows for [`Health::Unhealthy`].
    pub unhealthy_after: u32,
}

/// One tripped rule inside a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReason {
    /// The rule's name.
    pub rule: String,
    /// The level this rule reported.
    pub level: Health,
    /// The observed value (ratio, gauge level, or stall streak length).
    pub value: f64,
    /// The threshold that was crossed.
    pub threshold: f64,
}

/// The verdict for one observed window: the worst rule level plus every
/// tripped rule's reason, in rule-registration order.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Worst level across all rules ([`Health::Healthy`] if none tripped).
    pub verdict: Health,
    /// One entry per tripped rule, registration order.
    pub reasons: Vec<HealthReason>,
}

impl HealthReport {
    /// The report as a JSON object (`verdict` + `reasons` array).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj(vec![
            ("verdict", JsonValue::Str(self.verdict.as_str().to_string())),
            (
                "reasons",
                JsonValue::Arr(
                    self.reasons
                        .iter()
                        .map(|r| {
                            JsonValue::obj(vec![
                                ("rule", JsonValue::Str(r.rule.clone())),
                                ("level", JsonValue::Str(r.level.as_str().to_string())),
                                ("value", JsonValue::Num(r.value)),
                                ("threshold", JsonValue::Num(r.threshold)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report previously produced by [`to_json`](Self::to_json).
    pub fn from_json(v: &JsonValue) -> Option<HealthReport> {
        let verdict = Health::from_str_opt(v.get("verdict")?.as_str()?)?;
        let reasons = v
            .get("reasons")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(HealthReason {
                    rule: r.get("rule")?.as_str()?.to_string(),
                    level: Health::from_str_opt(r.get("level")?.as_str()?)?,
                    value: r.get("value")?.as_f64()?,
                    threshold: r.get("threshold")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(HealthReport { verdict, reasons })
    }
}

/// Folds threshold rules over windowed snapshot deltas. Build once with
/// the `rate`/`gauge`/`stall` builder methods, then call
/// [`observe`](Self::observe) once per telemetry window.
#[derive(Debug, Clone, Default)]
pub struct HealthEvaluator {
    rates: Vec<RateRule>,
    gauges: Vec<GaugeRule>,
    stalls: Vec<StallRule>,
    /// Per-stall-rule consecutive stalled-window streaks.
    streaks: Vec<u32>,
}

impl HealthEvaluator {
    /// An evaluator with no rules (always [`Health::Healthy`]).
    pub fn new() -> HealthEvaluator {
        HealthEvaluator::default()
    }

    /// Adds a [`RateRule`].
    pub fn rate(mut self, rule: RateRule) -> HealthEvaluator {
        self.rates.push(rule);
        self
    }

    /// Adds a [`GaugeRule`].
    pub fn gauge(mut self, rule: GaugeRule) -> HealthEvaluator {
        self.gauges.push(rule);
        self
    }

    /// Adds a [`StallRule`].
    pub fn stall(mut self, rule: StallRule) -> HealthEvaluator {
        self.stalls.push(rule);
        self.streaks.push(0);
        self
    }

    /// Clears all stall streak state (rules are kept).
    pub fn reset(&mut self) {
        for s in &mut self.streaks {
            *s = 0;
        }
    }

    /// Evaluates every rule against one windowed `delta` and returns the
    /// verdict. Rate and gauge rules are stateless; stall rules advance
    /// their streaks. Reasons list only the rules that tripped, in
    /// registration order (rates, then gauges, then stalls).
    pub fn observe(&mut self, delta: &MetricsSnapshot) -> HealthReport {
        let mut reasons = Vec::new();

        for rule in &self.rates {
            let num: u64 = rule.numerators.iter().map(|&i| delta.counter(i)).sum();
            let den: u64 = rule.denominators.iter().map(|&i| delta.counter(i)).sum();
            if den < rule.min_denominator {
                continue;
            }
            let ratio = num as f64 / den as f64;
            push_threshold_reason(&mut reasons, rule.name, ratio, rule.degraded_at, rule.unhealthy_at);
        }

        for rule in &self.gauges {
            let level = delta.gauge(rule.gauge);
            push_threshold_reason(&mut reasons, rule.name, level, rule.degraded_at, rule.unhealthy_at);
        }

        for (rule, streak) in self.stalls.iter().zip(&mut self.streaks) {
            let ok: u64 = rule.ok.iter().map(|&i| delta.counter(i)).sum();
            let attempted: u64 = rule.attempted.iter().map(|&i| delta.counter(i)).sum();
            if attempted > 0 && ok == 0 {
                *streak += 1;
            } else {
                *streak = 0;
            }
            let level = if *streak >= rule.unhealthy_after {
                Some((Health::Unhealthy, rule.unhealthy_after))
            } else if *streak >= rule.degraded_after {
                Some((Health::Degraded, rule.degraded_after))
            } else {
                None
            };
            if let Some((level, threshold)) = level {
                reasons.push(HealthReason {
                    rule: rule.name.to_string(),
                    level,
                    value: *streak as f64,
                    threshold: threshold as f64,
                });
            }
        }

        let verdict =
            reasons.iter().map(|r| r.level).max().unwrap_or(Health::Healthy);
        HealthReport { verdict, reasons }
    }
}

/// Shared degraded/unhealthy ceiling check for rate and gauge rules.
fn push_threshold_reason(
    reasons: &mut Vec<HealthReason>,
    name: &'static str,
    value: f64,
    degraded_at: f64,
    unhealthy_at: f64,
) {
    let level = if value >= unhealthy_at {
        Some((Health::Unhealthy, unhealthy_at))
    } else if value >= degraded_at {
        Some((Health::Degraded, degraded_at))
    } else {
        None
    };
    if let Some((level, threshold)) = level {
        reasons.push(HealthReason { rule: name.to_string(), level, value, threshold });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{MetricDef, Registry};

    static DEFS: &[MetricDef] = &[
        MetricDef::counter("t.fallbacks", "fallbacks"),
        MetricDef::counter("t.windows", "windows"),
        MetricDef::gauge("t.stale", "stale tags"),
        MetricDef::counter("t.ok", "successes"),
        MetricDef::counter("t.attempted", "attempts"),
    ];

    fn delta(fallbacks: u64, windows: u64, stale: f64, ok: u64, attempted: u64) -> MetricsSnapshot {
        let mut r = Registry::new(DEFS);
        r.add(0, fallbacks);
        r.add(1, windows);
        r.set(2, stale);
        r.add(3, ok);
        r.add(4, attempted);
        r.snapshot()
    }

    fn evaluator() -> HealthEvaluator {
        HealthEvaluator::new()
            .rate(RateRule {
                name: "fallback_rate",
                numerators: vec![0],
                denominators: vec![1],
                min_denominator: 10,
                degraded_at: 0.05,
                unhealthy_at: 0.25,
            })
            .gauge(GaugeRule { name: "stale_tags", gauge: 2, degraded_at: 1.0, unhealthy_at: 3.0 })
            .stall(StallRule {
                name: "no_progress",
                ok: vec![3],
                attempted: vec![4],
                degraded_after: 2,
                unhealthy_after: 4,
            })
    }

    #[test]
    fn healthy_when_within_thresholds() {
        let mut ev = evaluator();
        let report = ev.observe(&delta(0, 100, 0.0, 5, 5));
        assert_eq!(report.verdict, Health::Healthy);
        assert!(report.reasons.is_empty());
    }

    #[test]
    fn rate_rule_trips_with_reason() {
        let mut ev = evaluator();
        let report = ev.observe(&delta(10, 100, 0.0, 5, 5));
        assert_eq!(report.verdict, Health::Degraded);
        assert_eq!(report.reasons.len(), 1);
        assert_eq!(report.reasons[0].rule, "fallback_rate");
        assert!((report.reasons[0].value - 0.1).abs() < 1e-12);

        let report = ev.observe(&delta(50, 100, 0.0, 5, 5));
        assert_eq!(report.verdict, Health::Unhealthy);
    }

    #[test]
    fn rate_rule_skips_tiny_denominators() {
        let mut ev = evaluator();
        // 100% fallback rate, but only 2 windows: below min_denominator.
        let report = ev.observe(&delta(2, 2, 0.0, 1, 1));
        assert_eq!(report.verdict, Health::Healthy);
    }

    #[test]
    fn gauge_rule_reads_current_level() {
        let mut ev = evaluator();
        assert_eq!(ev.observe(&delta(0, 100, 2.0, 1, 1)).verdict, Health::Degraded);
        assert_eq!(ev.observe(&delta(0, 100, 3.0, 1, 1)).verdict, Health::Unhealthy);
    }

    #[test]
    fn stall_rule_needs_consecutive_windows() {
        let mut ev = evaluator();
        assert_eq!(ev.observe(&delta(0, 100, 0.0, 0, 5)).verdict, Health::Healthy);
        assert_eq!(ev.observe(&delta(0, 100, 0.0, 0, 5)).verdict, Health::Degraded);
        // Progress resets the streak.
        assert_eq!(ev.observe(&delta(0, 100, 0.0, 3, 5)).verdict, Health::Healthy);
        assert_eq!(ev.observe(&delta(0, 100, 0.0, 0, 5)).verdict, Health::Healthy);
        for _ in 0..3 {
            ev.observe(&delta(0, 100, 0.0, 0, 5));
        }
        let report = ev.observe(&delta(0, 100, 0.0, 0, 5));
        assert_eq!(report.verdict, Health::Unhealthy);
        assert_eq!(report.reasons[0].value, 5.0);
        ev.reset();
        assert_eq!(ev.observe(&delta(0, 100, 0.0, 0, 5)).verdict, Health::Healthy);
    }

    #[test]
    fn worst_level_wins_and_reasons_accumulate() {
        let mut ev = evaluator();
        let report = ev.observe(&delta(50, 100, 2.0, 1, 1));
        assert_eq!(report.verdict, Health::Unhealthy);
        let names: Vec<&str> = report.reasons.iter().map(|r| r.rule.as_str()).collect();
        assert_eq!(names, vec!["fallback_rate", "stale_tags"]);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut ev = evaluator();
        let report = ev.observe(&delta(10, 100, 2.0, 1, 1));
        let v = report.to_json();
        assert_eq!(HealthReport::from_json(&v).unwrap(), report);
        // Canonical through the parser too.
        let reparsed = JsonValue::parse(&v.to_compact()).unwrap();
        assert_eq!(HealthReport::from_json(&reparsed).unwrap(), report);
    }

    #[test]
    fn health_ordering_and_names() {
        assert!(Health::Healthy < Health::Degraded);
        assert!(Health::Degraded < Health::Unhealthy);
        for h in [Health::Healthy, Health::Degraded, Health::Unhealthy] {
            assert_eq!(Health::from_str_opt(h.as_str()), Some(h));
        }
        assert_eq!(Health::from_str_opt("bogus"), None);
    }
}
