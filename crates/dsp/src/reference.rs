//! Frozen pre-optimization front-end implementations.
//!
//! These are the allocating implementations of the pre-processing and
//! fitting routines exactly as they stood before the workspace rework
//! (per-channel `BTreeMap` + intermediate `Vec`s, full refit each
//! rejection round). They are kept for two reasons:
//!
//! * the `frontend_profile` bench measures the fused workspace kernels
//!   against this baseline, so the speedup claim is reproducible on any
//!   machine;
//! * the `frontend_workspace` property suite uses them as an independent
//!   oracle for the optimized kernels.
//!
//! Do not "improve" this module — its value is that it does not change.

use crate::linfit::{FitError, LineFit};
use crate::preprocess::{ChannelObservation, PreprocessConfig, PreprocessError, RawRead};
use crate::robust::{RobustFit, RobustFitConfig};
use crate::stats;
use rfp_geom::angle;

/// Pre-rework [`crate::preprocess::preprocess_reads`]: groups through a
/// `BTreeMap` and materializes per-channel phase vectors.
///
/// # Errors
///
/// As the optimized version: [`PreprocessError::NoUsableChannels`].
pub fn preprocess_reads(
    reads: &[RawRead],
    config: &PreprocessConfig,
) -> Result<Vec<ChannelObservation>, PreprocessError> {
    // Group by channel, preserving per-channel read order.
    let mut by_channel: std::collections::BTreeMap<usize, Vec<&RawRead>> =
        std::collections::BTreeMap::new();
    for r in reads {
        by_channel.entry(r.channel).or_default().push(r);
    }

    let mut observations = Vec::with_capacity(by_channel.len());
    let mut per_channel_reads: Vec<Vec<f64>> = Vec::with_capacity(by_channel.len());
    for (channel, reads) in by_channel {
        if reads.len() < config.min_reads_per_channel.max(1) {
            continue;
        }
        let phases: Vec<f64> = reads.iter().map(|r| r.phase).collect();
        let (phase, spread) = if config.correct_pi_jumps {
            channel_axis(&phases)
        } else {
            let mean = angle::circular_mean(phases.iter().copied()).unwrap_or(phases[0]);
            let spread = angle::circular_std(phases.iter().copied()).unwrap_or(0.0);
            (mean, spread)
        };
        let rssi = reads.iter().map(|r| r.rssi_dbm).sum::<f64>() / reads.len() as f64;
        observations.push(ChannelObservation {
            channel,
            frequency_hz: reads[0].frequency_hz,
            phase: angle::wrap_tau(phase),
            rssi_dbm: rssi,
            read_count: reads.len(),
            phase_spread: spread,
        });
        per_channel_reads.push(phases);
    }
    if observations.is_empty() {
        return Err(PreprocessError::NoUsableChannels);
    }

    // Sort ascending in frequency (keeping the raw reads aligned).
    let mut order: Vec<usize> = (0..observations.len()).collect();
    order.sort_by(|&a, &b| {
        observations[a]
            .frequency_hz
            .partial_cmp(&observations[b].frequency_hz)
            .expect("finite frequencies")
    });
    let mut sorted_obs: Vec<ChannelObservation> =
        order.iter().map(|&i| observations[i]).collect();
    let sorted_reads: Vec<&Vec<f64>> = order.iter().map(|&i| &per_channel_reads[i]).collect();

    let mut phases: Vec<f64> = sorted_obs.iter().map(|o| o.phase).collect();
    if config.correct_pi_jumps {
        angle::unwrap_in_place_period(&mut phases, std::f64::consts::PI);
        let mut votes_axis = 0usize;
        let mut votes_total = 0usize;
        for (axis, reads) in phases.iter().zip(&sorted_reads) {
            for &p in reads.iter() {
                votes_total += 1;
                if angle::distance(p, *axis) <= std::f64::consts::FRAC_PI_2 {
                    votes_axis += 1;
                }
            }
        }
        if 2 * votes_axis < votes_total {
            for p in &mut phases {
                *p += std::f64::consts::PI;
            }
        }
    } else {
        angle::unwrap_in_place(&mut phases);
    }
    for (o, p) in sorted_obs.iter_mut().zip(phases) {
        o.phase = p;
    }
    Ok(sorted_obs)
}

fn channel_axis(phases: &[f64]) -> (f64, f64) {
    debug_assert!(!phases.is_empty());
    let doubled_mean =
        angle::circular_mean(phases.iter().map(|&p| 2.0 * p)).unwrap_or(2.0 * phases[0]);
    let axis = doubled_mean / 2.0;
    let folded: Vec<f64> = phases
        .iter()
        .map(|&p| {
            if angle::distance(p, axis) <= std::f64::consts::FRAC_PI_2 {
                p
            } else {
                p + std::f64::consts::PI
            }
        })
        .collect();
    let spread = angle::circular_std(folded.iter().copied()).unwrap_or(0.0);
    (axis, spread)
}

/// Pre-rework [`crate::linfit::ols`]: unit-weight vector plus
/// [`weighted_ols`].
///
/// # Errors
///
/// As the optimized version.
pub fn ols(xs: &[f64], ys: &[f64]) -> Result<LineFit, FitError> {
    let w = vec![1.0; xs.len()];
    weighted_ols(xs, ys, &w)
}

/// Pre-rework [`crate::linfit::weighted_ols`]: materializes the residual
/// vector for its diagnostics.
///
/// # Errors
///
/// As the optimized version.
pub fn weighted_ols(xs: &[f64], ys: &[f64], weights: &[f64]) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() || xs.len() != weights.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(FitError::BadWeights);
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return Err(FitError::BadWeights);
    }
    let xbar = xs.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / wsum;
    let ybar = ys.iter().zip(weights).map(|(y, w)| y * w).sum::<f64>() / wsum;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(weights) {
        sxx += w * (x - xbar) * (x - xbar);
        sxy += w * (x - xbar) * (y - ybar);
    }
    if sxx <= 0.0 {
        return Err(FitError::DegenerateX);
    }
    let slope = sxy / sxx;
    let intercept = ybar - slope * xbar;

    let residuals: Vec<f64> =
        xs.iter().zip(ys).map(|(&x, &y)| y - (slope * x + intercept)).collect();
    let ss_res: f64 = residuals.iter().map(|r| r * r).sum();
    let ss_tot: f64 = ys.iter().map(|&y| (y - ybar) * (y - ybar)).sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else if ss_res <= f64::EPSILON {
        1.0
    } else {
        0.0
    };
    let residual_std = stats::std_dev(&residuals).unwrap_or(0.0);
    Ok(LineFit { slope, intercept, r_squared, residual_std, n: xs.len() })
}

/// Pre-rework [`crate::linfit::theil_sen`]: sorts freshly allocated slope
/// and offset vectors for the medians.
///
/// # Errors
///
/// As the optimized version.
pub fn theil_sen(xs: &[f64], ys: &[f64]) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let mut slopes = Vec::with_capacity(xs.len() * (xs.len() - 1) / 2);
    for i in 0..xs.len() {
        for j in (i + 1)..xs.len() {
            let dx = xs[j] - xs[i];
            if dx.abs() > 0.0 {
                slopes.push((ys[j] - ys[i]) / dx);
            }
        }
    }
    if slopes.is_empty() {
        return Err(FitError::DegenerateX);
    }
    let slope = stats::median(&slopes).expect("nonempty");
    let offsets: Vec<f64> = xs.iter().zip(ys).map(|(&x, &y)| y - slope * x).collect();
    let intercept = stats::median(&offsets).expect("nonempty");

    let residuals: Vec<f64> =
        xs.iter().zip(ys).map(|(&x, &y)| y - (slope * x + intercept)).collect();
    let ss_res: f64 = residuals.iter().map(|r| r * r).sum();
    let ybar = stats::mean(ys).expect("nonempty");
    let ss_tot: f64 = ys.iter().map(|&y| (y - ybar) * (y - ybar)).sum();
    let r_squared = if ss_tot > 0.0 {
        (1.0 - ss_res / ss_tot).clamp(0.0, 1.0)
    } else if ss_res <= f64::EPSILON {
        1.0
    } else {
        0.0
    };
    let residual_std = stats::std_dev(&residuals).unwrap_or(0.0);
    Ok(LineFit { slope, intercept, r_squared, residual_std, n: xs.len() })
}

/// Pre-rework [`crate::robust::robust_line_fit`]: refits the inlier
/// subset from scratch each rejection round through freshly collected
/// sub-slices.
///
/// # Errors
///
/// As the optimized version.
pub fn robust_line_fit(
    xs: &[f64],
    ys: &[f64],
    config: &RobustFitConfig,
) -> Result<RobustFit, FitError> {
    let mut current = theil_sen(xs, ys)?;
    let n = xs.len();
    let min_inliers = ((n as f64 * config.min_inlier_fraction).ceil() as usize).max(2);
    let mut inliers = vec![true; n];
    let mut iterations = 0;

    for _ in 0..config.max_iterations {
        iterations += 1;
        let residuals: Vec<f64> =
            xs.iter().zip(ys).map(|(&x, &y)| y - current.predict(x)).collect();
        let abs_res: Vec<f64> = residuals.iter().map(|r| r.abs()).collect();
        let scale = (stats::mad(&residuals).unwrap_or(0.0) * stats::MAD_TO_SIGMA)
            .max(config.scale_floor);
        let cutoff = config.threshold * scale;

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| abs_res[a].partial_cmp(&abs_res[b]).expect("finite"));
        let mut new_inliers = vec![false; n];
        for (rank, &idx) in order.iter().enumerate() {
            if rank < min_inliers || abs_res[idx] <= cutoff {
                new_inliers[idx] = true;
            }
        }

        let (sub_x, sub_y): (Vec<f64>, Vec<f64>) = xs
            .iter()
            .zip(ys)
            .zip(&new_inliers)
            .filter(|(_, &keep)| keep)
            .map(|((&x, &y), _)| (x, y))
            .unzip();
        let refit = ols(&sub_x, &sub_y)?;

        let converged = new_inliers == inliers;
        inliers = new_inliers;
        current = refit;
        if converged {
            break;
        }
    }

    Ok(RobustFit { fit: current, inliers, iterations })
}

/// Pre-rework [`crate::robust::huber_line_fit`]: allocates the weight
/// vector every IRLS round.
///
/// # Errors
///
/// As the optimized version.
pub fn huber_line_fit(
    xs: &[f64],
    ys: &[f64],
    delta: f64,
    iterations: usize,
) -> Result<LineFit, FitError> {
    let mut fit = ols(xs, ys)?;
    for _ in 0..iterations {
        let weights: Vec<f64> = xs
            .iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let r = (y - fit.predict(x)).abs();
                if r <= delta {
                    1.0
                } else {
                    delta / r
                }
            })
            .collect();
        let next = weighted_ols(xs, ys, &weights)?;
        let converged = (next.slope - fit.slope).abs() < 1e-15
            && (next.intercept - fit.intercept).abs() < 1e-12;
        fit = next;
        if converged {
            break;
        }
    }
    Ok(fit)
}
