//! Per-feature standardization.
//!
//! The RF-Prism feature vector mixes magnitudes wildly: `k_t` is ~1e-8
//! rad/Hz while the per-channel `θ_material` values are ~1 rad. Distance-
//! and margin-based classifiers (KNN, SVM) are meaningless without scaling,
//! so the evaluation pipeline standardizes features to zero mean / unit
//! variance using statistics from the *training* set only.

use crate::dataset::Dataset;

/// Zero-mean unit-variance scaler fitted on a training set.
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, scaler::StandardScaler};
/// let mut ds = Dataset::new(1);
/// ds.push(vec![0.0, 100.0], 0);
/// ds.push(vec![2.0, 300.0], 0);
/// let s = StandardScaler::fit(&ds);
/// let t = s.transform(&[1.0, 200.0]);
/// assert!(t.iter().all(|v| v.abs() < 1e-12)); // both features centred
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits per-feature mean and standard deviation on `train`.
    ///
    /// Features with (numerically) zero variance get a standard deviation of
    /// 1 so that transform leaves them centred but un-scaled.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &Dataset) -> Self {
        assert!(!train.is_empty(), "cannot fit a scaler on an empty dataset");
        let dim = train.feature_dim().expect("nonempty");
        let n = train.len() as f64;
        let mut means = vec![0.0; dim];
        for f in train.features() {
            for (m, v) in means.iter_mut().zip(f) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; dim];
        for f in train.features() {
            for ((v, m), x) in vars.iter_mut().zip(&means).zip(f) {
                *v += (x - m) * (x - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 1e-300 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        StandardScaler { means, stds }
    }

    /// Standardizes one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimension does not match the fitted data.
    pub fn transform(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.means.len(), "dimension mismatch");
        features
            .iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((x, m), s)| (x - m) / s)
            .collect()
    }

    /// Standardizes a whole dataset (labels preserved).
    pub fn transform_dataset(&self, ds: &Dataset) -> Dataset {
        let mut out = Dataset::new(ds.n_classes());
        for i in 0..ds.len() {
            let (f, l) = ds.sample(i);
            out.push(self.transform(f), l);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut ds = Dataset::new(2);
        ds.push(vec![1.0, 1000.0], 0);
        ds.push(vec![2.0, 2000.0], 0);
        ds.push(vec![3.0, 3000.0], 1);
        ds
    }

    #[test]
    fn transform_is_zero_mean_unit_var() {
        let ds = toy();
        let s = StandardScaler::fit(&ds);
        let t = s.transform_dataset(&ds);
        let dim = t.feature_dim().unwrap();
        for d in 0..dim {
            let col: Vec<f64> = t.features().iter().map(|f| f[d]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            let var = col.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>()
                / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
        assert_eq!(t.labels(), ds.labels());
    }

    #[test]
    fn constant_feature_stays_finite() {
        let mut ds = Dataset::new(1);
        ds.push(vec![5.0], 0);
        ds.push(vec![5.0], 0);
        let s = StandardScaler::fit(&ds);
        let t = s.transform(&[5.0]);
        assert_eq!(t, vec![0.0]);
        let t2 = s.transform(&[6.0]);
        assert!(t2[0].is_finite());
    }

    #[test]
    #[should_panic]
    fn empty_fit_panics() {
        let _ = StandardScaler::fit(&Dataset::new(1));
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_panics() {
        let s = StandardScaler::fit(&toy());
        let _ = s.transform(&[1.0]);
    }
}
