//! Multi-tag inventory sensing: the paper's application scenarios (Fig. 1)
//! are shelves and lines full of tags, each of which must be located,
//! oriented and identified.
//!
//! [`InventorySensor`] bundles the pieces a deployed installation holds:
//! the sensing pipeline, the per-tag device calibration database (§V-B)
//! and a trained material identifier. One call turns a round's raw reads
//! into a stock report.

use crate::calibration::CalibrationDb;
use crate::material::MaterialIdentifier;
use crate::pipeline::{RfPrism, SenseError};
use crate::solver::TagEstimate2D;
use crate::MobilityVerdict;
use rfp_dsp::preprocess::RawRead;
use rfp_phys::Material;

/// One item's entry in a stock report.
#[derive(Debug, Clone)]
pub struct ItemReport {
    /// Tag id (EPC stand-in).
    pub tag_id: u64,
    /// Disentangled physical state.
    pub estimate: TagEstimate2D,
    /// Identified material, if the tag has a device calibration and the
    /// sensor has an identifier.
    pub material: Option<Material>,
    /// Window quality verdict.
    pub verdict: MobilityVerdict,
}

/// Outcome of sensing one tag of the round.
#[derive(Debug, Clone)]
pub enum ItemOutcome {
    /// Sensed successfully.
    Report(ItemReport),
    /// Window rejected or unusable.
    Failed {
        /// Tag id.
        tag_id: u64,
        /// Why.
        error: SenseError,
    },
}

/// A deployed multi-tag sensing installation.
#[derive(Debug)]
pub struct InventorySensor {
    prism: RfPrism,
    calibrations: CalibrationDb,
    identifier: Option<MaterialIdentifier>,
    channel_count: usize,
}

impl InventorySensor {
    /// Creates a sensor from a configured pipeline.
    pub fn new(prism: RfPrism) -> Self {
        let channel_count = prism.plan().channel_count();
        InventorySensor { prism, calibrations: CalibrationDb::new(), identifier: None, channel_count }
    }

    /// Installs the per-tag device calibration database (needed for
    /// material identification only).
    pub fn with_calibrations(mut self, calibrations: CalibrationDb) -> Self {
        self.calibrations = calibrations;
        self
    }

    /// Installs a trained material identifier.
    pub fn with_identifier(mut self, identifier: MaterialIdentifier) -> Self {
        self.identifier = Some(identifier);
        self
    }

    /// The underlying pipeline.
    pub fn prism(&self) -> &RfPrism {
        &self.prism
    }

    /// Senses every tag of an inventory round.
    ///
    /// `round` holds `(tag_id, reads_per_antenna)` pairs, as produced by
    /// `rfp_sim::Scene::survey_inventory` (via each survey's
    /// `per_antenna`).
    pub fn take_stock(&self, round: &[(u64, Vec<Vec<RawRead>>)]) -> Vec<ItemOutcome> {
        round
            .iter()
            .map(|(tag_id, reads)| match self.prism.sense(reads) {
                Ok(result) => {
                    let material = match (&self.identifier, self.calibrations.get(*tag_id)) {
                        (Some(identifier), Some(calibration)) => Some(identifier.identify(
                            &result.material_features(calibration, self.channel_count),
                        )),
                        _ => None,
                    };
                    ItemOutcome::Report(ItemReport {
                        tag_id: *tag_id,
                        estimate: result.estimate,
                        material,
                        verdict: result.verdict,
                    })
                }
                Err(error) => ItemOutcome::Failed { tag_id: *tag_id, error },
            })
            .collect()
    }

    /// Convenience: the successful reports of [`InventorySensor::take_stock`].
    pub fn reports(&self, round: &[(u64, Vec<Vec<RawRead>>)]) -> Vec<ItemReport> {
        self.take_stock(round)
            .into_iter()
            .filter_map(|o| match o {
                ItemOutcome::Report(r) => Some(r),
                ItemOutcome::Failed { .. } => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, Scene, SimTag};

    fn round_from_scene(
        scene: &Scene,
        tags: &[SimTag],
        seed: u64,
    ) -> Vec<(u64, Vec<Vec<RawRead>>)> {
        scene
            .survey_inventory(tags, seed)
            .surveys
            .into_iter()
            .map(|(id, s)| (id, s.per_antenna))
            .collect()
    }

    #[test]
    fn stock_report_localizes_every_static_tag() {
        let scene = Scene::standard_2d();
        let positions = [Vec2::new(0.0, 1.0), Vec2::new(0.6, 1.6), Vec2::new(1.1, 2.1)];
        let tags: Vec<SimTag> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                SimTag::with_seeded_diversity(i as u64 + 1)
                    .with_motion(Motion::planar_static(p, 0.3))
            })
            .collect();
        let sensor = InventorySensor::new(
            RfPrism::new(scene.antenna_poses(), scene.reader().plan)
                .with_region(scene.region()),
        );
        let round = round_from_scene(&scene, &tags, 5);
        let reports = sensor.reports(&round);
        assert_eq!(reports.len(), 3);
        for (report, truth) in reports.iter().zip(&positions) {
            let err = report.estimate.position.distance(*truth);
            assert!(err < 0.35, "tag {}: {err} m", report.tag_id);
            assert!(report.material.is_none(), "no identifier installed");
        }
    }

    #[test]
    fn moving_tags_reported_as_failed() {
        let scene = Scene::standard_2d();
        let tags = vec![
            SimTag::with_seeded_diversity(1)
                .with_motion(Motion::planar_static(Vec2::new(0.4, 1.2), 0.0)),
            SimTag::with_seeded_diversity(2).with_motion(Motion::planar_linear(
                Vec2::new(0.0, 1.8),
                Vec2::new(0.05, 0.02),
                0.0,
            )),
        ];
        let sensor = InventorySensor::new(
            RfPrism::new(scene.antenna_poses(), scene.reader().plan)
                .with_region(scene.region()),
        );
        let outcomes = sensor.take_stock(&round_from_scene(&scene, &tags, 6));
        assert!(matches!(outcomes[0], ItemOutcome::Report(_)));
        assert!(matches!(
            outcomes[1],
            ItemOutcome::Failed { tag_id: 2, error: SenseError::TagMoving { .. } }
        ));
    }
}
