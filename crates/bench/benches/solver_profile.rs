//! Solver profile: what one disentangling solve costs, what the analytic
//! Jacobian buys over the numeric fallback, and what coarse-to-fine seed
//! pruning plus warm starts buy over the exhaustive multi-start scan
//! (DESIGN.md §6).
//!
//! For the 2-D (5-parameter) and 3-D (7-parameter) solves this reports,
//! per configuration, the single-solve p50 latency and the LM work
//! counters ([`SolveStats`]): residual-vector evaluations, Jacobian
//! evaluations and iterations. The numeric core charges its
//! central-difference sweeps (2 per parameter per iteration) to
//! `residual_evals` — exactly the cost the fused analytic evaluation
//! removes — and the seed accounting ([`PruneStats`]) shows how many
//! multi-start seeds each configuration actually refined.
//!
//! Five configurations per dimension:
//!
//! * `analytic`  — the defaults: analytic Jacobian, pruned seed beam;
//! * `numeric`   — numeric Jacobian, pruned seed beam;
//! * `exhaustive` — analytic Jacobian, every seed refined (the pre-pruning
//!   behaviour, bit-for-bit);
//! * `warm`      — analytic defaults, warm-started from the previous
//!   solve's estimate (the steady-state regime of a live deployment);
//! * `tuned`     — the perf backends: the cached tridiagonal step solver
//!   (O(P²) λ-resolves) plus, in 2-D, the padded row lanes with
//!   polynomial trig. Pinned ≤1e-9 against the defaults by the
//!   `step_solver` proptest suite.
//!
//! Each entry also carries the damped-step counters ([`StepStats`]):
//! λ retries beyond each iteration's first attempt, Cholesky rejections
//! and cached O(P²) resolves — the work the cached backend moves off the
//! O(P³) path. A `step_micro` section times the step stage in isolation
//! (full Cholesky refactor per λ vs cached resolve, P=5 and P=7).
//!
//! A fifth timing per dimension, `reference`, runs the frozen pre-lane
//! oracle (`rfp_core::reference`) cold on the same observations in the
//! same process, yielding the same-run ratios `lane_speedup_p50` /
//! `lane_speedup_min` — what the const-generic lane core buys over the
//! twin scalar solvers it replaced, with CPU steal cancelled.
//!
//! Writes a `BENCH_solver.json` snapshot at the repo root (override the
//! path with `SOLVER_PROFILE_OUT`) so the solver perf trajectory is
//! recorded PR over PR; `scripts/bench_gate` regenerates it with
//! `SOLVER_PROFILE_QUICK=1` (fewer repeats) and fails CI on regression.

use rfp_bench::report;
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::reference::{
    solve_2d_reference, solve_3d_reference, Reference2DWorkspace, Reference3DWorkspace,
};
use rfp_core::lm::{damped_step_cholesky, CachedStep, LaneMode, StepSolver, StepStats};
use rfp_core::solver::{
    solve_2d_seeded_warm, JacobianMode, PruneStats, SolveSeeds, SolveStats, SolverConfig,
    SolverWorkspace, WarmStart,
};
use rfp_core::solver3d::{
    solve_3d_seeded_warm, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace, WarmStart3D,
};
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};
use std::hint::black_box;
use std::time::Instant;

/// One profiled configuration: p50 and floor latency plus per-solve work
/// counters. The floor (fastest sample) is what the CI gate compares —
/// CPU steal on a loaded box only ever *inflates* samples, so the
/// minimum is the steal-robust latency estimate, while p50 stays the
/// honest headline number for reports.
#[derive(Debug, Clone, Copy)]
struct Profile {
    p50_us: f64,
    min_us: f64,
    stats: SolveStats,
    prune: PruneStats,
    steps: StepStats,
}

/// `SOLVER_PROFILE_QUICK=1` trims the repeat counts so the CI perf gate
/// finishes in seconds; the gate compares the floor latency (`min_us`),
/// which stays stable at reduced repeat counts even on a loaded box.
fn quick_mode() -> bool {
    std::env::var("SOLVER_PROFILE_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Times `solve` over `repeats` runs (after `warmup` unrecorded runs) and
/// returns the p50 latency with the per-solve counters of the final run.
fn profile<F>(mut solve: F, warmup: usize, repeats: usize) -> Profile
where
    F: FnMut() -> (SolveStats, PruneStats, StepStats),
{
    for _ in 0..warmup {
        solve();
    }
    let mut samples_us = Vec::with_capacity(repeats);
    let mut stats = SolveStats::default();
    let mut prune = PruneStats::default();
    let mut steps = StepStats::default();
    for _ in 0..repeats {
        let t0 = Instant::now();
        (stats, prune, steps) = solve();
        samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Profile {
        p50_us: samples_us[samples_us.len() / 2],
        min_us: samples_us[0],
        stats,
        prune,
        steps,
    }
}

fn observations_2d(scene: &Scene) -> Vec<AntennaObservation> {
    let tag = SimTag::with_seeded_diversity(7)
        .attached_to(Material::Glass)
        .with_motion(Motion::planar_static(Vec2::new(0.45, 1.55), 0.7));
    let survey = scene.survey(&tag, 41);
    scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect()
}

fn observations_3d(scene: &Scene) -> Vec<AntennaObservation> {
    let tag = SimTag::with_seeded_diversity(11)
        .attached_to(Material::Wood)
        .with_motion(Motion::Static {
            position: rfp_geom::Vec3::new(0.8, 1.3, 0.6),
            dipole: rfp_geom::Vec3::new(0.6, 0.3, 0.8).normalized(),
        });
    let survey = scene.survey(&tag, 43);
    scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect()
}

/// Profiles one 2-D configuration; `warm_from_self` re-seeds each solve
/// from its own converged estimate (the steady-state warm-start regime).
fn profile_2d(config: SolverConfig, warm_from_self: bool) -> Profile {
    let scene = Scene::standard_2d();
    let obs = observations_2d(&scene);
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    let warm = warm_from_self.then(|| {
        let est = solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
        WarmStart::from_estimate(&est)
    });
    let (warmup, repeats) = if quick_mode() { (5, 50) } else { (20, 200) };
    profile(
        || {
            let (s0, p0, t0) = (ws.stats(), ws.prune_stats(), ws.step_stats());
            black_box(
                solve_2d_seeded_warm(black_box(&obs), &seeds, &config, &mut ws, warm.as_ref())
                    .expect("solvable"),
            );
            (ws.stats().since(s0), ws.prune_stats().since(p0), ws.step_stats().since(t0))
        },
        warmup,
        repeats,
    )
}

/// Profiles one 3-D configuration (see [`profile_2d`]).
fn profile_3d(config: Solver3DConfig, warm_from_self: bool) -> Profile {
    let scene = Scene::six_antenna_3d();
    let obs = observations_3d(&scene);
    let seeds =
        Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), &config, &scene.antenna_poses());
    let mut ws = Solver3DWorkspace::default();
    let warm = warm_from_self.then(|| {
        let est = solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");
        WarmStart3D::from_estimate(&est)
    });
    let (warmup, repeats) = if quick_mode() { (2, 20) } else { (5, 60) };
    profile(
        || {
            let (s0, p0, t0) = (ws.stats(), ws.prune_stats(), ws.step_stats());
            black_box(
                solve_3d_seeded_warm(black_box(&obs), &seeds, &config, &mut ws, warm.as_ref())
                    .expect("solvable"),
            );
            (ws.stats().since(s0), ws.prune_stats().since(p0), ws.step_stats().since(t0))
        },
        warmup,
        repeats,
    )
}

/// Times the frozen 2-D oracle cold on the same scene as [`profile_2d`].
/// The oracle carries no work counters (deliberately — it predates the
/// lane telemetry), so only the latencies are meaningful.
fn profile_2d_reference(config: &SolverConfig) -> Profile {
    let scene = Scene::standard_2d();
    let obs = observations_2d(&scene);
    let seeds = SolveSeeds::for_scene(scene.region(), config, &scene.antenna_poses());
    let mut ws = Reference2DWorkspace::default();
    let (warmup, repeats) = if quick_mode() { (5, 50) } else { (20, 200) };
    profile(
        || {
            black_box(
                solve_2d_reference(black_box(&obs), &seeds, config, &mut ws, None)
                    .expect("solvable"),
            );
            (SolveStats::default(), PruneStats::default(), StepStats::default())
        },
        warmup,
        repeats,
    )
}

/// Times the frozen 3-D oracle cold (see [`profile_2d_reference`]).
fn profile_3d_reference(config: &Solver3DConfig) -> Profile {
    let scene = Scene::six_antenna_3d();
    let obs = observations_3d(&scene);
    let seeds =
        Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), config, &scene.antenna_poses());
    let mut ws = Reference3DWorkspace::default();
    let (warmup, repeats) = if quick_mode() { (2, 20) } else { (5, 60) };
    profile(
        || {
            black_box(
                solve_3d_reference(black_box(&obs), &seeds, config, &mut ws, None)
                    .expect("solvable"),
            );
            (SolveStats::default(), PruneStats::default(), StepStats::default())
        },
        warmup,
        repeats,
    )
}

/// Times the damped-step stage in isolation for one parameter count: the
/// full copy+damp+Cholesky path per λ attempt versus a cached O(P²)
/// tridiagonal resolve, on a deterministic well-conditioned SPD system.
/// These are the per-retry costs the cached backend changes; the one-off
/// tridiagonalization is reported alongside (paid once per LM iteration,
/// not once per λ attempt).
fn step_micro<const P: usize>() -> JsonValue {
    // Deterministic dense SPD system: MᵀM + P·I from an integer pattern.
    let mut m = [[0.0f64; P]; P];
    for (i, row) in m.iter_mut().enumerate() {
        for (j, v) in row.iter_mut().enumerate() {
            *v = ((i * P + j) % 7) as f64 * 0.3 - 0.8;
        }
    }
    let mut jtj = [[0.0f64; P]; P];
    for a in 0..P {
        for b in 0..P {
            let mut s = 0.0;
            for row in &m {
                s += row[a] * row[b];
            }
            jtj[a][b] = s + if a == b { P as f64 } else { 0.0 };
        }
    }
    let mut jtr = [0.0f64; P];
    for (i, v) in jtr.iter_mut().enumerate() {
        *v = (i as f64) * 0.7 - 1.1;
    }

    let lambdas = [1e-3, 1e-2, 1e-1, 1.0];
    let reps = if quick_mode() { 20_000 } else { 200_000 };
    let mut scratch = [[0.0f64; P]; P];
    let mut delta = [0.0f64; P];

    let t0 = Instant::now();
    for r in 0..reps {
        let lambda = lambdas[r % lambdas.len()];
        assert!(damped_step_cholesky(black_box(&jtj), &jtr, lambda, &mut scratch, &mut delta));
        black_box(&delta);
    }
    let chol_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;

    let mut cached = CachedStep::<P>::default();
    let t0 = Instant::now();
    for _ in 0..reps {
        cached.factor(black_box(&jtj), &jtr);
        black_box(&cached);
    }
    let factor_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;

    cached.factor(&jtj, &jtr);
    let t0 = Instant::now();
    for r in 0..reps {
        let lambda = lambdas[r % lambdas.len()];
        assert!(cached.solve(lambda, &mut delta));
        black_box(&delta);
    }
    let resolve_ns = t0.elapsed().as_secs_f64() * 1e9 / reps as f64;

    println!(
        "  P={P}: cholesky step {chol_ns:.1} ns/λ   cached resolve {resolve_ns:.1} ns/λ \
         (×{:.2})   tridiagonal factor {factor_ns:.1} ns once per iteration",
        chol_ns / resolve_ns
    );
    let round1 = |x: f64| (x * 10.0).round() / 10.0;
    JsonValue::obj(vec![
        ("cholesky_step_ns", JsonValue::Num(round1(chol_ns))),
        ("cached_resolve_ns", JsonValue::Num(round1(resolve_ns))),
        ("cached_factor_ns", JsonValue::Num(round1(factor_ns))),
        ("resolve_speedup", JsonValue::Num((chol_ns / resolve_ns * 100.0).round() / 100.0)),
    ])
}

fn print_rows(label: &str, rows: &[(&str, Profile)]) {
    report::section(label);
    for (name, p) in rows {
        println!(
            "  {name:<10} p50 {:>9.1} µs   residual evals {:>6}   jacobian evals {:>5}   iterations {:>5}   seeds {:>3}/{:<3}",
            p.p50_us,
            p.stats.residual_evals,
            p.stats.jacobian_evals,
            p.stats.iterations,
            p.prune.seeds_refined,
            p.prune.seeds_total,
        );
    }
}

fn json_entry(p: Profile) -> JsonValue {
    JsonValue::obj(vec![
        ("p50_us", JsonValue::Num((p.p50_us * 100.0).round() / 100.0)),
        ("min_us", JsonValue::Num((p.min_us * 100.0).round() / 100.0)),
        ("residual_evals", JsonValue::Num(p.stats.residual_evals as f64)),
        ("jacobian_evals", JsonValue::Num(p.stats.jacobian_evals as f64)),
        ("iterations", JsonValue::Num(p.stats.iterations as f64)),
        ("seeds_total", JsonValue::Num(p.prune.seeds_total as f64)),
        ("seeds_refined", JsonValue::Num(p.prune.seeds_refined as f64)),
        ("warm_start_hits", JsonValue::Num(p.prune.warm_start_hits as f64)),
        ("lambda_retries", JsonValue::Num(p.steps.lambda_retries as f64)),
        ("chol_failures", JsonValue::Num(p.steps.chol_failures as f64)),
        ("cached_solves", JsonValue::Num(p.steps.cached_solves as f64)),
    ])
}

/// One dimension's profiles: the pruned analytic defaults (`analytic`),
/// the pruned numeric fallback, the exhaustive scan, the warm-started
/// steady state and the tuned step/lane backends.
#[derive(Clone, Copy)]
struct DimProfiles {
    analytic: Profile,
    numeric: Profile,
    exhaustive: Profile,
    warm: Profile,
    /// Cached step solver (+ padded lanes in 2-D) — the perf backends.
    tuned: Profile,
    /// The frozen pre-lane oracle, cold, same run — latencies only.
    reference: Profile,
}

fn dim_json(d: DimProfiles) -> JsonValue {
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    JsonValue::obj(vec![
        ("analytic", json_entry(d.analytic)),
        ("numeric", json_entry(d.numeric)),
        ("exhaustive", json_entry(d.exhaustive)),
        ("warm", json_entry(d.warm)),
        ("tuned", json_entry(d.tuned)),
        (
            "reference",
            JsonValue::obj(vec![
                ("p50_us", JsonValue::Num(round2(d.reference.p50_us))),
                ("min_us", JsonValue::Num(round2(d.reference.min_us))),
            ]),
        ),
        (
            "lane_speedup_p50",
            JsonValue::Num(round2(d.reference.p50_us / d.analytic.p50_us)),
        ),
        (
            "lane_speedup_min",
            JsonValue::Num(round2(d.reference.min_us / d.analytic.min_us)),
        ),
        (
            "tuned_speedup_p50",
            JsonValue::Num(round2(d.analytic.p50_us / d.tuned.p50_us)),
        ),
        (
            "tuned_speedup_min",
            JsonValue::Num(round2(d.analytic.min_us / d.tuned.min_us)),
        ),
        ("p50_speedup", JsonValue::Num(round2(d.numeric.p50_us / d.analytic.p50_us))),
        (
            "residual_eval_ratio",
            JsonValue::Num(round2(
                d.numeric.stats.residual_evals as f64 / d.analytic.stats.residual_evals as f64,
            )),
        ),
        (
            "prune_speedup",
            JsonValue::Num(round2(d.exhaustive.p50_us / d.analytic.p50_us)),
        ),
        ("warm_speedup", JsonValue::Num(round2(d.exhaustive.p50_us / d.warm.p50_us))),
    ])
}

fn write_snapshot(d2: DimProfiles, d3: DimProfiles, micro5: JsonValue, micro7: JsonValue) {
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    let path = std::env::var("SOLVER_PROFILE_OUT").unwrap_or_else(|_| default_path.to_string());
    let value = rfp_obs::report::snapshot(
        "solver_profile",
        vec![
            (
                "units",
                JsonValue::obj(vec![
                    (
                        "latency",
                        JsonValue::Str(
                            "microseconds (single-solve p50 + floor; the gate compares floors)"
                                .into(),
                        ),
                    ),
                    ("counters", JsonValue::Str("per solve, all LM starts".into())),
                ]),
            ),
            ("solve_2d", dim_json(d2)),
            ("solve_3d", dim_json(d3)),
            (
                "step_micro",
                JsonValue::obj(vec![("p5", micro5), ("p7", micro7)]),
            ),
        ],
    );
    match rfp_obs::report::write_json(std::path::Path::new(&path), &value) {
        Ok(()) => println!("\nsnapshot written to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}

fn main() {
    report::header(
        "solver_profile",
        "single-solve cost: Jacobian mode × seed pruning × warm starts",
    );
    if quick_mode() {
        println!("(quick mode: reduced repeats)");
    }

    let d2 = DimProfiles {
        analytic: profile_2d(SolverConfig::default(), false),
        numeric: profile_2d(
            SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() },
            false,
        ),
        exhaustive: profile_2d(SolverConfig::exhaustive(), false),
        warm: profile_2d(SolverConfig::default(), true),
        tuned: profile_2d(
            SolverConfig {
                step_solver: StepSolver::Cached,
                lane_mode: LaneMode::Padded4,
                ..SolverConfig::default()
            },
            false,
        ),
        reference: profile_2d_reference(&SolverConfig::default()),
    };
    print_rows(
        "2-D (5 parameters, 3 antennas)",
        &[
            ("analytic", d2.analytic),
            ("numeric", d2.numeric),
            ("exhaustive", d2.exhaustive),
            ("warm", d2.warm),
            ("tuned", d2.tuned),
        ],
    );

    let d3 = DimProfiles {
        analytic: profile_3d(Solver3DConfig::default(), false),
        numeric: profile_3d(
            Solver3DConfig { jacobian: JacobianMode::Numeric, ..Solver3DConfig::default() },
            false,
        ),
        exhaustive: profile_3d(Solver3DConfig::exhaustive(), false),
        warm: profile_3d(Solver3DConfig::default(), true),
        // Padded4 has no dedicated 3-D kernels (it runs the Wide4 path),
        // so the tuned 3-D row is the cached step solver alone.
        tuned: profile_3d(
            Solver3DConfig { step_solver: StepSolver::Cached, ..Solver3DConfig::default() },
            false,
        ),
        reference: profile_3d_reference(&Solver3DConfig::default()),
    };
    print_rows(
        "3-D (7 parameters, 6 antennas)",
        &[
            ("analytic", d3.analytic),
            ("numeric", d3.numeric),
            ("exhaustive", d3.exhaustive),
            ("warm", d3.warm),
            ("tuned", d3.tuned),
        ],
    );

    for (dim, d) in [("2-D", d2), ("3-D", d3)] {
        println!(
            "  {dim} speedups: numeric/analytic ×{:.2}   exhaustive/pruned ×{:.2}   exhaustive/warm ×{:.2}",
            d.numeric.p50_us / d.analytic.p50_us,
            d.exhaustive.p50_us / d.analytic.p50_us,
            d.exhaustive.p50_us / d.warm.p50_us,
        );
        println!(
            "  {dim} lane core vs frozen oracle: reference p50 {:.1} µs → lanes {:.1} µs (×{:.2} p50, ×{:.2} floor)",
            d.reference.p50_us,
            d.analytic.p50_us,
            d.reference.p50_us / d.analytic.p50_us,
            d.reference.min_us / d.analytic.min_us,
        );
        println!(
            "  {dim} tuned backends vs defaults: {:.1} µs → {:.1} µs (×{:.2} p50), \
             {} of {} λ retries resolved from the step cache per solve",
            d.analytic.p50_us,
            d.tuned.p50_us,
            d.analytic.p50_us / d.tuned.p50_us,
            d.tuned.steps.cached_solves,
            d.tuned.steps.lambda_retries,
        );
    }

    report::section("damped-step stage in isolation (per λ attempt)");
    let micro5 = step_micro::<5>();
    let micro7 = step_micro::<7>();

    write_snapshot(d2, d3, micro5, micro7);

    // The headline claim of the analytic path: at least 2× fewer residual
    // evaluations per solve, in both dimensions.
    assert!(
        d2.analytic.stats.residual_evals * 2 <= d2.numeric.stats.residual_evals,
        "2-D analytic {} evals vs numeric {}",
        d2.analytic.stats.residual_evals,
        d2.numeric.stats.residual_evals
    );
    assert!(
        d3.analytic.stats.residual_evals * 2 <= d3.numeric.stats.residual_evals,
        "3-D analytic {} evals vs numeric {}",
        d3.analytic.stats.residual_evals,
        d3.numeric.stats.residual_evals
    );
    // And the headline claim of seed pruning: the pruned defaults do at
    // most half the LM work of the exhaustive scan, in both dimensions.
    // Asserted on the deterministic iteration counters, not wall time — a
    // loaded single-core CI box jitters p50 across the 2× line while the
    // work counters never move (the wall-clock trajectory is enforced
    // separately by `scripts/bench_gate` against the committed snapshot).
    for (dim, d) in [("2-D", d2), ("3-D", d3)] {
        assert!(
            d.analytic.stats.iterations * 2 <= d.exhaustive.stats.iterations,
            "{dim} pruned ran {} LM iterations vs exhaustive {} — pruning must halve the work",
            d.analytic.stats.iterations,
            d.exhaustive.stats.iterations
        );
        assert!(
            d.warm.prune.warm_start_hits > 0,
            "{dim} warm profile never hit the warm-start gate"
        );
        // The cache is a retry-ladder device: the tuned row may
        // legitimately never enter a ladder (0 cached solves), but the
        // default backend must never touch the cache at all.
        assert_eq!(
            d.analytic.steps.cached_solves, 0,
            "{dim} default profile must not touch the step cache"
        );
    }
}
