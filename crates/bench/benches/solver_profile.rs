//! Solver profile: what one disentangling solve costs, and what the
//! analytic Jacobian buys over the numeric fallback (DESIGN.md §6).
//!
//! For the 2-D (5-parameter) and 3-D (7-parameter) solves this reports,
//! per [`JacobianMode`], the single-solve p50 latency and the LM work
//! counters ([`SolveStats`]): residual-vector evaluations, Jacobian
//! evaluations and iterations. The numeric core charges its
//! central-difference sweeps (2 per parameter per iteration) to
//! `residual_evals` — exactly the cost the fused analytic evaluation
//! removes, so the eval ratio is the machine-independent half of the
//! story and the p50 the machine-dependent half.
//!
//! Writes a `BENCH_solver.json` snapshot at the repo root so the solver
//! perf trajectory is recorded PR over PR.

use rfp_bench::report;
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::solver::{
    solve_2d_seeded, JacobianMode, SolveSeeds, SolveStats, SolverConfig, SolverWorkspace,
};
use rfp_core::solver3d::{
    solve_3d_seeded, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace,
};
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};
use std::hint::black_box;
use std::time::Instant;

/// One profiled configuration: p50 latency plus per-solve work counters.
#[derive(Debug, Clone, Copy)]
struct Profile {
    p50_us: f64,
    stats: SolveStats,
}

/// Times `solve` over `repeats` runs (after `warmup` unrecorded runs) and
/// returns the p50 latency with the per-solve [`SolveStats`] of the final
/// run.
fn profile<F>(mut solve: F, warmup: usize, repeats: usize) -> Profile
where
    F: FnMut() -> SolveStats,
{
    for _ in 0..warmup {
        solve();
    }
    let mut samples_us = Vec::with_capacity(repeats);
    let mut stats = SolveStats::default();
    for _ in 0..repeats {
        let t0 = Instant::now();
        stats = solve();
        samples_us.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    samples_us.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    Profile { p50_us: samples_us[samples_us.len() / 2], stats }
}

fn observations_2d(scene: &Scene) -> Vec<AntennaObservation> {
    let tag = SimTag::with_seeded_diversity(7)
        .attached_to(Material::Glass)
        .with_motion(Motion::planar_static(Vec2::new(0.45, 1.55), 0.7));
    let survey = scene.survey(&tag, 41);
    scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect()
}

fn observations_3d(scene: &Scene) -> Vec<AntennaObservation> {
    let tag = SimTag::with_seeded_diversity(11)
        .attached_to(Material::Wood)
        .with_motion(Motion::Static {
            position: rfp_geom::Vec3::new(0.8, 1.3, 0.6),
            dipole: rfp_geom::Vec3::new(0.6, 0.3, 0.8).normalized(),
        });
    let survey = scene.survey(&tag, 43);
    scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("usable"))
        .collect()
}

fn profile_2d(mode: JacobianMode) -> Profile {
    let scene = Scene::standard_2d();
    let obs = observations_2d(&scene);
    let config = SolverConfig { jacobian: mode, ..SolverConfig::default() };
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    profile(
        || {
            black_box(
                solve_2d_seeded(black_box(&obs), &seeds, &config, &mut ws)
                    .expect("solvable"),
            );
            ws.take_stats()
        },
        20,
        200,
    )
}

fn profile_3d(mode: JacobianMode) -> Profile {
    let scene = Scene::six_antenna_3d();
    let obs = observations_3d(&scene);
    let config = Solver3DConfig { jacobian: mode, ..Solver3DConfig::default() };
    let seeds =
        Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), &config, &scene.antenna_poses());
    let mut ws = Solver3DWorkspace::default();
    profile(
        || {
            black_box(
                solve_3d_seeded(black_box(&obs), &seeds, &config, &mut ws)
                    .expect("solvable"),
            );
            ws.take_stats()
        },
        5,
        60,
    )
}

fn print_rows(label: &str, analytic: Profile, numeric: Profile) {
    report::section(label);
    for (name, p) in [("analytic", analytic), ("numeric", numeric)] {
        println!(
            "  {name:<10} p50 {:>9.1} µs   residual evals {:>6}   jacobian evals {:>5}   iterations {:>5}",
            p.p50_us, p.stats.residual_evals, p.stats.jacobian_evals, p.stats.iterations
        );
    }
    println!(
        "  speedup p50 ×{:.2}   residual-eval ratio ×{:.2}",
        numeric.p50_us / analytic.p50_us,
        numeric.stats.residual_evals as f64 / analytic.stats.residual_evals as f64
    );
}

fn json_entry(p: Profile) -> JsonValue {
    JsonValue::obj(vec![
        ("p50_us", JsonValue::Num((p.p50_us * 100.0).round() / 100.0)),
        ("residual_evals", JsonValue::Num(p.stats.residual_evals as f64)),
        ("jacobian_evals", JsonValue::Num(p.stats.jacobian_evals as f64)),
        ("iterations", JsonValue::Num(p.stats.iterations as f64)),
    ])
}

fn mode_pair(analytic: Profile, numeric: Profile) -> JsonValue {
    let round2 = |x: f64| (x * 100.0).round() / 100.0;
    JsonValue::obj(vec![
        ("analytic", json_entry(analytic)),
        ("numeric", json_entry(numeric)),
        ("p50_speedup", JsonValue::Num(round2(numeric.p50_us / analytic.p50_us))),
        (
            "residual_eval_ratio",
            JsonValue::Num(round2(
                numeric.stats.residual_evals as f64 / analytic.stats.residual_evals as f64,
            )),
        ),
    ])
}

fn write_snapshot(a2: Profile, n2: Profile, a3: Profile, n3: Profile) {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_solver.json");
    let value = rfp_obs::report::snapshot(
        "solver_profile",
        vec![
            (
                "units",
                JsonValue::obj(vec![
                    (
                        "latency",
                        JsonValue::Str("microseconds (single-solve p50)".into()),
                    ),
                    ("counters", JsonValue::Str("per solve, all LM starts".into())),
                ]),
            ),
            ("solve_2d", mode_pair(a2, n2)),
            ("solve_3d", mode_pair(a3, n3)),
        ],
    );
    match rfp_obs::report::write_json(std::path::Path::new(path), &value) {
        Ok(()) => println!("\nsnapshot written to BENCH_solver.json"),
        Err(e) => println!("\ncould not write BENCH_solver.json: {e}"),
    }
}

fn main() {
    report::header("solver_profile", "single-solve cost, analytic vs numeric Jacobian");

    let analytic_2d = profile_2d(JacobianMode::Analytic);
    let numeric_2d = profile_2d(JacobianMode::Numeric);
    print_rows("2-D (5 parameters, 3 antennas)", analytic_2d, numeric_2d);

    let analytic_3d = profile_3d(JacobianMode::Analytic);
    let numeric_3d = profile_3d(JacobianMode::Numeric);
    print_rows("3-D (7 parameters, 6 antennas)", analytic_3d, numeric_3d);

    write_snapshot(analytic_2d, numeric_2d, analytic_3d, numeric_3d);

    // The headline claim of the analytic path: at least 2× fewer residual
    // evaluations per solve, in both dimensions.
    assert!(
        analytic_2d.stats.residual_evals * 2 <= numeric_2d.stats.residual_evals,
        "2-D analytic {} evals vs numeric {}",
        analytic_2d.stats.residual_evals,
        numeric_2d.stats.residual_evals
    );
    assert!(
        analytic_3d.stats.residual_evals * 2 <= numeric_3d.stats.residual_evals,
        "3-D analytic {} evals vs numeric {}",
        analytic_3d.stats.residual_evals,
        numeric_3d.stats.residual_evals
    );
}
