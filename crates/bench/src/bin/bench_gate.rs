//! Solver perf gate: compares a freshly measured `BENCH_solver.json`
//! against the committed snapshot and fails (exit 1) when the default
//! configuration's single-solve p50 regresses by more than the threshold
//! in either dimension.
//!
//! ```text
//! bench_gate <committed.json> <fresh.json> [--threshold-pct 15]
//! ```
//!
//! Driven by `scripts/bench_gate`, which regenerates the fresh snapshot
//! with `SOLVER_PROFILE_QUICK=1`. Absolute latencies vary across machines,
//! so the gate compares two snapshots from the *same* machine — the
//! committed file is rewritten by a full `cargo bench` run whenever the
//! solver's perf profile changes intentionally.

use rfp_obs::JsonValue;
use std::process::ExitCode;

const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

fn fail(msg: &str) -> ExitCode {
    eprintln!("bench_gate: {msg}");
    ExitCode::FAILURE
}

/// Reads `<dim>.analytic.p50_us` (the default configuration) out of a
/// solver snapshot, checking the schema envelope on the way in.
fn p50_us(snapshot: &JsonValue, dim: &str) -> Result<f64, String> {
    let version = snapshot
        .get("schema_version")
        .and_then(JsonValue::as_u64)
        .ok_or("missing schema_version")?;
    if version != 1 {
        return Err(format!("unsupported schema_version {version} (expected 1)"));
    }
    match snapshot.get("name").and_then(JsonValue::as_str) {
        Some("solver_profile") => {}
        other => return Err(format!("not a solver_profile snapshot: name {other:?}")),
    }
    snapshot
        .get(dim)
        .and_then(|d| d.get("analytic"))
        .and_then(|a| a.get("p50_us"))
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("missing {dim}.analytic.p50_us"))
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    JsonValue::parse(&text).map_err(|e| format!("parse {path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold_pct = DEFAULT_THRESHOLD_PCT;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threshold-pct" {
            match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => threshold_pct = v,
                None => return fail("--threshold-pct needs a number"),
            }
        } else {
            paths.push(a.clone());
        }
    }
    let [committed_path, fresh_path] = paths.as_slice() else {
        return fail("usage: bench_gate <committed.json> <fresh.json> [--threshold-pct 15]");
    };

    let (committed, fresh) = match (load(committed_path), load(fresh_path)) {
        (Ok(c), Ok(f)) => (c, f),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };

    let mut ok = true;
    for dim in ["solve_2d", "solve_3d"] {
        let (base, now) = match (p50_us(&committed, dim), p50_us(&fresh, dim)) {
            (Ok(b), Ok(n)) => (b, n),
            (Err(e), _) | (_, Err(e)) => return fail(&e),
        };
        let delta_pct = (now - base) / base * 100.0;
        let verdict = if delta_pct > threshold_pct { "REGRESSED" } else { "ok" };
        println!(
            "  {dim}: committed {base:.1} µs, fresh {now:.1} µs ({delta_pct:+.1}%) — {verdict}"
        );
        ok &= delta_pct <= threshold_pct;
    }
    if ok {
        println!("bench_gate: p50 within {threshold_pct}% of committed snapshot");
        ExitCode::SUCCESS
    } else {
        fail(&format!("p50 regression beyond {threshold_pct}% threshold"))
    }
}
