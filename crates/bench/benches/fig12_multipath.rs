//! Fig. 12: system performance in different environments — clean space vs
//! multipath with and without the channel-selection suppression (§V-D).
//!
//! Paper: localization 7.61 / 9.21 / 14.82 cm, orientation 8.59 / 10.98 /
//! 19.33°, classification 0.88 / 0.82 / 0.65 for Clean / Multipath+ /
//! Multipath. Suppression recovers most of the multipath damage because
//! only a minority of channels is corrupted; the residual gap to clean
//! space is the broadband (smooth) multipath no outlier test can see.

use rfp_bench::{loc, matid, report};
use rfp_core::material::ClassifierKind;
use rfp_core::model::ExtractConfig;
use rfp_core::{RfPrism, RfPrismConfig};
use rfp_geom::angle;
use rfp_sim::{MultipathEnvironment, Scene};

fn run_localization(scene: &Scene, suppress: bool) -> (f64, f64) {
    let mut config = RfPrismConfig::paper();
    config.extract = ExtractConfig { suppress_multipath: suppress, ..ExtractConfig::paper() };
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
        .with_config(config);
    let specs = loc::grid_orientation_specs(scene, 2);
    let mut pos_err = Vec::new();
    let mut orient_err = Vec::new();
    for spec in specs {
        let tag = rfp_bench::setup::place_tag(spec.tag_seed, spec.material, spec.position, spec.alpha);
        let survey = scene.survey(&tag, spec.survey_seed);
        if let Ok(result) = prism.sense(&survey.per_antenna) {
            pos_err.push(result.estimate.position.distance(spec.position) * 100.0);
            orient_err.push(
                angle::dipole_distance(result.estimate.orientation, spec.alpha).to_degrees(),
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&pos_err), mean(&orient_err))
}

fn run_classification(scene: &Scene) -> f64 {
    let corpus = matid::build_corpus(scene, 60, 30);
    matid::evaluate_all(&corpus, &ClassifierKind::paper_default()).accuracy()
}

fn main() {
    report::header("Fig. 12", "clean space vs multipath ± suppression");
    let clean = Scene::standard_2d();
    let cluttered =
        Scene::standard_2d().with_environment(MultipathEnvironment::cluttered(3, 2024));

    let (clean_loc, clean_orient) = run_localization(&clean, true);
    let (mp_loc, mp_orient) = run_localization(&cluttered, true);
    let (raw_loc, raw_orient) = run_localization(&cluttered, false);

    report::section("localization error");
    report::row("clean space", "7.61 cm", &report::cm(clean_loc));
    report::row("multipath + suppression", "9.21 cm", &report::cm(mp_loc));
    report::row("multipath, no suppression", "14.82 cm", &report::cm(raw_loc));

    report::section("orientation error");
    report::row("clean space", "8.59°", &report::deg(clean_orient));
    report::row("multipath + suppression", "10.98°", &report::deg(mp_orient));
    report::row("multipath, no suppression", "19.33°", &report::deg(raw_orient));

    report::section("material classification accuracy");
    let clean_acc = run_classification(&clean);
    let mp_acc = run_classification(&cluttered);
    report::row("clean space", "88 %", &report::pct(clean_acc));
    report::row("multipath + suppression", "82 %", &report::pct(mp_acc));

    report::section("suppression gain");
    report::row(
        "localization gain",
        "37.8 %",
        &report::pct(1.0 - mp_loc / raw_loc),
    );
    report::row(
        "orientation gain",
        "43.2 %",
        &report::pct(1.0 - mp_orient / raw_orient),
    );

    // Shape assertions: multipath hurts, suppression recovers most of it.
    assert!(mp_loc < raw_loc, "suppression must help localization");
    assert!(clean_loc < mp_loc, "clean space must be best");
    assert!(
        raw_loc > 1.4 * clean_loc,
        "raw multipath should roughly double the error (got {raw_loc} vs {clean_loc})"
    );
    assert!(clean_acc >= mp_acc - 0.05, "clean classification should not be worse");
}
