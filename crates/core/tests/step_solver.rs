//! Pinning suite of the cached λ-retry step solver (DESIGN.md §6).
//!
//! [`StepSolver::Cached`] replaces the per-attempt Cholesky factorization
//! of the damped normal equations with a once-per-iteration Householder
//! tridiagonalization and O(P²) λ-resolves. Same math, different
//! factorization — so it is pinned against the bit-identity default at
//! two levels:
//!
//! * **per step** — on random well-conditioned SPD `JᵀJ` the cached step
//!   agrees with the Cholesky step to ≤1e-12 relative, across every `P`
//!   the solvers instantiate (3, 4, 5, 7) and the full λ ladder of the
//!   retry policy, with near-singular and indefinite systems exercising
//!   the failure/escalation path;
//! * **full solve** — `solve_2d`/`solve_3d` under `Cached` (and the
//!   lane-padded eval) land within ≤1e-9 of the default on every output
//!   field, with the identical twin-α mode selection.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_core::lm::{damped_step_cholesky, CachedStep};
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::solver::{solve_2d_seeded, SolveSeeds, SolverConfig, TagEstimate2D};
use rfp_core::solver3d::{solve_3d_seeded, Solve3DSeeds, Solver3DConfig, Solver3DWorkspace};
use rfp_core::solver::SolverWorkspace;
use rfp_core::{LaneMode, StepSolver};
use rfp_geom::{Vec2, Vec3};
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

// ---------------------------------------------------------------------------
// Per-step agreement
// ---------------------------------------------------------------------------

/// The λ ladder the retry policy actually walks: the 1e-3 start, the ×10
/// failure escalations, the ×4 rejections and the 1e-12 floor.
const LAMBDAS: &[f64] = &[1e-12, 1e-9, 1e-6, 1e-3, 4e-3, 1e-2, 0.16, 1.0, 10.0, 1e3];

/// Builds a well-conditioned SPD system: `JᵀJ = MᵀM + P·I` with `M`
/// uniform in [-1, 1], plus a uniform right-hand side.
fn random_spd<const P: usize>(rng: &mut StdRng) -> ([[f64; P]; P], [f64; P]) {
    let mut m = [[0.0; P]; P];
    for row in &mut m {
        for v in row.iter_mut() {
            *v = rng.gen_range(-1.0..1.0);
        }
    }
    let mut jtj = [[0.0; P]; P];
    for i in 0..P {
        for j in 0..P {
            jtj[i][j] = (0..P).map(|k| m[k][i] * m[k][j]).sum();
        }
        jtj[i][i] += P as f64;
    }
    let mut jtr = [0.0; P];
    for v in &mut jtr {
        *v = rng.gen_range(-1.0..1.0);
    }
    (jtj, jtr)
}

/// Asserts cached-vs-Cholesky step agreement at `lambda`, relative to the
/// step magnitude.
fn assert_step_agreement<const P: usize>(
    jtj: &[[f64; P]; P],
    jtr: &[f64; P],
    cached: &CachedStep<P>,
    lambda: f64,
    tol: f64,
    what: &str,
) {
    let mut scratch = [[0.0; P]; P];
    let mut reference = [0.0; P];
    let mut fast = [0.0; P];
    let ok_ref = damped_step_cholesky(jtj, jtr, lambda, &mut scratch, &mut reference);
    let ok_fast = cached.solve(lambda, &mut fast);
    assert_eq!(ok_ref, ok_fast, "{what}: backends disagree on solvability at λ={lambda:e}");
    if !ok_ref {
        return;
    }
    let scale = reference.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
    for a in 0..P {
        assert!(
            (reference[a] - fast[a]).abs() <= tol * scale,
            "{what}: δ[{a}] diverges at λ={lambda:e}: cholesky {} vs cached {} (scale {scale:e})",
            reference[a],
            fast[a],
        );
    }
}

fn sweep_spd<const P: usize>(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (jtj, jtr) = random_spd::<P>(&mut rng);
    let mut cached = CachedStep::<P>::default();
    cached.factor(&jtj, &jtr);
    for &lambda in LAMBDAS {
        assert_step_agreement(&jtj, &jtr, &cached, lambda, 1e-12, "SPD sweep");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random SPD systems at every solver dimension: the cached λ-resolve
    /// is the Cholesky step to ≤1e-12 across the whole λ ladder.
    #[test]
    fn cached_step_matches_cholesky_on_spd_systems(seed in 0u64..1_000_000) {
        sweep_spd::<3>(seed);
        sweep_spd::<4>(seed.wrapping_add(1));
        sweep_spd::<5>(seed.wrapping_add(2));
        sweep_spd::<7>(seed.wrapping_add(3));
    }

    /// Near-singular curvature (rank-deficient `JᵀJ` plus a tiny ridge):
    /// once the damping dominates the ridge both backends solve, and the
    /// cached step stays a faithful solution of the damped system —
    /// checked by backward error, which is the property the retry loop
    /// relies on when conditioning is poor.
    #[test]
    fn cached_step_survives_near_singular_systems(seed in 0u64..1_000_000) {
        const P: usize = 5;
        let mut rng = StdRng::seed_from_u64(seed);
        // Rank P−1: one row of M is a duplicate, then a 1e-10 ridge.
        let mut m = [[0.0; P]; P];
        for row in &mut m {
            for v in row.iter_mut() {
                *v = rng.gen_range(-1.0..1.0);
            }
        }
        m[P - 1] = m[0];
        let mut jtj = [[0.0; P]; P];
        for i in 0..P {
            for j in 0..P {
                jtj[i][j] = (0..P).map(|k| m[k][i] * m[k][j]).sum();
            }
            jtj[i][i] += 1e-10;
        }
        let mut jtr = [0.0; P];
        for v in &mut jtr {
            *v = rng.gen_range(-1.0..1.0);
        }
        let mut cached = CachedStep::<P>::default();
        cached.factor(&jtj, &jtr);
        for &lambda in &[1e-3, 1e-2, 1.0, 1e3] {
            let mut delta = [0.0; P];
            prop_assert!(cached.solve(lambda, &mut delta), "λ={lambda:e} must solve");
            // Backward error of the damped system (JᵀJ + λD)δ = −Jᵀr.
            let mut worst = 0.0f64;
            for i in 0..P {
                let mut ax: f64 = (0..P).map(|j| jtj[i][j] * delta[j]).sum();
                ax += lambda * jtj[i][i].max(1e-12) * delta[i];
                worst = worst.max((ax + jtr[i]).abs());
            }
            let rhs = jtr.iter().fold(1.0f64, |acc, v| acc.max(v.abs()));
            prop_assert!(
                worst <= 1e-9 * rhs,
                "backward error {worst:e} at λ={lambda:e} exceeds 1e-9·{rhs:e}"
            );
        }
    }
}

/// The indefinite-retry case: a symmetric matrix with a clearly negative
/// eigenvalue (unit diagonal, −0.9 off-diagonal) walks the retry ladder —
/// both backends must refuse the same clearly-indefinite λ rungs, accept
/// the same clearly-SPD rung, and agree on the step there.
#[test]
fn backends_agree_through_an_indefinite_retry_escalation() {
    const P: usize = 7;
    let mut jtj = [[-0.9; P]; P];
    for (d, row) in jtj.iter_mut().enumerate() {
        row[d] = 1.0;
    }
    // Smallest eigenvalue 1 − 0.9(P−1) = −4.4: indefinite until the
    // damping λ·diag = λ lifts it past zero, i.e. solvable iff λ > 4.4.
    let jtr = [0.3; P];
    let mut cached = CachedStep::<P>::default();
    cached.factor(&jtj, &jtr);
    let mut scratch = [[0.0; P]; P];
    let mut delta = [0.0; P];
    let mut lambda = 1e-3;
    let mut escalations = 0;
    // The retry policy verbatim: ×10 per factorization failure.
    while !damped_step_cholesky(&jtj, &jtr, lambda, &mut scratch, &mut delta) {
        let mut fast = [0.0; P];
        assert!(
            !cached.solve(lambda, &mut fast),
            "cached backend accepted an indefinite system at λ={lambda:e}"
        );
        lambda *= 10.0;
        escalations += 1;
        assert!(escalations < 8, "escalation runaway");
    }
    assert_eq!(escalations, 4, "expected failure at 1e-3..1, success at 10");
    assert_step_agreement(&jtj, &jtr, &cached, lambda, 1e-12, "post-escalation step");
}

/// A stale factor fails closed: `solve` before any `factor` call must
/// refuse rather than serve garbage.
#[test]
fn unfactored_cache_fails_closed() {
    let cached = CachedStep::<5>::default();
    let mut delta = [0.0; 5];
    assert!(!cached.solve(1e-3, &mut delta));
}

// ---------------------------------------------------------------------------
// Full-solve pinning
// ---------------------------------------------------------------------------

fn observations_2d(
    x: f64,
    y: f64,
    alpha: f64,
    material_idx: usize,
    seed: u64,
) -> Option<(Scene, Vec<AntennaObservation>)> {
    let scene = Scene::standard_2d();
    let material = Material::CLASSES[material_idx % Material::CLASSES.len()];
    let tag = SimTag::with_seeded_diversity(seed)
        .attached_to(material)
        .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
    let survey = scene.survey(&tag, seed.wrapping_mul(0x9e37_79b9));
    let obs: Option<Vec<_>> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
        .collect();
    obs.map(|o| (scene, o))
}

/// Solves the same 2-D scene under `config` and the bit-identity default,
/// then pins every estimate field within `tol` and demands the identical
/// twin-α branch (a flipped mode selection shows up as an O(1 rad)
/// orientation jump, far above any step-solver perturbation).
fn pin_full_solve_2d(obs: &[AntennaObservation], scene: &Scene, config: &SolverConfig) {
    let reference_config = SolverConfig::default();
    let seeds = SolveSeeds::for_scene(scene.region(), &reference_config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    let reference =
        solve_2d_seeded(obs, &seeds, &reference_config, &mut ws).expect("reference solvable");
    let tuned = solve_2d_seeded(obs, &seeds, config, &mut ws).expect("tuned solvable");
    let fields = |e: &TagEstimate2D| {
        [e.position.x, e.position.y, e.orientation, e.kt * 1e10, e.bt]
    };
    for (i, (a, b)) in fields(&tuned).iter().zip(fields(&reference).iter()).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "field {i}: tuned {a} vs reference {b} ({:?})",
            (config.step_solver, config.lane_mode),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized scenes: `Cached`, `Padded4`, and the two combined stay
    /// within ≤1e-9 of the default full solve with the same twin-α pick.
    #[test]
    fn tuned_full_solves_track_the_default_2d(
        x in -1.0f64..1.0,
        y in 0.9f64..2.2,
        alpha in 0.0f64..3.1,
        material_idx in 0usize..8,
        seed in 0u64..1000,
    ) {
        let Some((scene, obs)) = observations_2d(x, y, alpha, material_idx, seed)
        else { return Ok(()) };
        let cached =
            SolverConfig { step_solver: StepSolver::Cached, ..SolverConfig::default() };
        pin_full_solve_2d(&obs, &scene, &cached);
        let padded =
            SolverConfig { lane_mode: LaneMode::Padded4, ..SolverConfig::default() };
        pin_full_solve_2d(&obs, &scene, &padded);
        let both = SolverConfig {
            step_solver: StepSolver::Cached,
            lane_mode: LaneMode::Padded4,
            ..SolverConfig::default()
        };
        pin_full_solve_2d(&obs, &scene, &both);
    }
}

/// 3-D: `Cached` (and `Padded4`, which falls back to the wide kernels)
/// tracks the default solve within ≤1e-9 on every output field.
#[test]
fn tuned_full_solve_tracks_the_default_3d() {
    let scene = Scene::six_antenna_3d();
    let tag = SimTag::nominal(1).with_motion(Motion::Static {
        position: Vec3::new(0.7, 1.1, 0.5),
        dipole: Vec3::new(0.4, 0.6, 0.9).normalized(),
    });
    let survey = scene.survey(&tag, 21);
    let obs: Vec<_> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).expect("extracts"))
        .collect();
    let reference_config = Solver3DConfig::default();
    let seeds = Solve3DSeeds::for_scene(
        scene.region(),
        (0.0, 1.0),
        &reference_config,
        &scene.antenna_poses(),
    );
    let mut ws = Solver3DWorkspace::default();
    let reference =
        solve_3d_seeded(&obs, &seeds, &reference_config, &mut ws).expect("reference solvable");
    for config in [
        Solver3DConfig { step_solver: StepSolver::Cached, ..Solver3DConfig::default() },
        Solver3DConfig {
            step_solver: StepSolver::Cached,
            lane_mode: LaneMode::Padded4,
            ..Solver3DConfig::default()
        },
    ] {
        let tuned = solve_3d_seeded(&obs, &seeds, &config, &mut ws).expect("tuned solvable");
        let fields = |e: &rfp_core::TagEstimate3D| {
            [
                e.position.x,
                e.position.y,
                e.position.z,
                e.dipole.x,
                e.dipole.y,
                e.dipole.z,
                e.kt * 1e10,
                e.bt,
            ]
        };
        for (i, (a, b)) in fields(&tuned).iter().zip(fields(&reference).iter()).enumerate() {
            assert!(
                (a - b).abs() <= 1e-9 * b.abs().max(1.0),
                "3-D field {i}: tuned {a} vs reference {b}"
            );
        }
    }
}
