//! Tag electrical model: the `θ_tag` component and its material dependence.
//!
//! A passive UHF tag is a resonant structure (antenna + matching network +
//! chip). We model it as a single resonator with resonant frequency `f₀`
//! and quality factor `Q`. The phase of its backscatter reflection
//! coefficient near resonance follows the classic resonator curve
//!
//! ```text
//! φ(f) = −2 · atan(x) + b₀,   x = 2 Q_eff (f − f₀ₘ) / f₀ₘ
//! ```
//!
//! Attaching the tag to a material loads the antenna's fringing field:
//!
//! * the resonance shifts down, `f₀ₘ = f₀ / sqrt(ε_eff)` with
//!   `ε_eff = 1 + κ (ε_r − 1)` (see [`crate::material`]);
//! * the Q drops, `Q_eff = Q / (1 + loss)`;
//! * the backscatter amplitude shrinks (detuning + dissipation).
//!
//! On top of the resonator sits a **group-delay** term: the reader's SAW
//! filters and the tag's matching network add tens of nanoseconds of
//! electrical delay, i.e. a phase slope `−2π τ f`. This is what makes the
//! paper's Figs. 4–6 sweep ~10 rad across the 24.5 MHz band where bare
//! propagation would account for a fraction of that. Material loading
//! lengthens the tag's effective electrical path, so the delay is
//! material-dependent: `τ = τ₀ + τ_scale · (sqrt(ε_eff) − 1)` — the
//! dominant contribution to the material-specific slope `k_t` of Eq. (5).
//!
//! Over the 24.5 MHz FCC band the arctangent is gently curved, so the phase
//! is *close to linear in f* — exactly the paper's empirical Eq. (5),
//! `θ_device(f) = k_t f + b_t`, with material-specific `k_t` and `b_t`. The
//! [`TagElectrical::linearized`] helper extracts those ground-truth
//! parameters by least squares over a channel plan; the residual curvature
//! is a small, honest model error that the disentangler has to live with —
//! and, after calibration, a secondary material signature.

use crate::freq::FrequencyPlan;
use crate::material::Material;

/// Electrical state of one tag, including manufacturing diversity and the
/// attached material.
///
/// # Example
///
/// ```
/// use rfp_phys::{FrequencyPlan, Material, TagElectrical};
/// let bare = TagElectrical::nominal();
/// let on_glass = bare.with_material(Material::Glass);
/// let plan = FrequencyPlan::fcc_us();
/// let lin_bare = bare.linearized(&plan);
/// let lin_glass = on_glass.linearized(&plan);
/// // Attaching glass detunes the tag and changes the phase-line slope:
/// assert!((lin_bare.kt - lin_glass.kt).abs() > 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagElectrical {
    /// Free-space resonant frequency of this tag instance, Hz.
    resonance_hz: f64,
    /// Unloaded quality factor.
    q: f64,
    /// Constant phase offset of the chip's modulator, radians.
    base_phase: f64,
    /// Base (unloaded) group delay of this reader-tag chain, seconds.
    group_delay_s: f64,
    /// Attached material.
    material: Material,
}

/// Ground-truth linearization of a tag's device phase over a band:
/// `θ_device(f) ≈ kt·f + bt` (paper Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearizedDevice {
    /// Slope, rad/Hz.
    pub kt: f64,
    /// Intercept at f = 0, radians (meaningful modulo 2π).
    pub bt: f64,
    /// RMS residual of the linear fit, radians — the curvature the linear
    /// model cannot capture.
    pub rms_residual: f64,
}

/// Nominal free-space resonance of an EPC Gen2 tag tuned for the US band, Hz.
pub const NOMINAL_RESONANCE_HZ: f64 = 915.0e6;

/// Nominal unloaded quality factor.
pub const NOMINAL_Q: f64 = 8.0;

/// Nominal base group delay of the reader + tag chain, seconds. Produces
/// the ~9 rad device-phase sweep across the FCC band visible in the
/// paper's Figs. 4–6.
pub const NOMINAL_GROUP_DELAY_S: f64 = 60e-9;

/// Material sensitivity of the group delay, seconds per unit of
/// `sqrt(ε_eff) − 1`: loading lengthens the tag's effective electrical
/// path.
pub const MATERIAL_DELAY_SCALE_S: f64 = 100e-9;

impl TagElectrical {
    /// A nominal tag: resonance 915 MHz, Q = 8, zero modulator offset, no
    /// attached material.
    pub fn nominal() -> Self {
        TagElectrical {
            resonance_hz: NOMINAL_RESONANCE_HZ,
            q: NOMINAL_Q,
            base_phase: 0.0,
            group_delay_s: NOMINAL_GROUP_DELAY_S,
            material: Material::FreeSpace,
        }
    }

    /// A tag with explicit manufacturing diversity: resonance shifted by
    /// `delta_f0_hz`, Q scaled by `q_scale`, and modulator phase offset
    /// `base_phase` radians.
    ///
    /// # Panics
    ///
    /// Panics if `q_scale` is not positive or the shifted resonance is not
    /// positive.
    pub fn with_manufacturing(delta_f0_hz: f64, q_scale: f64, base_phase: f64) -> Self {
        assert!(q_scale > 0.0, "q_scale must be positive");
        let resonance_hz = NOMINAL_RESONANCE_HZ + delta_f0_hz;
        assert!(resonance_hz > 0.0, "resonance must stay positive");
        TagElectrical {
            resonance_hz,
            q: NOMINAL_Q * q_scale,
            base_phase,
            group_delay_s: NOMINAL_GROUP_DELAY_S,
            material: Material::FreeSpace,
        }
    }

    /// Returns a copy with a different base group delay (manufacturing
    /// diversity of the matching network / reader chain).
    ///
    /// # Panics
    ///
    /// Panics if `group_delay_s` is negative.
    pub fn with_group_delay(&self, group_delay_s: f64) -> Self {
        assert!(group_delay_s >= 0.0, "group delay cannot be negative");
        TagElectrical { group_delay_s, ..*self }
    }

    /// Returns a copy of this tag attached to `material`.
    ///
    /// Manufacturing diversity is preserved; only the loading changes.
    pub fn with_material(&self, material: Material) -> Self {
        TagElectrical { material, ..*self }
    }

    /// The attached material.
    #[inline]
    pub fn material(&self) -> Material {
        self.material
    }

    /// Free-space resonant frequency of this tag instance, Hz.
    #[inline]
    pub fn resonance_hz(&self) -> f64 {
        self.resonance_hz
    }

    /// Loaded resonant frequency `f₀ₘ = f₀ / sqrt(ε_eff)`, Hz.
    pub fn loaded_resonance_hz(&self) -> f64 {
        self.resonance_hz / self.material.effective_permittivity().sqrt()
    }

    /// Loaded quality factor `Q_eff = Q / (1 + loss)`.
    pub fn loaded_q(&self) -> f64 {
        self.q / (1.0 + self.material.loss())
    }

    /// Normalized detuning `x = 2 Q_eff (f − f₀ₘ) / f₀ₘ` at frequency `f` Hz.
    pub fn detuning(&self, f: f64) -> f64 {
        let f0 = self.loaded_resonance_hz();
        2.0 * self.loaded_q() * (f - f0) / f0
    }

    /// Total (loaded) group delay, seconds.
    pub fn loaded_group_delay_s(&self) -> f64 {
        self.group_delay_s
            + MATERIAL_DELAY_SCALE_S
                * (self.material.effective_permittivity().sqrt() - 1.0)
    }

    /// Device phase `θ_tag(f)` in radians (unwrapped; not reduced mod 2π):
    /// group-delay slope + resonator phase + modulator offset.
    ///
    /// This is the tag-side part of `θ_device`; per-antenna reader offsets
    /// `θ_reader` are added by the simulator and removed by the antenna
    /// calibration step (paper §IV-C).
    pub fn device_phase(&self, f: f64) -> f64 {
        -std::f64::consts::TAU * self.loaded_group_delay_s() * f
            - 2.0 * self.detuning(f).atan()
            + self.base_phase
    }

    /// Linear-scale backscatter amplitude factor in `(0, 1]`: the resonator's
    /// magnitude response at `f`, including dissipation loss.
    ///
    /// 1.0 for a nominal tag read exactly at resonance; smaller when detuned
    /// (e.g. by an attached high-permittivity material) or lossy.
    pub fn amplitude_factor(&self, f: f64) -> f64 {
        let x = self.detuning(f);
        let resonance_gain = 1.0 / (1.0 + x * x).sqrt();
        let dissipation = 1.0 / (1.0 + 0.5 * self.material.loss());
        resonance_gain * dissipation
    }

    /// Least-squares linearization of [`TagElectrical::device_phase`] over
    /// the channels of `plan` — the ground-truth `(k_t, b_t)` of Eq. (5).
    ///
    /// # Panics
    ///
    /// Panics if the plan has fewer than 2 channels.
    pub fn linearized(&self, plan: &FrequencyPlan) -> LinearizedDevice {
        let n = plan.channel_count();
        assert!(n >= 2, "need at least two channels to fit a line");
        let fs = plan.frequencies_hz();
        let ph: Vec<f64> = fs.iter().map(|&f| self.device_phase(f)).collect();
        let fbar = fs.iter().sum::<f64>() / n as f64;
        let pbar = ph.iter().sum::<f64>() / n as f64;
        let (mut sxy, mut sxx) = (0.0, 0.0);
        for (f, p) in fs.iter().zip(&ph) {
            sxy += (f - fbar) * (p - pbar);
            sxx += (f - fbar) * (f - fbar);
        }
        let kt = sxy / sxx;
        let bt = pbar - kt * fbar;
        let rms = (fs
            .iter()
            .zip(&ph)
            .map(|(f, p)| {
                let r = p - (kt * f + bt);
                r * r
            })
            .sum::<f64>()
            / n as f64)
            .sqrt();
        LinearizedDevice { kt, bt, rms_residual: rms }
    }
}

impl Default for TagElectrical {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FrequencyPlan {
        FrequencyPlan::fcc_us()
    }

    #[test]
    fn nominal_tag_at_resonance() {
        let t = TagElectrical::nominal();
        assert_eq!(t.detuning(NOMINAL_RESONANCE_HZ), 0.0);
        // At resonance only the group-delay slope remains.
        let expect = -std::f64::consts::TAU * NOMINAL_GROUP_DELAY_S * NOMINAL_RESONANCE_HZ;
        assert!((t.device_phase(NOMINAL_RESONANCE_HZ) - expect).abs() < 1e-9);
        assert!((t.amplitude_factor(NOMINAL_RESONANCE_HZ) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn device_sweep_matches_paper_figures() {
        // Figs. 4–6 of the paper show total phase sweeps of ~8–16 rad over
        // the 24.5 MHz band; most of it is the device response.
        let p = plan();
        let t = TagElectrical::nominal();
        let sweep = (t.device_phase(p.end_hz()) - t.device_phase(p.start_hz())).abs();
        assert!((5.0..20.0).contains(&sweep), "device sweep {sweep} rad");
    }

    #[test]
    fn material_detunes_downward() {
        let bare = TagElectrical::nominal();
        for m in Material::CLASSES {
            let loaded = bare.with_material(m);
            assert!(
                loaded.loaded_resonance_hz() < bare.loaded_resonance_hz(),
                "{m} must lower the resonance"
            );
            assert!(loaded.loaded_q() <= bare.loaded_q());
        }
    }

    #[test]
    fn device_phase_monotone_decreasing_in_f() {
        // −2·atan(x) is strictly decreasing in f.
        let t = TagElectrical::nominal().with_material(Material::Wood);
        let fs = plan().frequencies_hz();
        for w in fs.windows(2) {
            assert!(t.device_phase(w[1]) < t.device_phase(w[0]));
        }
    }

    #[test]
    fn linearization_is_accurate_over_band() {
        // The curvature left over after the linear fit must be small relative
        // to typical phase noise (~0.1 rad) — that is what justifies Eq. (5).
        for m in Material::CLASSES {
            let t = TagElectrical::nominal().with_material(m);
            let lin = t.linearized(&plan());
            assert!(
                lin.rms_residual < 0.06,
                "{m}: rms residual {}",
                lin.rms_residual
            );
        }
    }

    #[test]
    fn material_slopes_are_distinct() {
        // Fig. 6 of the paper: different materials → distinct slopes; the
        // water/milk pair is the closest (the paper's Fig. 11 confusion).
        let p = plan();
        let kt = |m: Material| TagElectrical::nominal().with_material(m).linearized(&p).kt;
        let classes = Material::CLASSES;
        let mut min_gap = f64::INFINITY;
        let mut min_pair = (classes[0], classes[0]);
        for (i, &a) in classes.iter().enumerate() {
            for &b in &classes[i + 1..] {
                let d = (kt(a) - kt(b)).abs();
                if d < min_gap {
                    min_gap = d;
                    min_pair = (a, b);
                }
                if (a, b) != (Material::Water, Material::SkimMilk) {
                    assert!(d > 2.0e-9, "{a} vs {b}: slope gap {d:.3e} too small");
                }
            }
        }
        // Water/milk must be among the tightest pairs (their curvature is
        // also near-identical, which is what drives the paper's Fig. 11
        // confusion); wood/plastic is the other close pair.
        let wm_gap = (kt(Material::Water) - kt(Material::SkimMilk)).abs();
        assert!(wm_gap < 1.5e-8, "water/milk gap {wm_gap:.3e} too wide");
        let _ = (min_gap, min_pair);
    }

    #[test]
    fn slope_magnitude_in_physical_range() {
        // Fig. 6 shows device slopes comparable to several metres of
        // propagation slope (~1e-7 rad/Hz per 2.4 m).
        let p = plan();
        for m in Material::CLASSES {
            let kt = TagElectrical::nominal().with_material(m).linearized(&p).kt;
            assert!(kt < 0.0, "{m}: device phase slope is negative");
            assert!(kt.abs() < 1e-6, "{m}: |kt| = {} out of range", kt.abs());
        }
    }

    #[test]
    fn group_delay_loading_ordering() {
        let t = TagElectrical::nominal();
        let d = |m: Material| t.with_material(m).loaded_group_delay_s();
        assert!(d(Material::Metal) > d(Material::Water));
        assert!(d(Material::Water) > d(Material::SkimMilk));
        assert!(d(Material::SkimMilk) > d(Material::Alcohol));
        assert!(d(Material::Plastic) > d(Material::FreeSpace));
        assert_eq!(d(Material::FreeSpace), NOMINAL_GROUP_DELAY_S);
    }

    #[test]
    #[should_panic]
    fn negative_group_delay_panics() {
        let _ = TagElectrical::nominal().with_group_delay(-1e-9);
    }

    #[test]
    fn manufacturing_diversity_shifts_phase_line() {
        let p = plan();
        let a = TagElectrical::with_manufacturing(0.0, 1.0, 0.0).linearized(&p);
        let b = TagElectrical::with_manufacturing(3e6, 0.9, 0.4).linearized(&p);
        assert!((a.kt - b.kt).abs() > 1e-10);
        assert!((a.bt - b.bt).abs() > 1e-3);
    }

    #[test]
    fn base_phase_moves_intercept_not_slope() {
        let p = plan();
        let a = TagElectrical::with_manufacturing(0.0, 1.0, 0.0).linearized(&p);
        let b = TagElectrical::with_manufacturing(0.0, 1.0, 1.0).linearized(&p);
        assert!((a.kt - b.kt).abs() < 1e-15);
        assert!((b.bt - a.bt - 1.0).abs() < 1e-9);
    }

    #[test]
    fn amplitude_factor_bounded() {
        for m in Material::CLASSES {
            let t = TagElectrical::nominal().with_material(m);
            for &f in &plan().frequencies_hz() {
                let a = t.amplitude_factor(f);
                assert!(a > 0.0 && a <= 1.0, "{m}: amplitude {a}");
            }
        }
    }

    #[test]
    fn metal_reflects_least_through_tag() {
        // Metal's strong detuning + loss makes the *tag-modulated* signal
        // weakest, consistent with the paper's localization discussion.
        let f = 915e6;
        let metal = TagElectrical::nominal().with_material(Material::Metal);
        let wood = TagElectrical::nominal().with_material(Material::Wood);
        assert!(metal.amplitude_factor(f) < wood.amplitude_factor(f));
    }

    #[test]
    #[should_panic]
    fn non_positive_q_scale_panics() {
        let _ = TagElectrical::with_manufacturing(0.0, 0.0, 0.0);
    }
}
