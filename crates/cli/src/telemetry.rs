//! Continuous-telemetry replay: drive a survey log through the streaming
//! engine and emit periodic [`TelemetryFrame`] JSONL records.
//!
//! The driver replays each tag's reads — all antennas merged back into
//! arrival order — through its own [`rfp_core::StreamingSession`], calling
//! `advance` once per `every` reads. After every advance it freezes a
//! [`MetricsSnapshot`] delta ("what did this tick cost"), and the
//! coordinator merges tick *k*'s deltas across tags in tag-id order.
//! Because ticks are counted in reads processed (never wall clock) and the
//! merge order is fixed, replaying the same log produces **byte-identical
//! frames at any `--jobs` value** — wall-clock histograms are excluded
//! from frames by [`TelemetryFrame::from_delta`] for exactly this reason.
//!
//! Health folds on the coordinator: the merged per-tick delta runs through
//! [`rfp_core::obs::streaming_health`], and the resulting verdict rides in
//! the frame. The stale-tags gauge is likewise a coordinator derivation: a
//! tag is *stale* at tick `k` when its delta shows an attempted window
//! (`pipeline.windows_total > 0`) but no estimate (`pipeline.windows_ok
//! == 0`).

use crate::commands::CommandError;
use crate::log::SurveyLog;
use rfp_core::obs as pobs;
use rfp_core::RfPrism;
use rfp_dsp::preprocess::RawRead;
use rfp_geom::Vec2;
use rfp_obs::{recorder, MetricsSnapshot, Recorder, RunReport, TelemetryFrame};
use std::fmt::Write as _;

/// Knobs for a telemetry replay.
#[derive(Debug, Clone)]
pub struct TelemetryOptions {
    /// Worker threads replaying tag sessions (`0` = one per CPU).
    pub jobs: usize,
    /// Reads per tag between advances — the deterministic tick size.
    pub every: usize,
    /// Sliding-window span in seconds (`<= 0` retains every read).
    pub window_s: f64,
    /// Fold the streaming health rules over each merged delta.
    pub health: bool,
    /// Run the tuned solver backends (cached step solver + padded row
    /// lanes) — estimates within 1e-9 of the defaults, not bit-identical.
    pub tuned: bool,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions { jobs: 1, every: 64, window_s: 0.0, health: false, tuned: false }
    }
}

/// Everything one replay produces, split by sink.
pub struct TelemetryRun {
    /// One JSONL line per tick, already serialized (byte-stable).
    pub frames: Vec<String>,
    /// Human-readable per-tag table plus a footer (byte-stable).
    pub summary: String,
    /// The merged end-of-run report (has wall-clock timings — *not*
    /// byte-stable; feed it to `--prom`, not to diffs).
    pub report: RunReport,
}

/// One tag's finished replay, returned by a worker.
struct TagReplay {
    /// Per-tick metric deltas, in tick order.
    deltas: Vec<MetricsSnapshot>,
    /// The tag session's whole recorder (metrics + spans + journal).
    rec: Recorder,
    /// Total reads replayed.
    reads: usize,
    /// Advances that produced an estimate.
    ok: u64,
    /// Last successful estimate's position.
    last_pos: Option<Vec2>,
}

/// Replays `log_text` and renders every sink.
///
/// # Errors
///
/// [`CommandError::Log`] on a malformed log, [`CommandError::Usage`] when
/// `every` is zero.
pub fn replay(log_text: &str, opts: &TelemetryOptions) -> Result<TelemetryRun, CommandError> {
    if opts.every == 0 {
        return Err(CommandError::Usage("--every must be at least 1".into()));
    }
    let log = SurveyLog::from_text(log_text)?;
    let mut prism = RfPrism::new(log.poses.clone(), log.plan);
    if opts.tuned {
        let mut config = rfp_core::RfPrismConfig::paper();
        config.solver.step_solver = rfp_core::StepSolver::Cached;
        config.solver.lane_mode = rfp_core::LaneMode::Padded4;
        prism = prism.with_config(config);
    }
    let window_s = if opts.window_s > 0.0 { opts.window_s } else { f64::INFINITY };

    // Merge each tag's per-antenna reads back into arrival order. The sort
    // is stable, so reads sharing a timestamp keep antenna-then-log order
    // and the sequence is a pure function of the log text.
    let sequences: Vec<Vec<(usize, RawRead)>> = log
        .tags
        .values()
        .map(|record| {
            let mut seq: Vec<(usize, RawRead)> = record
                .per_antenna
                .iter()
                .enumerate()
                .flat_map(|(antenna, reads)| reads.iter().map(move |r| (antenna, *r)))
                .collect();
            seq.sort_by(|a, b| a.1.timestamp_s.total_cmp(&b.1.timestamp_s));
            seq
        })
        .collect();

    let jobs = if opts.jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        opts.jobs
    };
    let jobs = jobs.min(sequences.len()).max(1);

    // Fan tags across workers by index stride; scatter results back by
    // index so nothing downstream depends on completion order.
    let mut replays: Vec<Option<TagReplay>> = Vec::new();
    replays.resize_with(sequences.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|worker| {
                let prism = &prism;
                let sequences = &sequences;
                let every = opts.every;
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut idx = worker;
                    while idx < sequences.len() {
                        out.push((idx, replay_tag(prism, &sequences[idx], every, window_s)));
                        idx += jobs;
                    }
                    out
                })
            })
            .collect();
        for handle in handles {
            for (idx, tag_replay) in handle.join().expect("telemetry worker panicked") {
                replays[idx] = Some(tag_replay);
            }
        }
    });
    let replays: Vec<TagReplay> =
        replays.into_iter().map(|r| r.expect("every tag replayed")).collect();

    // Coordinator: merge tick-k deltas across tags (tag-id order), derive
    // the stale-tags gauge, fold health, emit one frame per tick.
    let max_ticks = replays.iter().map(|r| r.deltas.len()).max().unwrap_or(0);
    let mut evaluator = opts.health.then(pobs::streaming_health);
    let mut worst = rfp_obs::Health::Healthy;
    let mut frames = Vec::with_capacity(max_ticks);
    for k in 0..max_ticks {
        let mut merged = MetricsSnapshot::zero(pobs::METRICS);
        let mut stale = 0u64;
        let mut reads_done = 0u64;
        for r in &replays {
            reads_done += r.reads.min((k + 1) * opts.every) as u64;
            if let Some(delta) = r.deltas.get(k) {
                merged.merge(delta);
                if delta.counter(pobs::id::PIPELINE_WINDOWS_TOTAL) > 0
                    && delta.counter(pobs::id::PIPELINE_WINDOWS_OK) == 0
                {
                    stale += 1;
                }
            }
        }
        merged.set_gauge(pobs::id::STREAMING_STALE_TAGS, stale as f64);
        let health = evaluator.as_mut().map(|ev| ev.observe(&merged));
        if let Some(report) = &health {
            worst = worst.max(report.verdict);
        }
        frames.push(TelemetryFrame::from_delta(k as u64, reads_done, &merged, health).to_jsonl_line());
    }

    // End-of-run report: absorb every tag recorder in tag-id order — the
    // same merge discipline the batch front end uses.
    let mut coordinator = Recorder::new(pobs::METRICS);
    for r in &replays {
        coordinator.merge_at_current(&r.rec);
    }
    let report = RunReport::from_recorder("stream", &coordinator)
        .with_meta("jobs", &opts.jobs.to_string())
        .with_meta("every", &opts.every.to_string());

    let mut summary = String::new();
    let _ = writeln!(
        summary,
        "{:>6} {:>8} {:>7} {:>5} {:>18} {:>10}",
        "tag", "reads", "ticks", "ok", "position (m)", "truth err"
    );
    let mut total_reads = 0usize;
    for ((id, record), r) in log.tags.iter().zip(&replays) {
        total_reads += r.reads;
        let position = r
            .last_pos
            .map(|p| format!("({:+.3}, {:.3})", p.x, p.y))
            .unwrap_or_else(|| "-".into());
        let truth_err = match (r.last_pos, record.truth) {
            (Some(p), Some(t)) => format!("{:.1} cm", p.distance(t.position) * 100.0),
            _ => "-".into(),
        };
        let _ = writeln!(
            summary,
            "{id:>6} {:>8} {:>7} {:>5} {position:>18} {truth_err:>10}",
            r.reads,
            r.deltas.len(),
            r.ok,
        );
    }
    let _ = writeln!(
        summary,
        "-- telemetry: {} frames over {} reads ({} tags, every {}) --",
        frames.len(),
        total_reads,
        replays.len(),
        opts.every,
    );
    if opts.health {
        let _ = writeln!(summary, "  health: worst verdict {}", worst.as_str());
    }

    Ok(TelemetryRun { frames, summary, report })
}

/// Replays one tag's merged read sequence under its own recorder,
/// snapshotting a metrics delta after every advance.
fn replay_tag(
    prism: &RfPrism,
    reads: &[(usize, RawRead)],
    every: usize,
    window_s: f64,
) -> TagReplay {
    let mut deltas = Vec::new();
    let mut ok = 0u64;
    let mut last_pos = None;
    let ((), rec) = recorder::observe_with(Recorder::new(pobs::METRICS), || {
        let mut session = prism.sense_streaming(window_s);
        let mut last: Option<MetricsSnapshot> = None;
        for chunk in reads.chunks(every) {
            for (antenna, read) in chunk {
                session.push(*antenna, read);
            }
            // Advance "now" to just past the newest read so the window
            // holds everything pushed so far.
            let now_s = chunk.last().expect("chunks are non-empty").1.timestamp_s + 1e-9;
            // A failed advance stays visible through the counters and
            // health rules; the replay itself keeps going.
            if let Ok(result) = session.advance(now_s) {
                ok += 1;
                last_pos = Some(result.estimate.position);
                session.recycle(result);
            }
            recorder::with_current(|r| {
                let snap = r.metrics.snapshot();
                deltas.push(match &last {
                    Some(prev) => snap.delta_since(prev),
                    None => snap.clone(),
                });
                last = Some(snap);
            });
        }
    });
    TagReplay { deltas, rec, reads: reads.len(), ok, last_pos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::simulate;

    fn sample_log() -> String {
        let args: Vec<String> =
            ["--tags", "3", "--seed", "2"].iter().map(|s| s.to_string()).collect();
        simulate(&args).unwrap()
    }

    #[test]
    fn frames_are_byte_identical_at_any_jobs() {
        let log = sample_log();
        let run = |jobs: usize| {
            let opts = TelemetryOptions { jobs, health: true, ..TelemetryOptions::default() };
            replay(&log, &opts).unwrap()
        };
        let sequential = run(1);
        assert!(!sequential.frames.is_empty());
        for jobs in [2, 0] {
            let parallel = run(jobs);
            assert_eq!(sequential.frames, parallel.frames, "frames diverged at jobs={jobs}");
            assert_eq!(sequential.summary, parallel.summary, "summary diverged at jobs={jobs}");
        }
    }

    #[test]
    fn frames_parse_and_tile_the_run_totals() {
        let log = sample_log();
        let run = replay(&log, &TelemetryOptions::default()).unwrap();
        let mut advances = 0u64;
        let mut last_tick = 0u64;
        for (k, line) in run.frames.iter().enumerate() {
            let frame = TelemetryFrame::from_json(line).expect("valid frame");
            assert_eq!(frame.seq, k as u64);
            assert!(frame.tick >= last_tick, "tick must be monotone");
            last_tick = frame.tick;
            assert!(frame.health.is_none(), "health off by default");
            let counter = |name: &str| {
                frame.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0)
            };
            advances += counter("pipeline.windows_total");
        }
        // Frame counter deltas tile the end-of-run totals exactly.
        let total = run
            .report
            .counters
            .iter()
            .find(|(n, _)| n == "pipeline.windows_total")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(advances, total, "frame deltas must tile the run total");
        assert!(total > 0);
    }

    #[test]
    fn health_verdicts_ride_in_frames_when_enabled() {
        let log = sample_log();
        let opts = TelemetryOptions { health: true, ..TelemetryOptions::default() };
        let run = replay(&log, &opts).unwrap();
        let frame = TelemetryFrame::from_json(&run.frames[0]).unwrap();
        assert!(frame.health.is_some());
        assert!(run.summary.contains("health: worst verdict"));
    }

    #[test]
    fn rejects_zero_every() {
        let opts = TelemetryOptions { every: 0, ..TelemetryOptions::default() };
        assert!(matches!(replay("", &opts), Err(CommandError::Usage(_))));
    }
}
