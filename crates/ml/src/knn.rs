//! K-Nearest-Neighbour classification.
//!
//! One of the paper's three evaluated classifiers (Fig. 13). The paper finds
//! KNN performs worst (75.6 %) on the 52-dimensional feature vector —
//! distance concentration in high dimensions — and our reproduction should
//! exhibit the same ordering.

use crate::dataset::Dataset;
use crate::Classifier;

/// A fitted KNN classifier (stores the training set).
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, knn::KnnClassifier, Classifier};
/// let mut ds = Dataset::new(2);
/// ds.push(vec![0.0], 0);
/// ds.push(vec![0.1], 0);
/// ds.push(vec![1.0], 1);
/// ds.push(vec![1.1], 1);
/// let knn = KnnClassifier::fit(&ds, 3);
/// assert_eq!(knn.predict(&[0.05]), 0);
/// assert_eq!(knn.predict(&[0.95]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    train: Dataset,
}

impl KnnClassifier {
    /// Stores the training data; `k` neighbours vote at prediction time.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `k == 0`.
    pub fn fit(train: &Dataset, k: usize) -> Self {
        assert!(!train.is_empty(), "empty training set");
        assert!(k > 0, "k must be positive");
        KnnClassifier { k: k.min(train.len()), train: train.clone() }
    }

    /// The effective number of neighbours (clamped to the training size).
    pub fn k(&self) -> usize {
        self.k
    }

    fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
    }
}

impl Classifier for KnnClassifier {
    fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(
            Some(features.len()),
            self.train.feature_dim(),
            "feature dimension mismatch"
        );
        // Collect (distance, label), partial-select the k smallest.
        let mut dist: Vec<(f64, usize)> = self
            .train
            .features()
            .iter()
            .zip(self.train.labels())
            .map(|(f, &l)| (Self::squared_distance(features, f), l))
            .collect();
        dist.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        let mut votes = vec![0usize; self.train.n_classes()];
        for &(_, l) in dist.iter().take(self.k) {
            votes[l] += 1;
        }
        // Ties break toward the nearest class among the tied ones.
        let max_votes = *votes.iter().max().expect("nonempty");
        dist.iter()
            .take(self.k)
            .find(|&&(_, l)| votes[l] == max_votes)
            .map(|&(_, l)| l)
            .expect("k >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clusters() -> Dataset {
        let mut ds = Dataset::new(3);
        for i in 0..10 {
            let j = i as f64 * 0.01;
            ds.push(vec![0.0 + j, 0.0], 0);
            ds.push(vec![5.0 + j, 5.0], 1);
            ds.push(vec![0.0 + j, 5.0], 2);
        }
        ds
    }

    #[test]
    fn classifies_cluster_centres() {
        let knn = KnnClassifier::fit(&clusters(), 5);
        assert_eq!(knn.predict(&[0.0, 0.2]), 0);
        assert_eq!(knn.predict(&[5.0, 4.9]), 1);
        assert_eq!(knn.predict(&[0.1, 5.1]), 2);
    }

    #[test]
    fn k_clamped_to_training_size() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 0);
        ds.push(vec![1.0], 1);
        let knn = KnnClassifier::fit(&ds, 100);
        assert_eq!(knn.k(), 2);
        // Tied vote: break toward the nearest sample.
        assert_eq!(knn.predict(&[0.1]), 0);
        assert_eq!(knn.predict(&[0.9]), 1);
    }

    #[test]
    fn k_one_memorizes_training_set() {
        let ds = clusters();
        let knn = KnnClassifier::fit(&ds, 1);
        for i in 0..ds.len() {
            let (f, l) = ds.sample(i);
            assert_eq!(knn.predict(f), l);
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let ds = clusters();
        let knn = KnnClassifier::fit(&ds, 3);
        let queries = vec![vec![0.0, 0.0], vec![5.0, 5.0]];
        assert_eq!(knn.predict_batch(&queries), vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn zero_k_panics() {
        let _ = KnnClassifier::fit(&clusters(), 0);
    }

    #[test]
    #[should_panic]
    fn empty_train_panics() {
        let _ = KnnClassifier::fit(&Dataset::new(1), 1);
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_panics() {
        let knn = KnnClassifier::fit(&clusters(), 1);
        let _ = knn.predict(&[1.0]);
    }
}
