//! Batch sensing throughput: tags/second on a 256-tag scene at 1, 2, 4
//! and 8 workers.
//!
//! The per-tag disentangling solves are independent, so throughput should
//! scale with the worker count up to the machine's core count; the `jobs=1`
//! row doubles as the sequential baseline (it runs inline, no pool). On a
//! single-core container every row collapses to the same rate — the
//! speedup column is only meaningful on multicore hardware.
//!
//! Writes a `BENCH_batch.json` snapshot at the repo root through the
//! shared versioned report writer, so the throughput trajectory is
//! recorded PR over PR in the same schema as every other snapshot.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_bench::{report, setup};
use rfp_core::WarmStart;
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};
use std::hint::black_box;
use std::time::Instant;

const TAGS: usize = 256;
const REPEATS: usize = 3;
const JOB_LEVELS: [usize; 4] = [1, 2, 4, 8];

/// `BATCH_THROUGHPUT_QUICK=1` trims the population and repeats so the CI
/// perf gate finishes fast; speedup ratios stay representative.
fn quick_mode() -> bool {
    std::env::var("BATCH_THROUGHPUT_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

fn main() {
    report::header("batch_throughput", "parallel batch sensing, 256 tags");
    let (tags_n, repeats) = if quick_mode() { (64, 2) } else { (TAGS, REPEATS) };
    if quick_mode() {
        println!("(quick mode: {tags_n} tags, {repeats} repeats)");
    }
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let scene = Scene::standard_2d();
    let prism = setup::prism_for(&scene);
    let materials = [Material::FreeSpace, Material::Wood, Material::Glass, Material::Water];
    let region = scene.region();
    let mut rng = StdRng::seed_from_u64(256);
    let tags: Vec<_> = (0..tags_n as u64)
        .map(|i| {
            let pos = Vec2::new(
                rng.gen_range(region.min().x..region.max().x),
                rng.gen_range(region.min().y..region.max().y),
            );
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let tag = SimTag::with_seeded_diversity(i)
                .attached_to(materials[(i % 4) as usize])
                .with_motion(Motion::planar_static(pos, alpha));
            scene.survey(&tag, i.wrapping_mul(0x9e37_79b9)).per_antenna
        })
        .collect();
    let cache = prism.batch_cache();

    // One unrecorded pass to warm caches and fault in the seed tables.
    black_box(prism.sense_batch_with(&cache, &tags, 1));

    report::section("tags/second (best of 3 passes)");
    let mut rows: Vec<JsonValue> = Vec::new();
    let mut base_rate = 0.0f64;
    for jobs in JOB_LEVELS {
        let mut best_secs = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            black_box(prism.sense_batch_with(&cache, &tags, jobs));
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        }
        let rate = tags_n as f64 / best_secs;
        if jobs == 1 {
            base_rate = rate;
        }
        println!(
            "  jobs {jobs}   {rate:>8.1} tags/s   {:>8.2} ms/batch   speedup ×{:.2}",
            best_secs * 1e3,
            rate / base_rate
        );
        let round1 = |x: f64| (x * 10.0).round() / 10.0;
        rows.push(JsonValue::obj(vec![
            ("jobs", JsonValue::Num(jobs as f64)),
            ("tags_per_sec", JsonValue::Num(round1(rate))),
            ("batch_ms", JsonValue::Num(round1(best_secs * 1e3))),
            ("speedup", JsonValue::Num((rate / base_rate * 100.0).round() / 100.0)),
        ]));
    }

    // Steady state: every tag warm-started from its previous estimate —
    // the regime of a deployment re-reading the same inventory each round.
    report::section("warm-started steady state (tags/second, best of 3 passes)");
    let warms: Vec<Option<WarmStart>> = prism
        .sense_batch_with(&cache, &tags, 1)
        .iter()
        .map(|r| r.as_ref().ok().map(|res| WarmStart::from_estimate(&res.estimate)))
        .collect();
    let mut warm_rows: Vec<JsonValue> = Vec::new();
    for jobs in JOB_LEVELS {
        let mut best_secs = f64::INFINITY;
        for _ in 0..repeats {
            let t0 = Instant::now();
            black_box(prism.sense_batch_warm(&cache, &tags, &warms, jobs));
            best_secs = best_secs.min(t0.elapsed().as_secs_f64());
        }
        let rate = tags_n as f64 / best_secs;
        println!(
            "  jobs {jobs}   {rate:>8.1} tags/s   {:>8.2} ms/batch   vs cold ×{:.2}",
            best_secs * 1e3,
            rate / base_rate
        );
        let round1 = |x: f64| (x * 10.0).round() / 10.0;
        warm_rows.push(JsonValue::obj(vec![
            ("jobs", JsonValue::Num(jobs as f64)),
            ("tags_per_sec", JsonValue::Num(round1(rate))),
            ("batch_ms", JsonValue::Num(round1(best_secs * 1e3))),
        ]));
    }

    let value = rfp_obs::report::snapshot(
        "batch_throughput",
        vec![
            ("tags", JsonValue::Num(tags_n as f64)),
            ("repeats", JsonValue::Num(repeats as f64)),
            // The scaling rows are only meaningful relative to the cores
            // the machine actually has — the perf gate keys off this.
            ("hardware_threads", JsonValue::Num(hardware_threads as f64)),
            (
                "units",
                JsonValue::obj(vec![(
                    "throughput",
                    JsonValue::Str("tags per second, best of repeats".into()),
                )]),
            ),
            ("levels", JsonValue::Arr(rows)),
            ("warm_levels", JsonValue::Arr(warm_rows)),
        ],
    );
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json");
    let path =
        std::env::var("BATCH_THROUGHPUT_OUT").unwrap_or_else(|_| default_path.to_string());
    match rfp_obs::report::write_json(std::path::Path::new(&path), &value) {
        Ok(()) => println!("\nsnapshot written to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
