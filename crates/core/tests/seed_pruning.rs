//! Property suite for coarse-to-fine seed pruning and warm starts
//! (DESIGN.md §6): the fast paths may only ever *speed up* the solve.
//!
//! Three contracts, each exercised over randomized scenes (tag placement,
//! orientation, material, noise seed, with and without multipath clutter):
//!
//! 1. **Full-beam bit-identity** — `refine_top_k = Some(total)` with the
//!    plateau exit disabled must reproduce the exhaustive configuration
//!    bit-for-bit: the coarse ranking only reorders which seed is refined
//!    first, never which refinements happen or what they return.
//! 2. **Pruned ≈ exhaustive** — the default beam must land on the same
//!    basin: final cost within `1e-6` (relative) of the exhaustive scan,
//!    position within `1e-6` m.
//! 3. **Warm gate safety** — a warm start, fresh or teleported-stale, must
//!    never produce a worse result than the cold scan beyond the gate's
//!    advertised tolerance; a rejected prior falls back to the cold result
//!    bit-for-bit.

use proptest::prelude::*;
use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig};
use rfp_core::solver::{
    solve_2d_seeded_warm, SolveSeeds, SolverConfig, SolverWorkspace, TagEstimate2D, WarmStart,
};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, MultipathEnvironment, Scene, SimTag};

/// One randomized scene instance → per-antenna observations (skipping the
/// rare placements where extraction fails on some antenna).
fn observations_for(
    x: f64,
    y: f64,
    alpha: f64,
    material_idx: usize,
    seed: u64,
    clutter: bool,
) -> Option<(Scene, Vec<AntennaObservation>)> {
    let mut scene = Scene::standard_2d();
    if clutter {
        scene = scene.with_environment(MultipathEnvironment::cluttered(3, seed ^ 0x5d));
    }
    let material = Material::CLASSES[material_idx % Material::CLASSES.len()];
    let tag = SimTag::with_seeded_diversity(seed)
        .attached_to(material)
        .with_motion(Motion::planar_static(Vec2::new(x, y), alpha));
    let survey = scene.survey(&tag, seed.wrapping_mul(0x9e37_79b9));
    let obs: Option<Vec<_>> = scene
        .antenna_poses()
        .iter()
        .zip(&survey.per_antenna)
        .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).ok())
        .collect();
    obs.map(|o| (scene, o))
}

fn solve(
    observations: &[AntennaObservation],
    scene: &Scene,
    config: &SolverConfig,
    warm: Option<&WarmStart>,
) -> TagEstimate2D {
    let seeds = SolveSeeds::for_scene(scene.region(), config, &scene.antenna_poses());
    let mut ws = SolverWorkspace::default();
    solve_2d_seeded_warm(observations, &seeds, config, &mut ws, warm).expect("3 antennas")
}

/// Bit-pattern equality across every solver output field.
fn assert_bit_identical(a: &TagEstimate2D, b: &TagEstimate2D, what: &str) {
    let fields = |e: &TagEstimate2D| {
        [e.position.x, e.position.y, e.orientation, e.kt, e.bt, e.cost, e.residual_rms]
    };
    for (fa, fb) in fields(a).iter().zip(fields(b).iter()) {
        assert_eq!(fa.to_bits(), fb.to_bits(), "{what}: {a:?} vs {b:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: a beam wide enough for every seed, with the plateau
    /// exit disabled, is the exhaustive scan bit-for-bit.
    #[test]
    fn full_beam_is_bit_identical_to_exhaustive(
        x in -1.2f64..1.2,
        y in 0.8f64..2.4,
        alpha in 0.0f64..3.1,
        material_idx in 0usize..8,
        seed in 0u64..1000,
        clutter in proptest::bool::ANY,
    ) {
        let Some((scene, obs)) = observations_for(x, y, alpha, material_idx, seed, clutter)
        else { return Ok(()) };
        let exhaustive = SolverConfig::exhaustive();
        let cold = solve(&obs, &scene, &exhaustive, None);
        let seeds = SolveSeeds::for_scene(scene.region(), &exhaustive, &scene.antenna_poses());
        let full_beam = SolverConfig {
            refine_top_k: Some(seeds.seed_count()),
            early_exit_rel_tol: 0.0,
            ..SolverConfig::default()
        };
        let beamed = solve(&obs, &scene, &full_beam, None);
        assert_bit_identical(&cold, &beamed, "full beam diverged from exhaustive");
    }

    /// Contract 2: the default pruned beam lands on the exhaustive basin.
    #[test]
    fn default_pruning_matches_exhaustive_cost(
        x in -1.2f64..1.2,
        y in 0.8f64..2.4,
        alpha in 0.0f64..3.1,
        material_idx in 0usize..8,
        seed in 0u64..1000,
        clutter in proptest::bool::ANY,
    ) {
        let Some((scene, obs)) = observations_for(x, y, alpha, material_idx, seed, clutter)
        else { return Ok(()) };
        let exhaustive = solve(&obs, &scene, &SolverConfig::exhaustive(), None);
        let pruned = solve(&obs, &scene, &SolverConfig::default(), None);
        let tol = 1e-6 * (1.0 + exhaustive.cost);
        prop_assert!(
            pruned.cost <= exhaustive.cost + tol,
            "pruned cost {} vs exhaustive {}",
            pruned.cost,
            exhaustive.cost
        );
        prop_assert!(
            pruned.position.distance(exhaustive.position) < 1e-6,
            "pruned position {} vs exhaustive {}",
            pruned.position,
            exhaustive.position
        );
    }

    /// Contract 3a: warm-starting from the solve's own estimate never
    /// worsens the result beyond the gate tolerance.
    #[test]
    fn fresh_warm_start_preserves_the_estimate(
        x in -1.2f64..1.2,
        y in 0.8f64..2.4,
        alpha in 0.0f64..3.1,
        material_idx in 0usize..8,
        seed in 0u64..1000,
        clutter in proptest::bool::ANY,
    ) {
        let Some((scene, obs)) = observations_for(x, y, alpha, material_idx, seed, clutter)
        else { return Ok(()) };
        let config = SolverConfig::default();
        let cold = solve(&obs, &scene, &config, None);
        let warm = WarmStart::from_estimate(&cold);
        let rewarmed = solve(&obs, &scene, &config, Some(&warm));
        let gate = 1.0 + config.warm_gate_rel_tol;
        prop_assert!(
            rewarmed.cost <= cold.cost * gate + 1e-9,
            "warm cost {} vs cold {} beyond the gate ×{gate}",
            rewarmed.cost,
            cold.cost
        );
        prop_assert!(
            rewarmed.position.distance(cold.position) < 0.05,
            "warm re-solve moved {} m",
            rewarmed.position.distance(cold.position)
        );
    }

    /// Contract 3b: a teleported (stale) prior must be rejected by the
    /// gate or land on the cold basin anyway — never a worse answer.
    #[test]
    fn teleported_warm_start_never_degrades(
        x in -1.2f64..1.2,
        y in 0.8f64..2.4,
        dx in -2.0f64..2.0,
        dy in -1.5f64..1.5,
        alpha in 0.0f64..3.1,
        seed in 0u64..1000,
    ) {
        // The tag "was" at (x+dx, y+dy) last round but teleported to
        // (x, y); the stale prior carries the old position and a mangled
        // orientation.
        prop_assume!(dx.abs() + dy.abs() > 0.8);
        let Some((scene, obs)) = observations_for(x, y, alpha, 2, seed, false)
        else { return Ok(()) };
        let config = SolverConfig::default();
        let cold = solve(&obs, &scene, &config, None);
        let stale = WarmStart {
            position: Vec2::new(x + dx, y + dy),
            orientation: (alpha + 1.3) % std::f64::consts::PI,
            kt: cold.kt * 0.5,
            bt: (cold.bt + 2.0) % std::f64::consts::TAU,
        };
        let warmed = solve(&obs, &scene, &config, Some(&stale));
        let gate = 1.0 + config.warm_gate_rel_tol;
        prop_assert!(
            warmed.cost <= cold.cost * gate + 1e-9,
            "stale prior let cost {} through vs cold {}",
            warmed.cost,
            cold.cost
        );
    }
}

/// Deterministic teleport case: the gate must *miss* (fall back to the
/// cold scan bit-for-bit) for a prior parked far outside the tag's basin,
/// and the fallback must report the miss.
#[test]
fn rejected_prior_falls_back_to_the_cold_scan_bit_for_bit() {
    let (scene, obs) =
        observations_for(0.4, 1.6, 1.1, 3, 31, true).expect("standard scene extracts");
    let config = SolverConfig::default();
    let seeds = SolveSeeds::for_scene(scene.region(), &config, &scene.antenna_poses());

    let mut ws = SolverWorkspace::default();
    let cold = solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, None).expect("solvable");

    let stale = WarmStart {
        position: Vec2::new(-2.6, 5.4),
        orientation: 2.9,
        kt: 4.0e-8,
        bt: 0.3,
    };
    let before = ws.prune_stats();
    let warmed =
        solve_2d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&stale)).expect("solvable");
    let delta = ws.prune_stats().since(before);

    if delta.warm_start_misses == 1 {
        assert_bit_identical(&cold, &warmed, "gate miss must fall back to the cold scan");
    } else {
        // The gate only accepts a prior that matched the coarse floor; the
        // result must then be at least as good as the cold scan's gate.
        assert_eq!(delta.warm_start_hits, 1);
        assert!(warmed.cost <= cold.cost * (1.0 + config.warm_gate_rel_tol) + 1e-9);
    }
}
