//! A small multi-layer perceptron — the paper's §VII future-work extension
//! ("apply more powerful deep-learning methods to improve the performance of
//! material identification").
//!
//! One hidden layer with tanh activations, a softmax output and mini-batch
//! SGD with cross-entropy loss. Deliberately modest: the point of the
//! extension bench is to check whether a learned nonlinearity buys anything
//! over the paper's decision tree on the disentangled features, not to
//! build a deep-learning framework.

use crate::dataset::Dataset;
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`MlpClassifier::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpConfig {
    /// Hidden layer width.
    pub hidden: usize,
    /// Number of epochs over the training set.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for weight initialization and shuffling.
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig { hidden: 32, epochs: 200, learning_rate: 0.05, batch_size: 16, seed: 7 }
    }
}

/// A fitted one-hidden-layer MLP.
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, mlp::{MlpClassifier, MlpConfig}, Classifier};
/// let mut ds = Dataset::new(2);
/// for i in 0..40 {
///     let x = i as f64 / 20.0 - 1.0;
///     ds.push(vec![x], usize::from(x > 0.0));
/// }
/// let mlp = MlpClassifier::fit(&ds, &MlpConfig { epochs: 300, ..Default::default() });
/// assert_eq!(mlp.predict(&[-0.8]), 0);
/// assert_eq!(mlp.predict(&[0.8]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    w1: Vec<Vec<f64>>, // hidden × input
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>, // classes × hidden
    b2: Vec<f64>,
}

impl MlpClassifier {
    /// Trains the network with mini-batch SGD.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or the config has a zero-sized layer,
    /// batch or epoch count.
    pub fn fit(train: &Dataset, config: &MlpConfig) -> Self {
        assert!(!train.is_empty(), "empty training set");
        assert!(config.hidden > 0 && config.batch_size > 0 && config.epochs > 0);
        let d = train.feature_dim().expect("nonempty");
        let c = train.n_classes();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale1 = (1.0 / d as f64).sqrt();
        let scale2 = (1.0 / config.hidden as f64).sqrt();
        let mut w1 = vec![vec![0.0; d]; config.hidden];
        let mut w2 = vec![vec![0.0; config.hidden]; c];
        for row in &mut w1 {
            for v in row.iter_mut() {
                *v = rng.gen_range(-scale1..scale1);
            }
        }
        for row in &mut w2 {
            for v in row.iter_mut() {
                *v = rng.gen_range(-scale2..scale2);
            }
        }
        let mut net = MlpClassifier { w1, b1: vec![0.0; config.hidden], w2, b2: vec![0.0; c] };

        let n = train.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _ in 0..config.epochs {
            // Fisher–Yates shuffle.
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            for batch in order.chunks(config.batch_size) {
                net.sgd_step(train, batch, config.learning_rate);
            }
        }
        net
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let hidden: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| (w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + b).tanh())
            .collect();
        let logits: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        (hidden, softmax(&logits))
    }

    fn sgd_step(&mut self, train: &Dataset, batch: &[usize], lr: f64) {
        let scale = lr / batch.len() as f64;
        for &idx in batch {
            let (x, label) = train.sample(idx);
            let (hidden, probs) = self.forward(x);
            // dL/dlogit = p − onehot
            let dlogit: Vec<f64> = probs
                .iter()
                .enumerate()
                .map(|(k, p)| p - if k == label { 1.0 } else { 0.0 })
                .collect();
            // Hidden gradient before activation derivative.
            let mut dhidden = vec![0.0f64; hidden.len()];
            for (k, dk) in dlogit.iter().enumerate() {
                for (j, h) in hidden.iter().enumerate() {
                    dhidden[j] += dk * self.w2[k][j];
                    self.w2[k][j] -= scale * dk * h;
                }
                self.b2[k] -= scale * dk;
            }
            for (j, dh) in dhidden.iter().enumerate() {
                let grad = dh * (1.0 - hidden[j] * hidden[j]); // tanh'
                for (i, xi) in x.iter().enumerate() {
                    self.w1[j][i] -= scale * grad * xi;
                }
                self.b1[j] -= scale * grad;
            }
        }
    }

    /// Class probabilities for one feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.w1[0].len(), "feature dimension mismatch");
        self.forward(features).1
    }
}

fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

impl Classifier for MlpClassifier {
    fn predict(&self, features: &[f64]) -> usize {
        let p = self.predict_proba(features);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite probabilities"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1000.0, 999.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| v.is_finite() && v >= 0.0));
        assert!(p[0] > p[2]);
    }

    #[test]
    fn learns_linear_boundary() {
        let mut ds = Dataset::new(2);
        for i in 0..60 {
            let x = i as f64 / 30.0 - 1.0;
            ds.push(vec![x, -x], usize::from(x > 0.0));
        }
        let mlp = MlpClassifier::fit(&ds, &Default::default());
        assert_eq!(mlp.predict(&[-0.7, 0.7]), 0);
        assert_eq!(mlp.predict(&[0.7, -0.7]), 1);
    }

    #[test]
    fn learns_xor() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ds = Dataset::new(2);
        for _ in 0..200 {
            let x = rng.gen_range(-1.0..1.0f64);
            let y = rng.gen_range(-1.0..1.0f64);
            ds.push(vec![x, y], usize::from((x > 0.0) != (y > 0.0)));
        }
        let cfg = MlpConfig { hidden: 16, epochs: 400, learning_rate: 0.1, ..Default::default() };
        let mlp = MlpClassifier::fit(&ds, &cfg);
        assert_eq!(mlp.predict(&[0.6, 0.6]), 0);
        assert_eq!(mlp.predict(&[-0.6, -0.6]), 0);
        assert_eq!(mlp.predict(&[0.6, -0.6]), 1);
        assert_eq!(mlp.predict(&[-0.6, 0.6]), 1);
    }

    #[test]
    fn probabilities_valid() {
        let mut ds = Dataset::new(3);
        for i in 0..30 {
            ds.push(vec![i as f64], i % 3);
        }
        let mlp = MlpClassifier::fit(&ds, &MlpConfig { epochs: 10, ..Default::default() });
        let p = mlp.predict_proba(&[5.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut ds = Dataset::new(2);
        for i in 0..20 {
            ds.push(vec![i as f64 / 10.0], usize::from(i >= 10));
        }
        let cfg = MlpConfig { epochs: 50, ..Default::default() };
        let a = MlpClassifier::fit(&ds, &cfg);
        let b = MlpClassifier::fit(&ds, &cfg);
        assert_eq!(a.predict_proba(&[0.4]), b.predict_proba(&[0.4]));
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = MlpClassifier::fit(&Dataset::new(1), &Default::default());
    }
}
