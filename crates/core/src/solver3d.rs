//! 3-D disentangling (paper §VII future work).
//!
//! "One of them is to perform the system in 3D space, which is totally
//! feasible as long as increasing the number of antenna to 4." — with four
//! antennas there are 8 fitted parameters against 7 unknowns: position
//! `(x, y, z)`, the dipole direction (two angles — a dipole is an axis, so
//! a point on the half-sphere), and the material terms `(k_t, b_t)`.
//!
//! The machinery is the 2-D solver's: sigma-weighted residuals, wrapped
//! intercepts, multi-start + Levenberg–Marquardt with the analytic
//! Jacobian of DESIGN.md §6 (spherical-angle dipole parameterization) and
//! the same numeric fallback knob.
//!
//! Like the 2-D solver, this module is a thin facade over the
//! dimension-generic [`LmCore`]: the joint 7-parameter
//! and stage-1 4-parameter problems are [`ResidualModel`] implementations
//! refined by `LmCore<7>` / `LmCore<4>`, the residual kernels run 4-wide
//! antenna-row lanes (see [`LaneMode`] and
//! [`Solver3DConfig::lane_mode`]), and the pre-refactor solver is frozen
//! verbatim in [`crate::reference`] as the bit-identity oracle.

use crate::lm::{LaneMode, LaneStats, LmCore, ResidualModel, StepSolver, StepStats};
use crate::model::AntennaObservation;
use crate::obs;
use crate::solver::{
    rssi_pattern_penalty, rssi_penalty_hoisted, JacobianMode, PruneStats, SolveStats,
};
use rfp_geom::{angle, AntennaPose, Region2, Vec3};
use rfp_phys::polarization::{orientation_phase, projection_magnitude};
use rfp_phys::propagation;

/// Configuration for [`solve_3d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Solver3DConfig {
    /// Expected slope noise (rad/Hz).
    pub slope_sigma: f64,
    /// Expected intercept noise (rad).
    pub intercept_sigma: f64,
    /// Multi-start grid over (x, y).
    pub position_starts: (usize, usize),
    /// Multi-start levels over z within `z_range`.
    pub z_starts: usize,
    /// Multi-start dipole directions.
    pub dipole_starts: usize,
    /// Maximum LM iterations per start.
    pub max_iterations: usize,
    /// Relative cost tolerance.
    pub tolerance: f64,
    /// Expected RSSI noise (dB) for ranking candidate modes by
    /// polarization-mismatch consistency (see
    /// [`SolverConfig::rssi_sigma_db`](crate::solver::SolverConfig)).
    /// `f64::INFINITY` disables the penalty.
    pub rssi_sigma_db: f64,
    /// Jacobian mode of the LM refinements: closed-form (default) or the
    /// central-difference fallback (see [`JacobianMode`]).
    pub jacobian: JacobianMode,
    /// Stage-1 beam width of the coarse-to-fine scan (see
    /// [`SolverConfig::refine_top_k`](crate::solver::SolverConfig)); `None`
    /// refines every `(x, y, z)` seed.
    pub refine_top_k: Option<usize>,
    /// Cost-plateau early exit across the seed beam and the joint
    /// short-list; `0` disables it (see
    /// [`SolverConfig::early_exit_rel_tol`](crate::solver::SolverConfig)).
    pub early_exit_rel_tol: f64,
    /// Warm-start validation gate tolerance against the coarse-scan floor
    /// (see
    /// [`SolverConfig::warm_gate_rel_tol`](crate::solver::SolverConfig)).
    pub warm_gate_rel_tol: f64,
    /// Lane width of the hot loops: [`LaneMode::Wide4`] (default) runs the
    /// coarse seed ranking and the residual/Jacobian kernels in explicit
    /// 4-wide lanes; [`LaneMode::Scalar`] is the escape hatch back to the
    /// plain loops. Both orders are bit-identical (see
    /// [`SolverConfig::lane_mode`](crate::solver::SolverConfig)).
    /// [`LaneMode::Padded4`] has no dedicated 3-D kernels (six antennas
    /// already fill wide blocks plus a cheap remainder) and runs the
    /// `Wide4` path.
    pub lane_mode: LaneMode,
    /// Damped-step backend of the LM refinements (see
    /// [`SolverConfig::step_solver`](crate::solver::SolverConfig)):
    /// per-attempt Cholesky (default) or the O(P²) λ-retry cache.
    pub step_solver: StepSolver,
}

impl Default for Solver3DConfig {
    fn default() -> Self {
        Solver3DConfig {
            slope_sigma: 1.0e-10,
            intercept_sigma: 0.08,
            position_starts: (5, 5),
            z_starts: 3,
            dipole_starts: 6,
            max_iterations: 80,
            tolerance: 1e-10,
            rssi_sigma_db: 1.0,
            jacobian: JacobianMode::Analytic,
            refine_top_k: Some(16),
            early_exit_rel_tol: 0.5,
            warm_gate_rel_tol: 0.25,
            lane_mode: LaneMode::Wide4,
            step_solver: StepSolver::Cholesky,
        }
    }
}

impl Solver3DConfig {
    /// The exhaustive escape hatch: refine every multi-start seed with no
    /// early exit, reproducing the pre-pruning solver bit-for-bit.
    #[must_use]
    pub fn exhaustive() -> Self {
        Solver3DConfig {
            refine_top_k: None,
            early_exit_rel_tol: 0.0,
            ..Solver3DConfig::default()
        }
    }

    /// True when the multi-start scan runs the legacy exhaustive loop.
    pub(crate) fn is_exhaustive(&self) -> bool {
        self.refine_top_k.is_none() && self.early_exit_rel_tol <= 0.0
    }
}

/// A cross-round warm-start prior for the 3-D solve: the previous round's
/// disentangled 7-parameter state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WarmStart3D {
    /// Predicted tag position, metres.
    pub position: Vec3,
    /// Previous dipole axis (need not be normalized; `z ≥ 0` canonical
    /// form is fine — dipoles are π-symmetric).
    pub dipole: Vec3,
    /// Previous material slope term `k_t`, rad/Hz.
    pub kt: f64,
    /// Previous material intercept term `b_t`, radians.
    pub bt: f64,
}

impl WarmStart3D {
    /// The warm start implied by a previous round's estimate.
    pub fn from_estimate(estimate: &TagEstimate3D) -> Self {
        WarmStart3D {
            position: estimate.position,
            dipole: estimate.dipole,
            kt: estimate.kt,
            bt: estimate.bt,
        }
    }

    /// Replaces the position prediction while keeping the slow-moving
    /// dipole axis and material terms.
    #[must_use]
    pub fn with_position(mut self, position: Vec3) -> Self {
        self.position = position;
        self
    }

    pub(crate) fn params(&self) -> [f64; 7] {
        let w = self.dipole.normalized();
        let theta = w.z.clamp(-1.0, 1.0).acos();
        let phi = w.y.atan2(w.x);
        [self.position.x, self.position.y, self.position.z, theta, phi, self.kt, self.bt]
    }
}

/// Per-scene constants of the 3-D solve (multi-start seeds + admissible
/// volume), computed once per `(region, z_range, config)` and shared
/// read-only across solves — the 3-D analogue of
/// [`SolveSeeds`](crate::solver::SolveSeeds).
///
/// [`Solve3DSeeds::for_scene`] additionally hoists the per-seed
/// per-antenna slope table and the dipole-scan orientation/projection
/// tables for a known antenna deployment out of the per-tag loop; solves
/// against observations whose poses differ fall back transparently with
/// bit-identical results.
#[derive(Debug, Clone)]
pub struct Solve3DSeeds {
    /// Multi-start positions: (x, y) grid × z levels, in grid-major order.
    pub(crate) position_starts: Vec<Vec3>,
    /// Polar ring count of the dipole half-sphere scan.
    pub(crate) rings: usize,
    /// Horizontal region candidates must refine into to be preferred.
    pub(crate) admissible_xy: Region2,
    /// Expanded vertical bounds of the admissible volume.
    pub(crate) z_bounds: (f64, f64),
    /// Precomputed per-antenna geometry tables (only with
    /// [`Solve3DSeeds::for_scene`]).
    pub(crate) geometry: Option<SeedGeometry3D>,
}

/// The hoisted per-scene geometry of the 3-D seeding, built with exactly
/// the expressions the fallback path uses (bit-identical lookups).
#[derive(Debug, Clone)]
pub(crate) struct SeedGeometry3D {
    /// The deployment the tables were built for.
    pub(crate) poses: Vec<AntennaPose>,
    /// `seed_slopes[s·n + i]` = model slope of antenna *i* at grid seed *s*.
    pub(crate) seed_slopes: Vec<f64>,
    /// `orient[dir·n + i]` = `θ_orient(Aᵢ, w(θ, φ))` for dipole-scan
    /// direction index `dir = ti·2·rings + pi`.
    pub(crate) orient: Vec<f64>,
    /// `proj[dir·n + i]` = dipole projection magnitude (RSSI penalty).
    pub(crate) proj: Vec<f64>,
    /// `proj_db[dir·n + i]` = `20·log10(proj[dir·n + i])` — the hoisted dB
    /// half of the RSSI penalty.
    pub(crate) proj_db: Vec<f64>,
}

impl SeedGeometry3D {
    pub(crate) fn matches(&self, observations: &[AntennaObservation]) -> bool {
        self.poses.len() == observations.len()
            && self.poses.iter().zip(observations).all(|(p, o)| *p == o.pose)
    }
}

impl Solve3DSeeds {
    /// Precomputes the multi-start seeds for the `region × z_range` box
    /// without geometry tables (no antenna deployment known yet).
    pub fn new(region: Region2, z_range: (f64, f64), config: &Solver3DConfig) -> Self {
        let (nx, ny) = config.position_starts;
        let (z_lo, z_hi) = z_range;
        let z_starts = config.z_starts.max(1);
        let mut position_starts =
            Vec::with_capacity(nx.max(1) * ny.max(1) * z_starts);
        for seed_pos in region.grid(nx.max(1), ny.max(1)) {
            for zi in 0..z_starts {
                let z = z_lo + (z_hi - z_lo) * (zi as f64 + 0.5) / z_starts as f64;
                position_starts.push(seed_pos.with_z(z));
            }
        }
        Solve3DSeeds {
            position_starts,
            rings: config.dipole_starts.max(3),
            admissible_xy: region.expanded(0.3),
            z_bounds: (z_lo - 0.3, z_hi + 0.3),
            geometry: None,
        }
    }

    /// [`Solve3DSeeds::new`] plus the per-antenna geometry tables for a
    /// known deployment `poses` — the per-scene precomputation the 3-D
    /// pipeline and the batch engine use.
    pub fn for_scene(
        region: Region2,
        z_range: (f64, f64),
        config: &Solver3DConfig,
        poses: &[AntennaPose],
    ) -> Self {
        let mut seeds = Self::new(region, z_range, config);
        let n = poses.len();
        let mut seed_slopes = Vec::with_capacity(seeds.position_starts.len() * n);
        for &seed in &seeds.position_starts {
            for pose in poses {
                let d = pose.position().distance(seed);
                seed_slopes.push(propagation::slope_from_distance(d));
            }
        }
        let rings = seeds.rings;
        let mut orient = Vec::with_capacity(rings * 2 * rings * n);
        let mut proj = Vec::with_capacity(rings * 2 * rings * n);
        let mut proj_db = Vec::with_capacity(rings * 2 * rings * n);
        for ti in 0..rings {
            let theta = std::f64::consts::FRAC_PI_2 * (ti as f64 + 0.5) / rings as f64;
            for pi in 0..(2 * rings) {
                let phi = std::f64::consts::TAU * pi as f64 / (2 * rings) as f64;
                let w = dipole_from_angles(theta, phi);
                for pose in poses {
                    orient.push(orientation_phase(pose, w));
                    let p = projection_magnitude(pose, w);
                    proj.push(p);
                    proj_db.push(20.0 * p.log10());
                }
            }
        }
        seeds.geometry = Some(SeedGeometry3D {
            poses: poses.to_vec(),
            seed_slopes,
            orient,
            proj,
            proj_db,
        });
        seeds
    }
}

/// Reusable scratch buffers for repeated 3-D solves; contents are fully
/// overwritten by each solve, so reuse never changes results.
#[derive(Debug, Default)]
pub struct Solver3DWorkspace {
    /// Joint 7-parameter LM core.
    joint: LmCore<7>,
    /// Stage-1 slope-only 4-parameter LM core.
    slope: LmCore<4>,
    /// Stage-1 refined candidates `(params, cost, seed index)`.
    position_candidates: Vec<([f64; 4], f64, usize)>,
    /// `(coarse cost, seed index, k_t seed)` ranking of the coarse-to-fine
    /// scan.
    coarse: Vec<(f64, usize, f64)>,
    /// `(θ, φ, b_t seed, ranking cost)` per dipole scan direction.
    dipole_ranked: Vec<(f64, f64, f64, f64)>,
    /// Per-antenna distances of the current stage-2 candidate.
    dists: Vec<f64>,
    /// Per-antenna `rssiᵢ + 40·log10(dᵢ)` — the direction-independent half
    /// of the RSSI penalty, hoisted out of the dipole scan.
    rssi_base: Vec<f64>,
    /// Per-antenna `θ_orient` / projection rows when no geometry table
    /// applies.
    orient_row: Vec<f64>,
    proj_row: Vec<f64>,
    proj_db_row: Vec<f64>,
    /// Stage-3 refined candidates; the winner is extracted by index.
    refined: Vec<([f64; 7], f64)>,
    /// Pruning / warm-start effectiveness tallies.
    prune: PruneStats,
    /// Lane tallies of the coarse seed ranking (the LM cores keep their
    /// own row tallies).
    lanes: LaneStats,
}

impl Solver3DWorkspace {
    /// Snapshot of the LM work counters accumulated by solves run against
    /// this workspace (diff two snapshots with [`SolveStats::since`] for
    /// per-solve counts). Sums the joint and slope cores, so totals match
    /// the single-workspace accounting of the pre-refactor solver.
    pub fn stats(&self) -> SolveStats {
        let j = self.joint.stats();
        let s = self.slope.stats();
        SolveStats {
            residual_evals: j.residual_evals + s.residual_evals,
            jacobian_evals: j.jacobian_evals + s.jacobian_evals,
            iterations: j.iterations + s.iterations,
        }
    }

    /// Snapshot of the seed-pruning / warm-start effectiveness counters
    /// (diff with [`PruneStats::since`]).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune
    }

    /// Snapshot of the 4-wide lane tallies: the coarse seed-ranking blocks
    /// plus both LM cores' residual-row blocks (diff with
    /// [`LaneStats::since`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.lanes
            .merged(self.joint.lane_stats())
            .merged(self.slope.lane_stats())
    }

    /// Snapshot of the damped-step tallies — λ retries, factorization
    /// failures, cached λ-resolves — summed over both LM cores (diff with
    /// [`StepStats::since`]).
    pub fn step_stats(&self) -> StepStats {
        self.joint.step_stats().merged(self.slope.step_stats())
    }
}

/// The disentangled 3-D tag state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagEstimate3D {
    /// Tag position, metres.
    pub position: Vec3,
    /// Unit dipole axis, canonicalized to `z ≥ 0` (dipoles are
    /// π-symmetric).
    pub dipole: Vec3,
    /// Material slope term, rad/Hz.
    pub kt: f64,
    /// Material intercept term, radians in `[0, 2π)`.
    pub bt: f64,
    /// Final weighted cost.
    pub cost: f64,
    /// RMS of sigma-normalized residuals.
    pub residual_rms: f64,
}

impl TagEstimate3D {
    /// Angular distance between this estimate's dipole axis and another
    /// axis, in `[0, π/2]`.
    pub fn dipole_axis_error(&self, other: Vec3) -> f64 {
        let dot = self.dipole.dot(other.normalized()).abs().clamp(0.0, 1.0);
        dot.acos()
    }
}

/// Errors from [`solve_3d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solve3DError {
    /// Fewer than four antennas: 2N < 7 unknowns.
    TooFewAntennas {
        /// Number of observations provided.
        provided: usize,
    },
}

impl std::fmt::Display for Solve3DError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solve3DError::TooFewAntennas { provided } => {
                write!(f, "3-D disentangling needs at least 4 antennas, got {provided}")
            }
        }
    }
}

impl std::error::Error for Solve3DError {}

fn dipole_from_angles(theta: f64, phi: f64) -> Vec3 {
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    Vec3::new(st * cp, st * sp, ct)
}

/// Fills `out` with the 2N sigma-normalized residuals at parameters
/// `p = (x, y, z, θ, φ, k_t, b_t)` (dipole `w = (sinθ cosφ, sinθ sinφ,
/// cosθ)`) — residual `2i` is antenna *i*'s slope equation, `2i+1` its
/// wrapped intercept equation.
pub fn residuals_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &Solver3DConfig,
    out: &mut Vec<f64>,
) {
    residuals_and_jacobian_3d(observations, p, config, out, None);
}

/// [`residuals_3d`] plus, when `jac` is given, the row-major `2N × 7`
/// analytic Jacobian (DESIGN.md §6): the slope rows differentiate the
/// distance through all three position coordinates, and the intercept
/// rows apply the `θ′_orient` chain rule against `∂w/∂θ = (cosθ cosφ,
/// cosθ sinφ, −sinθ)` and `∂w/∂φ = (−sinθ sinφ, sinθ cosφ, 0)`.
pub fn residuals_and_jacobian_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec3::new(p[0], p[1], p[2]);
    let (st, ct) = p[3].sin_cos();
    let (sp, cp) = p[4].sin_cos();
    // Same expression as `dipole_from_angles`, inlined so the Jacobian
    // shares the sin/cos evaluations.
    let w = Vec3::new(st * cp, st * sp, ct);
    let wt = Vec3::new(ct * cp, ct * sp, -st);
    let wp = Vec3::new(-st * sp, st * cp, 0.0);
    let (kt, bt) = (p[5], p[6]);
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 2 * 7, 0.0);
    }
    let mut jac: Option<&mut [f64]> = jac.map(Vec::as_mut_slice);
    let k1 = propagation::slope_from_distance(1.0); // 4π/c
    match config.lane_mode {
        // `Padded4` keeps the wide path in 3-D: six antennas already fill
        // one wide block and the remainder is cheap, so there is no padded
        // kernel to win with (documented on `Solver3DConfig::lane_mode`).
        LaneMode::Wide4 | LaneMode::Padded4 => {
            // Four independent antenna rows per pass; rows are emitted in
            // antenna order with no cross-lane reduction, so the unrolled
            // path is bit-identical to the scalar loop.
            let mut chunks = observations.chunks_exact(4);
            let mut i = 0usize;
            for c in chunks.by_ref() {
                joint_row_3d(&c[0], i, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_3d(&c[1], i + 1, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_3d(&c[2], i + 2, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
                joint_row_3d(&c[3], i + 3, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
                i += 4;
            }
            for o in chunks.remainder() {
                joint_row_3d(o, i, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
                i += 1;
            }
        }
        LaneMode::Scalar => {
            for (i, o) in observations.iter().enumerate() {
                joint_row_3d(o, i, pos, w, wt, wp, kt, bt, k1, config, r, jac.as_deref_mut());
            }
        }
    }
}

/// One antenna's slope + wrapped-intercept rows (and, when `jac` is given,
/// their Jacobian rows) of the joint 3-D problem — the body shared by the
/// 4-wide lanes and the scalar loop of [`residuals_and_jacobian_3d`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn joint_row_3d(
    o: &AntennaObservation,
    i: usize,
    pos: Vec3,
    w: Vec3,
    wt: Vec3,
    wp: Vec3,
    kt: f64,
    bt: f64,
    k1: f64,
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let ap = o.pose.position();
    let d = ap.distance(pos);
    r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
    let uw = o.pose.u().dot(w);
    let vw = o.pose.v().dot(w);
    let denom = uw * uw + vw * vw;
    // Same expression (and guard) as `orientation_phase`.
    let theta = if denom < 1e-24 {
        0.0
    } else {
        (2.0 * uw * vw).atan2(uw * uw - vw * vw)
    };
    r.push(angle::wrap_pi(o.intercept - theta - bt) / config.intercept_sigma);
    if let Some(j) = jac {
        let rs = 2 * i * 7;
        let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
        j[rs] = g * (pos.x - ap.x);
        j[rs + 1] = g * (pos.y - ap.y);
        j[rs + 2] = g * (pos.z - ap.z);
        j[rs + 5] = -1.0 / config.slope_sigma;
        let rb = rs + 7;
        let (dtheta_t, dtheta_p) = if denom < 1e-24 {
            (0.0, 0.0)
        } else {
            let uwt = o.pose.u().dot(wt);
            let vwt = o.pose.v().dot(wt);
            let uwp = o.pose.u().dot(wp);
            let vwp = o.pose.v().dot(wp);
            (
                2.0 * (uw * vwt - vw * uwt) / denom,
                2.0 * (uw * vwp - vw * uwp) / denom,
            )
        };
        j[rb + 3] = -dtheta_t / config.intercept_sigma;
        j[rb + 4] = -dtheta_p / config.intercept_sigma;
        j[rb + 6] = -1.0 / config.intercept_sigma;
    }
}

/// The N sigma-normalized slope residuals at `p = (x, y, z, k_t)` and,
/// when `jac` is given, their row-major `N × 4` analytic Jacobian — the
/// stage-1 seeding problem.
fn slope_residuals_and_jacobian_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut Vec<f64>>,
) {
    let pos = Vec3::new(p[0], p[1], p[2]);
    let kt = p[3];
    r.clear();
    let mut jac = jac;
    if let Some(j) = jac.as_deref_mut() {
        j.clear();
        j.resize(observations.len() * 4, 0.0);
    }
    let mut jac: Option<&mut [f64]> = jac.map(Vec::as_mut_slice);
    let k1 = propagation::slope_from_distance(1.0);
    match config.lane_mode {
        // As in `residuals_and_jacobian_3d`, `Padded4` runs the wide path.
        LaneMode::Wide4 | LaneMode::Padded4 => {
            // See `residuals_and_jacobian_3d`: independent rows in antenna
            // order, bit-identical to the scalar loop.
            let mut chunks = observations.chunks_exact(4);
            let mut i = 0usize;
            for c in chunks.by_ref() {
                slope_row_3d(&c[0], i, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_3d(&c[1], i + 1, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_3d(&c[2], i + 2, pos, kt, k1, config, r, jac.as_deref_mut());
                slope_row_3d(&c[3], i + 3, pos, kt, k1, config, r, jac.as_deref_mut());
                i += 4;
            }
            for o in chunks.remainder() {
                slope_row_3d(o, i, pos, kt, k1, config, r, jac.as_deref_mut());
                i += 1;
            }
        }
        LaneMode::Scalar => {
            for (i, o) in observations.iter().enumerate() {
                slope_row_3d(o, i, pos, kt, k1, config, r, jac.as_deref_mut());
            }
        }
    }
}

/// One antenna's slope row (and Jacobian row) of the 3-D stage-1 problem —
/// the body shared by the 4-wide lanes and the scalar loop of
/// [`slope_residuals_and_jacobian_3d`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn slope_row_3d(
    o: &AntennaObservation,
    i: usize,
    pos: Vec3,
    kt: f64,
    k1: f64,
    config: &Solver3DConfig,
    r: &mut Vec<f64>,
    jac: Option<&mut [f64]>,
) {
    let ap = o.pose.position();
    let d = ap.distance(pos);
    r.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
    if let Some(j) = jac {
        let g = if d > 1e-12 { -k1 / (d * config.slope_sigma) } else { 0.0 };
        j[i * 4] = g * (pos.x - ap.x);
        j[i * 4 + 1] = g * (pos.y - ap.y);
        j[i * 4 + 2] = g * (pos.z - ap.z);
        j[i * 4 + 3] = -1.0 / config.slope_sigma;
    }
}

/// Finite-difference steps of the numeric-fallback joint solve:
/// x, y, z (m), θ, φ (rad), k_t (rad/Hz), b_t (rad).
const JOINT_STEPS_3D: [f64; 7] = [1e-4, 1e-4, 1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
/// Steps of the numeric-fallback slope-only (stage-1) solve: x, y, z, k_t.
const SLOPE_STEPS_3D: [f64; 4] = [1e-4, 1e-4, 1e-4, 1e-13];

/// The joint 7-parameter disentangling problem as a [`ResidualModel`]:
/// slope + wrapped-intercept residuals with the fused analytic Jacobian of
/// [`residuals_and_jacobian_3d`].
struct Joint3<'a> {
    observations: &'a [AntennaObservation],
    config: &'a Solver3DConfig,
}

impl ResidualModel<7> for Joint3<'_> {
    fn eval(&self, p: &[f64; 7], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
        residuals_and_jacobian_3d(self.observations, p, self.config, r, jac);
    }

    fn lane_mode(&self) -> LaneMode {
        self.config.lane_mode
    }
}

/// The stage-1 slope-only `(x, y, z, k_t)` problem as a [`ResidualModel`].
struct Slope3<'a> {
    observations: &'a [AntennaObservation],
    config: &'a Solver3DConfig,
}

impl ResidualModel<4> for Slope3<'_> {
    fn eval(&self, p: &[f64; 4], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
        slope_residuals_and_jacobian_3d(self.observations, p, self.config, r, jac);
    }

    fn lane_mode(&self) -> LaneMode {
        self.config.lane_mode
    }
}

/// Joint 7-parameter LM refinement through the dimension-generic core,
/// dispatched on the configured [`JacobianMode`].
fn refine_joint_3d(
    core: &mut LmCore<7>,
    observations: &[AntennaObservation],
    config: &Solver3DConfig,
    p0: [f64; 7],
) -> ([f64; 7], f64) {
    let model = Joint3 { observations, config };
    match config.jacobian {
        JacobianMode::Analytic => core.refine_with(
            &model,
            p0,
            config.max_iterations,
            config.tolerance,
            config.step_solver,
        ),
        JacobianMode::Numeric => core.refine_numeric(
            &model,
            p0,
            &JOINT_STEPS_3D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Stage-1 slope-only LM refinement over `(x, y, z, k_t)` through the
/// dimension-generic core, dispatched on the configured [`JacobianMode`].
fn refine_slope_3d(
    core: &mut LmCore<4>,
    observations: &[AntennaObservation],
    config: &Solver3DConfig,
    p0: [f64; 4],
) -> ([f64; 4], f64) {
    let model = Slope3 { observations, config };
    match config.jacobian {
        JacobianMode::Analytic => core.refine_with(
            &model,
            p0,
            config.max_iterations,
            config.tolerance,
            config.step_solver,
        ),
        JacobianMode::Numeric => core.refine_numeric(
            &model,
            p0,
            &SLOPE_STEPS_3D,
            config.max_iterations,
            config.tolerance,
        ),
    }
}

/// Solves the 3-D disentangling problem over the `region × z_range` box.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d(
    observations: &[AntennaObservation],
    region: Region2,
    z_range: (f64, f64),
    config: &Solver3DConfig,
) -> Result<TagEstimate3D, Solve3DError> {
    let poses: Vec<AntennaPose> = observations.iter().map(|o| o.pose).collect();
    let seeds = Solve3DSeeds::for_scene(region, z_range, config, &poses);
    let mut workspace = Solver3DWorkspace::default();
    solve_3d_seeded(observations, &seeds, config, &mut workspace)
}

/// [`solve_3d`] against precomputed [`Solve3DSeeds`] and a reusable
/// [`Solver3DWorkspace`] — the hot-path entry used by the batch engine.
/// Produces bit-identical results to [`solve_3d`] with the same inputs.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d_seeded(
    observations: &[AntennaObservation],
    seeds: &Solve3DSeeds,
    config: &Solver3DConfig,
    workspace: &mut Solver3DWorkspace,
) -> Result<TagEstimate3D, Solve3DError> {
    solve_3d_seeded_warm(observations, seeds, config, workspace, None)
}

/// [`solve_3d_seeded`] with an optional cross-round [`WarmStart3D`] prior,
/// refined first and validated against the coarse-scan floor exactly as in
/// [`solve_2d_seeded_warm`](crate::solver::solve_2d_seeded_warm) — a
/// teleported tag fails the gate and falls back to the full scan.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d_seeded_warm(
    observations: &[AntennaObservation],
    seeds: &Solve3DSeeds,
    config: &Solver3DConfig,
    workspace: &mut Solver3DWorkspace,
    warm: Option<&WarmStart3D>,
) -> Result<TagEstimate3D, Solve3DError> {
    if observations.len() < 4 {
        return Err(Solve3DError::TooFewAntennas { provided: observations.len() });
    }
    let _solve_span = obs::span("solve_3d");
    let _solve_timer = obs::time_histogram(obs::id::SOLVE_LATENCY_US);
    let before = if obs::active() {
        Some((workspace.stats(), workspace.lane_stats(), workspace.step_stats()))
    } else {
        None
    };
    let n_obs = observations.len();
    let geometry = seeds.geometry.as_ref().filter(|g| g.matches(observations));
    let Solver3DWorkspace {
        joint,
        slope,
        position_candidates,
        coarse,
        dipole_ranked,
        dists,
        rssi_base,
        orient_row,
        proj_row,
        proj_db_row,
        refined,
        prune,
        lanes,
    } = workspace;

    // Prefer candidates inside the known deployment volume: distances are
    // mirror-symmetric about the antenna plane and the range direction is
    // near-degenerate, so unconstrained optima can drift metres away (see
    // the 2-D solver for the same rule).
    let admissible_xy = seeds.admissible_xy;
    let (z_lo_adm, z_hi_adm) = seeds.z_bounds;
    let inside = |p: &[f64]| {
        admissible_xy.contains(rfp_geom::Vec2::new(p[0], p[1]))
            && p[2] >= z_lo_adm
            && p[2] <= z_hi_adm
    };
    // RSSI-consistency penalty of a candidate 3-D mode, shared with the
    // 2-D solver (see `solver::rssi_pattern_penalty`).
    let mode_penalty = |pos: Vec3, w: Vec3| {
        rssi_pattern_penalty(
            observations,
            |o| (o.pose.position().distance(pos), projection_magnitude(&o.pose, w)),
            config.rssi_sigma_db,
        )
    };
    let total_seeds = seeds.position_starts.len() as u64;
    let mut seeds_refined: u64 = 0;

    // Coarse ranking of every (x, y, z) seed by its unrefined slope cost —
    // shared by the pruned stage-1 beam and the warm-start floor.
    coarse.clear();
    if warm.is_some() || !config.is_exhaustive() {
        rank_coarse_3d(observations, geometry, seeds, config, coarse, lanes);
    }

    // Warm start: refine the prior first and gate against the coarse-scan
    // floor (best coarse seed stage-1 refined + best dipole-scan cost at
    // it). See `solve_2d_seeded_warm` for the reasoning.
    let warm_attempted = warm.is_some();
    if let Some(w) = warm {
        let _warm_span = obs::span("warm_start");
        let (p, cost) = refine_joint_3d(joint, observations, config, w.params());
        let key = cost
            + mode_penalty(Vec3::new(p[0], p[1], p[2]), dipole_from_angles(p[3], p[4]));
        let (_, best_seed, best_kt) = coarse[0];
        let pos = seeds.position_starts[best_seed];
        let (sp, _) = refine_slope_3d(
            slope,
            observations,
            config,
            [pos.x, pos.y, pos.z, best_kt],
        );
        seeds_refined += 1;
        scan_dipoles_3d(
            observations,
            geometry,
            config,
            seeds.rings,
            (sp[0], sp[1], sp[2], sp[3]),
            dists,
            rssi_base,
            orient_row,
            proj_row,
            proj_db_row,
            dipole_ranked,
        );
        let floor = dipole_ranked.first().map_or(f64::INFINITY, |&(_, _, _, c)| c);
        if inside(&p) && key <= floor * (1.0 + config.warm_gate_rel_tol) + 1e-9 {
            prune.seeds_total += total_seeds;
            prune.seeds_refined += seeds_refined;
            prune.warm_start_hits += 1;
            flush_obs_3d(joint, slope, *lanes, before, total_seeds, seeds_refined, true, false);
            return Ok(build_estimate_3d(observations, &p, cost));
        }
    }

    // Stage 1: slope-only position solve over (x, y, z, k_t) — smooth and
    // exactly determined with 4 antennas, over-determined with more.
    // Exhaustive mode refines every grid seed (the pre-pruning behaviour,
    // bit-for-bit); the default coarse-to-fine mode refines only the
    // top-K coarse-ranked seeds with a cost-plateau early exit.
    position_candidates.clear();
    let stage1_span = obs::span("stage1_slope");
    if config.is_exhaustive() {
        for (s, &pos) in seeds.position_starts.iter().enumerate() {
            let kt0 = match geometry {
                Some(g) => {
                    let base = s * n_obs;
                    observations
                        .iter()
                        .enumerate()
                        .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                        .sum::<f64>()
                        / n_obs as f64
                }
                None => {
                    observations
                        .iter()
                        .map(|o| {
                            o.slope
                                - propagation::slope_from_distance(
                                    o.pose.position().distance(pos),
                                )
                        })
                        .sum::<f64>()
                        / n_obs as f64
                }
            };
            let (p, cost) =
                refine_slope_3d(slope, observations, config, [pos.x, pos.y, pos.z, kt0]);
            position_candidates.push((p, cost, s));
        }
        // Seeds were pushed in grid order, so breaking cost ties on the
        // seed index reproduces the frozen stable sort's order while
        // keeping the unstable sort allocation-free.
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    } else {
        let beam = config.refine_top_k.unwrap_or(usize::MAX).max(1);
        let mut best_refined = f64::INFINITY;
        for (rank, &(coarse_cost, s, kt0)) in coarse.iter().enumerate() {
            if rank >= beam {
                break;
            }
            if config.early_exit_rel_tol > 0.0
                && rank >= 2
                && coarse_cost > best_refined * (1.0 + config.early_exit_rel_tol)
            {
                break;
            }
            let pos = seeds.position_starts[s];
            let (p, cost) =
                refine_slope_3d(slope, observations, config, [pos.x, pos.y, pos.z, kt0]);
            best_refined = best_refined.min(cost);
            position_candidates.push((p, cost, s));
        }
        position_candidates.sort_unstable_by(|a, b| {
            a.1.partial_cmp(&b.1).expect("finite costs").then_with(|| a.2.cmp(&b.2))
        });
    }
    seeds_refined += position_candidates.len() as u64;
    #[allow(clippy::drop_non_drop)] // ends the span early; inert unit guard without `obs`
    drop(stage1_span);
    // With exactly 4 antennas the slope system is exactly determined, so
    // several zero-cost position candidates can exist (mirror images,
    // spurious intersections) — only the intercept equations can tell them
    // apart. Keep every distinct in-volume candidate (deduplicated to
    // 10 cm, by index — no cloning) and let the joint stage pick.
    let mut stage1 = [0usize; 6];
    let mut stage1_len = 0usize;
    for (i, (p, _, _)) in position_candidates.iter().enumerate() {
        if !inside(p) {
            continue;
        }
        let pos = Vec3::new(p[0], p[1], p[2]);
        let duplicate = stage1[..stage1_len].iter().any(|&j| {
            let q = &position_candidates[j].0;
            Vec3::new(q[0], q[1], q[2]).distance(pos) < 0.10
        });
        if !duplicate {
            stage1[stage1_len] = i;
            stage1_len += 1;
            if stage1_len == stage1.len() {
                break;
            }
        }
    }
    if stage1_len == 0 {
        stage1_len = 1;
    }

    // Stage 2: dipole scan over the half-sphere with closed-form b_t, then
    // stage 3: joint 7-parameter refinement from the best seeds. As in the
    // 2-D solver, candidates are ranked by phase cost *plus* the RSSI mode
    // penalty so spurious twin-dipole modes neither crowd truth out of the
    // refinement short-list nor win the final selection.
    refined.clear();
    let mut best_inside: Option<(usize, f64)> = None;
    let mut best_any: Option<(usize, f64)> = None;
    for &ci in &stage1[..stage1_len] {
        let (cx, cy, cz, ckt) = {
            let p = &position_candidates[ci].0;
            (p[0], p[1], p[2], p[3])
        };
        scan_dipoles_3d(
            observations,
            geometry,
            config,
            seeds.rings,
            (cx, cy, cz, ckt),
            dists,
            rssi_base,
            orient_row,
            proj_row,
            proj_db_row,
            dipole_ranked,
        );
        let _refine_span = obs::span("joint_refine");
        for (rank, &(theta, phi, bt0, scan_cost)) in
            dipole_ranked.iter().take(3).enumerate()
        {
            // Plateau exit across the joint short-list — but always refine
            // at least two dipole modes per candidate so the twin-mode
            // disambiguation never degenerates to a single basin.
            if config.early_exit_rel_tol > 0.0 && rank >= 2 {
                if let Some((_, k)) = best_any {
                    if scan_cost > k * (1.0 + config.early_exit_rel_tol) {
                        break;
                    }
                }
            }
            let p0 = [cx, cy, cz, theta, phi, ckt, bt0];
            let (p, cost) = refine_joint_3d(joint, observations, config, p0);
            let key = cost
                + mode_penalty(
                    Vec3::new(p[0], p[1], p[2]),
                    dipole_from_angles(p[3], p[4]),
                );
            let idx = refined.len();
            if inside(&p) && best_inside.is_none_or(|(_, k)| key < k) {
                best_inside = Some((idx, key));
            }
            if best_any.is_none_or(|(_, k)| key < k) {
                best_any = Some((idx, key));
            }
            refined.push((p, cost));
        }
    }

    let (best_idx, _) = best_inside.or(best_any).expect("at least one start");
    let (p, cost) = refined.swap_remove(best_idx);
    prune.seeds_total += total_seeds;
    prune.seeds_refined += seeds_refined;
    if warm_attempted {
        prune.warm_start_misses += 1;
    }
    flush_obs_3d(joint, slope, *lanes, before, total_seeds, seeds_refined, false, warm_attempted);
    Ok(build_estimate_3d(observations, &p, cost))
}

/// Coarse ranking of every `(x, y, z)` seed by its unrefined slope cost —
/// the 3-D analogue of the 2-D solver's coarse rank, with the same 4-wide
/// lane layout: with geometry tables and [`LaneMode::Wide4`], 4 seeds are
/// scored per pass over the slope table with the per-seed accumulation
/// order of [`coarse_seed_cost_3d`] preserved exactly (bit-identical).
/// Ties break towards grid order via the explicit (cost, index) key, which
/// makes the allocation-free unstable sort deterministic and equal to the
/// frozen stable sort.
fn rank_coarse_3d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry3D>,
    seeds: &Solve3DSeeds,
    config: &Solver3DConfig,
    coarse: &mut Vec<(f64, usize, f64)>,
    lanes: &mut LaneStats,
) {
    let _rank_span = obs::span("seed_rank");
    coarse.clear();
    match (geometry, config.lane_mode) {
        (Some(g), LaneMode::Wide4 | LaneMode::Padded4) => {
            let n = observations.len();
            let total = seeds.position_starts.len();
            let mut s = 0usize;
            while s + 4 <= total {
                let bases = [s * n, (s + 1) * n, (s + 2) * n, (s + 3) * n];
                let mut sum = [0.0f64; 4];
                for (i, o) in observations.iter().enumerate() {
                    for l in 0..4 {
                        sum[l] += o.slope - g.seed_slopes[bases[l] + i];
                    }
                }
                let kt0 = sum.map(|v| v / n as f64);
                let mut cost = [0.0f64; 4];
                for (i, o) in observations.iter().enumerate() {
                    for l in 0..4 {
                        let rs =
                            (o.slope - g.seed_slopes[bases[l] + i] - kt0[l]) / config.slope_sigma;
                        cost[l] += rs * rs;
                    }
                }
                for l in 0..4 {
                    coarse.push((cost[l], s + l, kt0[l]));
                }
                lanes.seed_blocks += 1;
                s += 4;
            }
            for (idx, &seed_pos) in seeds.position_starts.iter().enumerate().skip(s) {
                let (kt0, cost) =
                    coarse_seed_cost_3d(observations, geometry, idx, seed_pos, config);
                coarse.push((cost, idx, kt0));
                lanes.scalar_rows += 1;
            }
        }
        _ => {
            for (s, &seed_pos) in seeds.position_starts.iter().enumerate() {
                let (kt0, cost) =
                    coarse_seed_cost_3d(observations, geometry, s, seed_pos, config);
                coarse.push((cost, s, kt0));
            }
            lanes.scalar_rows += seeds.position_starts.len() as u64;
        }
    }
    coarse.sort_unstable_by(|a, b| {
        a.0.partial_cmp(&b.0).expect("finite costs").then_with(|| a.1.cmp(&b.1))
    });
}

/// The cheap stage-1 score of one 3-D grid seed: closed-form `k_t` and the
/// unrefined slope cost, from the geometry table when one applies — the
/// exact expressions of the refinement path.
fn coarse_seed_cost_3d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry3D>,
    s: usize,
    pos: Vec3,
    config: &Solver3DConfig,
) -> (f64, f64) {
    let n_obs = observations.len();
    let mut cost = 0.0;
    let kt0 = match geometry {
        Some(g) => {
            let base = s * n_obs;
            let kt0 = observations
                .iter()
                .enumerate()
                .map(|(i, o)| o.slope - g.seed_slopes[base + i])
                .sum::<f64>()
                / n_obs as f64;
            for (i, o) in observations.iter().enumerate() {
                let rs = (o.slope - g.seed_slopes[base + i] - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
        None => {
            let kt0 = observations
                .iter()
                .map(|o| {
                    o.slope
                        - propagation::slope_from_distance(o.pose.position().distance(pos))
                })
                .sum::<f64>()
                / n_obs as f64;
            for o in observations {
                let d = o.pose.position().distance(pos);
                let rs =
                    (o.slope - propagation::slope_from_distance(d) - kt0) / config.slope_sigma;
                cost += rs * rs;
            }
            kt0
        }
    };
    (kt0, cost)
}

/// Stage 2 at one position candidate `(x, y, z, k_t)`: ranks every
/// half-sphere scan direction by the full cost and leaves `dipole_ranked`
/// sorted best-first. Everything direction-independent — the per-antenna
/// distances, the slope half of the cost and the `rssiᵢ + 40·log10(dᵢ)`
/// half of the RSSI penalty — is hoisted out of the scan.
#[allow(clippy::too_many_arguments)]
fn scan_dipoles_3d(
    observations: &[AntennaObservation],
    geometry: Option<&SeedGeometry3D>,
    config: &Solver3DConfig,
    rings: usize,
    candidate: (f64, f64, f64, f64),
    dists: &mut Vec<f64>,
    rssi_base: &mut Vec<f64>,
    orient_row: &mut Vec<f64>,
    proj_row: &mut Vec<f64>,
    proj_db_row: &mut Vec<f64>,
    dipole_ranked: &mut Vec<(f64, f64, f64, f64)>,
) {
    let n_obs = observations.len();
    let (cx, cy, cz, ckt) = candidate;
    let cand_pos = Vec3::new(cx, cy, cz);
    dists.clear();
    let mut slope_cost = 0.0;
    for o in observations {
        let d = o.pose.position().distance(cand_pos);
        let rs = (o.slope - propagation::slope_from_distance(d) - ckt) / config.slope_sigma;
        slope_cost += rs * rs;
        dists.push(d);
    }
    // The direction-independent half of the RSSI penalty. Entries for
    // unreadable distances may be NaN/−∞, but the penalty's guards return
    // before reading them — exactly as the unhoisted kernel returned
    // before computing the term at all.
    let rssi_active = config.rssi_sigma_db.is_finite() && config.rssi_sigma_db > 0.0;
    rssi_base.clear();
    if rssi_active {
        for (o, &d) in observations.iter().zip(dists.iter()) {
            rssi_base.push(o.mean_rssi_dbm + 40.0 * d.log10());
        }
    }
    dipole_ranked.clear();
    let _dipole_span = obs::span("dipole_scan");
    for ti in 0..rings {
        // Polar rings from near-pole to equator.
        let theta = std::f64::consts::FRAC_PI_2 * (ti as f64 + 0.5) / rings as f64;
        for pi in 0..(2 * rings) {
            let phi = std::f64::consts::TAU * pi as f64 / (2 * rings) as f64;
            let dir = ti * 2 * rings + pi;
            let (orow, prow, pdbrow): (&[f64], &[f64], &[f64]) = match geometry {
                Some(g) => (
                    &g.orient[dir * n_obs..(dir + 1) * n_obs],
                    &g.proj[dir * n_obs..(dir + 1) * n_obs],
                    &g.proj_db[dir * n_obs..(dir + 1) * n_obs],
                ),
                None => {
                    let w0 = dipole_from_angles(theta, phi);
                    orient_row.clear();
                    proj_row.clear();
                    proj_db_row.clear();
                    for o in observations {
                        orient_row.push(orientation_phase(&o.pose, w0));
                        let p = projection_magnitude(&o.pose, w0);
                        proj_row.push(p);
                        proj_db_row.push(20.0 * p.log10());
                    }
                    (orient_row.as_slice(), proj_row.as_slice(), proj_db_row.as_slice())
                }
            };
            let bt0 = angle::circular_mean(
                observations.iter().zip(orow).map(|(o, &th)| o.intercept - th),
            )
            .unwrap_or(0.0);
            let mut cost = slope_cost;
            for (o, &th) in observations.iter().zip(orow) {
                let rb = angle::wrap_pi(o.intercept - th - bt0) / config.intercept_sigma;
                cost += rb * rb;
            }
            if rssi_active {
                cost += rssi_penalty_hoisted(
                    observations,
                    rssi_base,
                    dists,
                    prow,
                    pdbrow,
                    config.rssi_sigma_db,
                );
            }
            dipole_ranked.push((theta, phi, bt0, cost));
        }
    }
    // Directions were pushed in (θ ring, φ) lexicographic ascending order,
    // so breaking cost ties on (θ, φ) reproduces the frozen stable sort's
    // push order while keeping the unstable sort allocation-free.
    dipole_ranked.sort_unstable_by(|a, b| {
        a.3.partial_cmp(&b.3)
            .expect("finite costs")
            .then_with(|| a.0.partial_cmp(&b.0).expect("finite angles"))
            .then_with(|| a.1.partial_cmp(&b.1).expect("finite angles"))
    });
}

/// Final-estimate assembly shared by the warm-start fast path and the full
/// scan: dipole canonicalization (`z ≥ 0`) plus wrapping of `b_t`.
fn build_estimate_3d(
    observations: &[AntennaObservation],
    p: &[f64],
    cost: f64,
) -> TagEstimate3D {
    let mut dipole = dipole_from_angles(p[3], p[4]);
    if dipole.z < 0.0 {
        dipole = -dipole;
    }
    let n_res = 2 * observations.len();
    TagEstimate3D {
        position: Vec3::new(p[0], p[1], p[2]),
        dipole,
        kt: p[5],
        bt: angle::wrap_tau(p[6]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
    }
}

/// Per-solve counter flush of the 3-D solve (active only when the obs
/// layer is recording; `before` is `None` otherwise).
#[allow(clippy::too_many_arguments)]
fn flush_obs_3d(
    joint: &LmCore<7>,
    slope: &LmCore<4>,
    rank_lanes: LaneStats,
    before: Option<(SolveStats, LaneStats, StepStats)>,
    seeds_total: u64,
    seeds_refined: u64,
    warm_hit: bool,
    warm_miss: bool,
) {
    let Some((stats_before, lanes_before, steps_before)) = before else { return };
    let j = joint.stats();
    let s = slope.stats();
    let work = SolveStats {
        residual_evals: j.residual_evals + s.residual_evals,
        jacobian_evals: j.jacobian_evals + s.jacobian_evals,
        iterations: j.iterations + s.iterations,
    }
    .since(stats_before);
    let lane_work = rank_lanes
        .merged(joint.lane_stats())
        .merged(slope.lane_stats())
        .since(lanes_before);
    let step_work = joint.step_stats().merged(slope.step_stats()).since(steps_before);
    obs::counter_add(obs::id::SOLVER3D_SOLVES, 1);
    obs::counter_add(obs::id::SOLVER3D_ITERATIONS, work.iterations);
    obs::counter_add(obs::id::SOLVER3D_RESIDUAL_EVALS, work.residual_evals);
    obs::counter_add(obs::id::SOLVER3D_JACOBIAN_EVALS, work.jacobian_evals);
    obs::counter_add(obs::id::SOLVER_SEEDS_TOTAL, seeds_total);
    obs::counter_add(obs::id::SOLVER_SEEDS_REFINED, seeds_refined);
    obs::counter_add(
        obs::id::SOLVER_SEEDS_PRUNED,
        seeds_total.saturating_sub(seeds_refined),
    );
    obs::counter_add(obs::id::SOLVER_LANE_SEED_BLOCKS, lane_work.seed_blocks);
    obs::counter_add(obs::id::SOLVER_LANE_ROW_BLOCKS, lane_work.row_blocks);
    obs::counter_add(obs::id::SOLVER_LANE_SCALAR_ROWS, lane_work.scalar_rows);
    obs::counter_add(obs::id::SOLVER_LAMBDA_RETRIES, step_work.lambda_retries);
    obs::counter_add(obs::id::SOLVER_CHOL_FAILURES, step_work.chol_failures);
    obs::counter_add(obs::id::SOLVER_STEP_CACHED_SOLVES, step_work.cached_solves);
    if warm_hit {
        obs::counter_add(obs::id::SOLVER_WARM_HITS, 1);
    }
    if warm_miss {
        obs::counter_add(obs::id::SOLVER_WARM_MISSES, 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn observations_3d(
        scene: &Scene,
        position: Vec3,
        dipole: Vec3,
        seed: u64,
    ) -> Vec<AntennaObservation> {
        let tag = SimTag::nominal(1)
            .with_motion(Motion::Static { position, dipole: dipole.normalized() });
        let survey = scene.survey(&tag, seed);
        scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect()
    }

    #[test]
    fn recovers_3d_position_clean() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.3, 1.6, 0.7);
        let dipole = Vec3::new(1.0, 0.2, 0.4).normalized();
        let obs = observations_3d(&scene, truth, dipole, 1);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.0), &Solver3DConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 5.0, "3-D position error {err_cm} cm");
        let axis_err = est.dipole_axis_error(dipole).to_degrees();
        assert!(axis_err < 8.0, "dipole axis error {axis_err}°");
    }

    #[test]
    fn recovers_3d_with_noise() {
        // Four antennas are identifiable but have zero slope redundancy;
        // the noisy evaluation uses the six-antenna deployment.
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.8, 1.2, 0.4);
        let dipole = Vec3::new(0.2, 0.5, 1.0).normalized();
        let obs = observations_3d(&scene, truth, dipole, 2);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.5), &Solver3DConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 40.0, "noisy 3-D position error {err_cm} cm");
    }

    #[test]
    fn dipole_canonicalized_upward() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.5, 1.5, 0.5);
        let dipole = Vec3::new(0.3, 0.1, -0.9).normalized(); // points down
        let obs = observations_3d(&scene, truth, dipole, 3);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.0), &Solver3DConfig::default()).unwrap();
        assert!(est.dipole.z >= 0.0);
        assert!(est.dipole_axis_error(dipole).to_degrees() < 10.0);
    }

    #[test]
    fn three_antennas_insufficient() {
        let scene = Scene::four_antenna_3d();
        let obs = observations_3d(&scene, Vec3::new(0.5, 1.5, 0.5), Vec3::X, 4);
        assert_eq!(
            solve_3d(&obs[..3], scene.region(), (0.0, 1.0), &Solver3DConfig::default())
                .unwrap_err(),
            Solve3DError::TooFewAntennas { provided: 3 }
        );
    }

    #[test]
    fn region2_used_for_xy_box() {
        let r = Region2::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        assert!(r.contains(Vec2::new(0.5, 0.5)));
    }

    #[test]
    fn analytic_jacobian_3d_matches_central_differences() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.6, 1.4, 0.5);
        let dipole = Vec3::new(0.7, 0.3, 0.6).normalized();
        let obs = observations_3d(&scene, truth, dipole, 9);
        let config = Solver3DConfig::default();
        let p = [0.61, 1.39, 0.52, 0.65, 0.42, -1.1e-8, 0.5];
        let mut r = Vec::new();
        let mut jac = Vec::new();
        residuals_and_jacobian_3d(&obs, &p, &config, &mut r, Some(&mut jac));
        let n = 7;
        let m = r.len();
        let mut r_plus = Vec::new();
        let mut r_minus = Vec::new();
        let mut work = p.to_vec();
        for j in 0..n {
            let h = JOINT_STEPS_3D[j];
            work[j] = p[j] + h;
            residuals_3d(&obs, &work, &config, &mut r_plus);
            work[j] = p[j] - h;
            residuals_3d(&obs, &work, &config, &mut r_minus);
            work[j] = p[j];
            for i in 0..m {
                let num = (r_plus[i] - r_minus[i]) / (2.0 * h);
                let ana = jac[i * n + j];
                let tol = 1e-6 * (1.0 + ana.abs().max(num.abs()));
                assert!(
                    (ana - num).abs() <= tol,
                    "entry ({i},{j}): analytic {ana} vs numeric {num}"
                );
            }
        }
    }

    #[test]
    fn numeric_fallback_3d_converges_to_analytic_result() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.4, 1.7, 0.6);
        let dipole = Vec3::new(0.5, 0.6, 0.8).normalized();
        let obs = observations_3d(&scene, truth, dipole, 5);
        let analytic =
            solve_3d(&obs, scene.region(), (0.0, 1.0), &Solver3DConfig::default()).unwrap();
        let numeric_cfg =
            Solver3DConfig { jacobian: JacobianMode::Numeric, ..Solver3DConfig::default() };
        let numeric = solve_3d(&obs, scene.region(), (0.0, 1.0), &numeric_cfg).unwrap();
        assert!(analytic.position.distance(numeric.position) < 1e-6);
        assert!(analytic.dipole_axis_error(numeric.dipole) < 1e-6);
        assert!((analytic.kt - numeric.kt).abs() < 1e-13);
        assert!(angle::distance(analytic.bt, numeric.bt) < 1e-6);
    }

    #[test]
    fn seed_geometry_3d_is_bit_identical_to_direct_evaluation() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let poses = scene.antenna_poses();
        let obs = observations_3d(
            &scene,
            Vec3::new(0.7, 1.3, 0.6),
            Vec3::new(0.9, 0.1, 0.5).normalized(),
            7,
        );
        let config = Solver3DConfig::default();
        let plain = Solve3DSeeds::new(scene.region(), (0.0, 1.0), &config);
        let with_geo = Solve3DSeeds::for_scene(scene.region(), (0.0, 1.0), &config, &poses);
        let mut ws_a = Solver3DWorkspace::default();
        let mut ws_b = Solver3DWorkspace::default();
        let a = solve_3d_seeded(&obs, &plain, &config, &mut ws_a).unwrap();
        let b = solve_3d_seeded(&obs, &with_geo, &config, &mut ws_b).unwrap();
        assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
        assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
        assert_eq!(a.position.z.to_bits(), b.position.z.to_bits());
        assert_eq!(a.dipole.x.to_bits(), b.dipole.x.to_bits());
        assert_eq!(a.kt.to_bits(), b.kt.to_bits());
        assert_eq!(a.bt.to_bits(), b.bt.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    }

    #[test]
    fn lane_modes_are_bit_identical_3d() {
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.7, 1.1, 0.5);
        let dipole = Vec3::new(0.4, 0.6, 0.9).normalized();
        let obs = observations_3d(&scene, truth, dipole, 21);
        let wide = Solver3DConfig::default();
        let scalar = Solver3DConfig { lane_mode: LaneMode::Scalar, ..wide };
        let seeds_w =
            Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), &wide, &scene.antenna_poses());
        let seeds_s =
            Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), &scalar, &scene.antenna_poses());
        let mut ws_w = Solver3DWorkspace::default();
        let mut ws_s = Solver3DWorkspace::default();
        let a = solve_3d_seeded(&obs, &seeds_w, &wide, &mut ws_w).unwrap();
        let b = solve_3d_seeded(&obs, &seeds_s, &scalar, &mut ws_s).unwrap();
        assert_eq!(a.position.x.to_bits(), b.position.x.to_bits());
        assert_eq!(a.position.y.to_bits(), b.position.y.to_bits());
        assert_eq!(a.position.z.to_bits(), b.position.z.to_bits());
        assert_eq!(a.dipole.x.to_bits(), b.dipole.x.to_bits());
        assert_eq!(a.kt.to_bits(), b.kt.to_bits());
        assert_eq!(a.bt.to_bits(), b.bt.to_bits());
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        // The wide path actually ran in lanes and the scalar one did not.
        assert!(ws_w.lane_stats().seed_blocks > 0 || ws_w.lane_stats().row_blocks > 0);
        assert_eq!(ws_s.lane_stats().seed_blocks, 0);
        assert_eq!(ws_s.lane_stats().row_blocks, 0);
    }

    #[test]
    fn exhaustive_3d_refines_every_seed_and_pruned_matches() {
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.8, 1.2, 0.4);
        let dipole = Vec3::new(0.2, 0.5, 1.0).normalized();
        let obs = observations_3d(&scene, truth, dipole, 2);
        let exhaustive_cfg = Solver3DConfig::exhaustive();
        let mut ws = Solver3DWorkspace::default();
        let seeds =
            Solve3DSeeds::for_scene(scene.region(), (0.0, 1.5), &exhaustive_cfg, &scene.antenna_poses());
        let exhaustive = solve_3d_seeded(&obs, &seeds, &exhaustive_cfg, &mut ws).unwrap();
        let ps = ws.prune_stats();
        assert_eq!(ps.seeds_total, 75);
        assert_eq!(ps.seeds_refined, 75);

        let pruned_cfg = Solver3DConfig::default();
        let mut ws2 = Solver3DWorkspace::default();
        let pruned = solve_3d_seeded(&obs, &seeds, &pruned_cfg, &mut ws2).unwrap();
        let ps2 = ws2.prune_stats();
        assert_eq!(ps2.seeds_total, 75);
        assert!(ps2.seeds_refined <= 16, "refined {}", ps2.seeds_refined);
        assert!(pruned.position.distance(exhaustive.position) < 1e-6);
        assert!((pruned.cost - exhaustive.cost).abs() <= 1e-6 * (1.0 + exhaustive.cost));
    }

    #[test]
    fn warm_start_3d_hit_skips_the_scan() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.5, 1.4, 0.6);
        let dipole = Vec3::new(0.6, 0.3, 0.7).normalized();
        let obs = observations_3d(&scene, truth, dipole, 13);
        let config = Solver3DConfig::default();
        let seeds =
            Solve3DSeeds::for_scene(scene.region(), (0.0, 1.0), &config, &scene.antenna_poses());
        let mut ws = Solver3DWorkspace::default();
        let cold = solve_3d_seeded(&obs, &seeds, &config, &mut ws).unwrap();
        let before = ws.prune_stats();
        let warm = WarmStart3D::from_estimate(&cold);
        let warm_est =
            solve_3d_seeded_warm(&obs, &seeds, &config, &mut ws, Some(&warm)).unwrap();
        let ps = ws.prune_stats().since(before);
        assert_eq!(ps.warm_start_hits, 1, "gate should accept the prior");
        assert_eq!(ps.seeds_refined, 1);
        assert!(warm_est.position.distance(cold.position) < 1e-6);
        assert!((warm_est.cost - cold.cost).abs() <= 1e-6 * (1.0 + cold.cost));
    }

    #[test]
    fn warm_start_3d_params_round_trip_dipole() {
        // θ/φ parameterization must reproduce the dipole axis.
        let w = Vec3::new(0.3, -0.4, 0.85).normalized();
        let warm = WarmStart3D {
            position: Vec3::new(0.5, 1.0, 0.5),
            dipole: w,
            kt: 0.0,
            bt: 0.0,
        };
        let p = warm.params();
        let back = dipole_from_angles(p[3], p[4]);
        assert!(back.dot(w).abs() > 1.0 - 1e-12);
    }
}
