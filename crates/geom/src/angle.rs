//! Angle wrapping, angular differences and circular statistics.
//!
//! Phase values reported by an RFID reader live on the circle: the reader
//! folds everything into `[0, 2π)` and COTS readers additionally inject
//! spurious π jumps. Intercepts recovered by the disentangler are likewise
//! only observable modulo 2π, and dipole orientations modulo π. Every
//! comparison of such quantities must therefore be *angular*, not linear;
//! this module centralizes those operations.

use std::f64::consts::{PI, TAU};

/// Wraps an angle into `[0, 2π)`.
///
/// ```
/// use rfp_geom::angle::wrap_tau;
/// use std::f64::consts::{PI, TAU};
/// assert!((wrap_tau(-PI) - PI).abs() < 1e-12);
/// assert!(wrap_tau(TAU + 0.25) - 0.25 < 1e-12);
/// ```
#[inline]
pub fn wrap_tau(theta: f64) -> f64 {
    let w = theta.rem_euclid(TAU);
    // rem_euclid can return TAU itself when theta is a tiny negative number.
    if w >= TAU {
        w - TAU
    } else {
        w
    }
}

/// Wraps an angle into `(-π, π]`.
///
/// ```
/// use rfp_geom::angle::wrap_pi;
/// use std::f64::consts::PI;
/// assert!((wrap_pi(3.0 * PI) - PI).abs() < 1e-12);
/// assert!((wrap_pi(-0.1) + 0.1).abs() < 1e-15);
/// ```
#[inline]
pub fn wrap_pi(theta: f64) -> f64 {
    let w = wrap_tau(theta);
    if w > PI {
        w - TAU
    } else {
        w
    }
}

/// Signed angular difference `a - b`, wrapped into `(-π, π]`.
///
/// This is the correct residual for quantities observable modulo 2π (e.g.
/// the line intercepts of the multi-frequency phase model).
#[inline]
pub fn difference(a: f64, b: f64) -> f64 {
    wrap_pi(a - b)
}

/// Absolute angular distance between `a` and `b` on the circle, in `[0, π]`.
#[inline]
pub fn distance(a: f64, b: f64) -> f64 {
    difference(a, b).abs()
}

/// Signed difference between two *dipole* orientations, wrapped into
/// `(-π/2, π/2]`.
///
/// A linear dipole is symmetric under a 180° rotation, so orientations `α`
/// and `α + π` are physically identical. The paper evaluates orientations in
/// 0°–150° for exactly this reason.
///
/// ```
/// use rfp_geom::angle::dipole_difference;
/// let d = dipole_difference(0.1, 0.1 + std::f64::consts::PI);
/// assert!(d.abs() < 1e-12);
/// ```
#[inline]
pub fn dipole_difference(a: f64, b: f64) -> f64 {
    let mut d = (a - b).rem_euclid(PI);
    if d > PI / 2.0 {
        d -= PI;
    }
    d
}

/// Absolute dipole-orientation distance, in `[0, π/2]`.
#[inline]
pub fn dipole_distance(a: f64, b: f64) -> f64 {
    dipole_difference(a, b).abs()
}

/// Circular mean of a set of angles.
///
/// Returns `None` for an empty input or when the resultant vector is
/// numerically zero (e.g. two opposite angles), in which case the mean is
/// undefined.
///
/// ```
/// use rfp_geom::angle::circular_mean;
/// let m = circular_mean([-0.1f64, 0.1]).unwrap();
/// assert!(m.abs() < 1e-12);
/// // Angles straddling the wrap point average correctly:
/// let m = circular_mean([6.2f64, 0.08]).unwrap();
/// assert!(m.abs() < 0.1);
/// ```
pub fn circular_mean<I>(angles: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let (mut s, mut c, mut n) = (0.0f64, 0.0f64, 0usize);
    for a in angles {
        s += a.sin();
        c += a.cos();
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let r = (s * s + c * c).sqrt() / n as f64;
    if r < 1e-12 {
        None
    } else {
        Some(s.atan2(c))
    }
}

/// Circular standard deviation, `sqrt(-2 ln R)` where `R` is the resultant
/// length. Returns `None` for an empty input.
///
/// Small for tightly clustered angles, grows without bound as the angles
/// spread around the circle.
pub fn circular_std<I>(angles: I) -> Option<f64>
where
    I: IntoIterator<Item = f64>,
{
    let (mut s, mut c, mut n) = (0.0f64, 0.0f64, 0usize);
    for a in angles {
        s += a.sin();
        c += a.cos();
        n += 1;
    }
    if n == 0 {
        return None;
    }
    let r = ((s * s + c * c).sqrt() / n as f64).min(1.0);
    Some((-2.0 * r.max(1e-300).ln()).sqrt())
}

/// Unwraps a sequence of wrapped phase samples in place, making consecutive
/// differences lie in `(-π, π]`.
///
/// This is the classic 1-D phase unwrapping used after sorting samples by
/// frequency: channel spacing is 500 kHz so the true phase increment between
/// adjacent channels is far below π for any realistic antenna–tag distance.
///
/// ```
/// use rfp_geom::angle::unwrap_in_place;
/// let mut v = vec![6.1, 0.2, 0.6]; // wrapped around 2π
/// unwrap_in_place(&mut v);
/// assert!(v.windows(2).all(|w| (w[1] - w[0]).abs() <= std::f64::consts::PI));
/// assert!((v[1] - (6.1 + 0.2 + 0.4)).abs() < 1e-9 || v[1] > 6.1); // continued past 2π
/// ```
pub fn unwrap_in_place(phases: &mut [f64]) {
    let mut offset = 0.0f64;
    for i in 1..phases.len() {
        let raw = phases[i] + offset;
        let prev = phases[i - 1];
        let mut corrected = raw;
        let d = corrected - prev;
        let jumps = (d / TAU).round();
        corrected -= jumps * TAU;
        // After removing whole turns the difference is within (-π, π].
        let d = corrected - prev;
        if d > PI {
            corrected -= TAU;
        } else if d <= -PI {
            corrected += TAU;
        }
        offset = corrected - phases[i];
        phases[i] = corrected;
    }
}

/// Returns an unwrapped copy of `phases` (see [`unwrap_in_place`]).
pub fn unwrapped(phases: &[f64]) -> Vec<f64> {
    let mut v = phases.to_vec();
    unwrap_in_place(&mut v);
    v
}

/// Generalized unwrapping with an arbitrary `period`: adjusts each sample by
/// multiples of `period` so consecutive differences lie in
/// `(-period/2, period/2]`.
///
/// Used with `period = π` to build a continuous phase curve out of values
/// that are only known modulo π (the COTS-reader π-jump ambiguity).
///
/// # Panics
///
/// Panics if `period` is not positive.
pub fn unwrap_in_place_period(phases: &mut [f64], period: f64) {
    assert!(period > 0.0, "period must be positive");
    let half = period / 2.0;
    for i in 1..phases.len() {
        let prev = phases[i - 1];
        let mut v = phases[i];
        let jumps = ((v - prev) / period).round();
        v -= jumps * period;
        let d = v - prev;
        if d > half {
            v -= period;
        } else if d <= -half {
            v += period;
        }
        phases[i] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_tau_range() {
        for theta in [-10.0, -TAU, -PI, -0.1, 0.0, 0.1, PI, TAU, 10.0, 1e6] {
            let w = wrap_tau(theta);
            assert!((0.0..TAU).contains(&w), "theta={theta} w={w}");
            // Same point on the circle.
            assert!(((w - theta) / TAU - ((w - theta) / TAU).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn wrap_pi_range() {
        for theta in [-10.0, -TAU, -PI, -0.1, 0.0, 0.1, PI, TAU, 10.0] {
            let w = wrap_pi(theta);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12, "theta={theta} w={w}");
        }
        assert!((wrap_pi(PI) - PI).abs() < 1e-12, "π maps to +π, not -π");
    }

    #[test]
    fn difference_is_signed_and_wrapped() {
        assert!((difference(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
        assert!((difference(TAU - 0.1, 0.1) + 0.2).abs() < 1e-12);
        assert_eq!(difference(1.0, 1.0), 0.0);
    }

    #[test]
    fn distance_symmetric() {
        let (a, b) = (0.3, 5.9);
        assert!((distance(a, b) - distance(b, a)).abs() < 1e-15);
        assert!(distance(a, b) <= PI);
    }

    #[test]
    fn dipole_difference_mod_pi() {
        assert!(dipole_difference(0.2, 0.2 + PI).abs() < 1e-12);
        assert!(dipole_difference(0.2, 0.2 - PI).abs() < 1e-12);
        assert!((dipole_difference(0.3, 0.1) - 0.2).abs() < 1e-12);
        // Max distance is π/2.
        assert!((dipole_distance(0.0, PI / 2.0) - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn circular_mean_basic() {
        assert_eq!(circular_mean(std::iter::empty()), None);
        let m = circular_mean([0.1, 0.2, 0.3]).unwrap();
        assert!((m - 0.2).abs() < 1e-12);
        // Opposite angles: undefined.
        assert_eq!(circular_mean([0.0, PI]), None);
    }

    #[test]
    fn circular_mean_wraps() {
        let m = circular_mean([TAU - 0.2, 0.2]).unwrap();
        assert!(m.abs() < 1e-12);
    }

    #[test]
    fn circular_std_behaviour() {
        assert_eq!(circular_std(std::iter::empty()), None);
        let tight = circular_std([1.0, 1.01, 0.99]).unwrap();
        let loose = circular_std([0.0, 1.5, 3.0, 4.5]).unwrap();
        assert!(tight < 0.05);
        assert!(loose > tight);
    }

    #[test]
    fn unwrap_recovers_line() {
        // A steep linear phase, wrapped; unwrapping must recover it up to a
        // constant 2π multiple.
        let true_phase: Vec<f64> = (0..50).map(|i| 0.4 * i as f64 + 1.0).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_tau(p)).collect();
        let un = unwrapped(&wrapped);
        let offset = un[0] - true_phase[0];
        assert!((offset / TAU - (offset / TAU).round()).abs() < 1e-9);
        for (u, t) in un.iter().zip(&true_phase) {
            assert!((u - t - offset).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_handles_negative_slope() {
        let true_phase: Vec<f64> = (0..30).map(|i| -0.3 * i as f64).collect();
        let wrapped: Vec<f64> = true_phase.iter().map(|&p| wrap_tau(p)).collect();
        let un = unwrapped(&wrapped);
        for w in un.windows(2) {
            assert!((w[1] - w[0] + 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn unwrap_empty_and_single() {
        unwrap_in_place(&mut []);
        let mut one = [1.5];
        unwrap_in_place(&mut one);
        assert_eq!(one, [1.5]);
    }
}
