//! Frequency-selective multipath from discrete scatterers with real
//! positions.
//!
//! Reflected copies of the backscatter arrive via reader → tag → scatterer
//! → reader (and the reverse), i.e. with a *geometry-dependent* excess path
//!
//! ```text
//! L(A, p, S) = |A − S| + |S − p| − |A − p|
//! ```
//!
//! that changes as the tag moves — which is why no in-situ calibration can
//! cancel a room's multipath for more than one tag position. Two kinds of
//! scatterers matter for the paper's evaluation:
//!
//! * **Broadband** reflectors (walls, floor, shelving): frequency-flat
//!   reflectivity; their excess phase `2π L f / c` walks smoothly with
//!   frequency and *tilts/bends* the phase-vs-frequency line a little — an
//!   error no outlier rejection can remove. This is why the paper's
//!   "Multipath+" bar stays above "Clean Space" even with suppression.
//! * **Resonant** scatterers (cartons with metallic content, human
//!   bodies): their radar cross-section peaks in a narrow frequency band,
//!   so a handful of channels deviates strongly while the rest stay on the
//!   line — the symptom §V-D describes and its channel selection removes.
//!
//! The deviation applied to a reading is the argument and magnitude of
//!
//! ```text
//! h(f) = 1 + Σ_k ρ_k(f) · exp(−j (2π L_k(A, p) f / c + φ_k))
//! ```
//!
//! relative to the LOS-only signal.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_geom::Vec3;
use rfp_phys::constants::SPEED_OF_LIGHT;

/// One physical scatterer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scatterer {
    /// Scatterer position, metres.
    pub position: Vec3,
    /// Peak amplitude relative to the LOS path (≪ 1 for a dominant LOS).
    pub amplitude_ratio: f64,
    /// Extra reflection phase, radians.
    pub reflection_phase: f64,
    /// Centre of the scatterer's frequency response, Hz; `None` for a
    /// broadband (frequency-flat) reflector.
    pub resonance_hz: Option<f64>,
    /// Gaussian bandwidth (std) of a resonant response, Hz. Ignored for
    /// broadband scatterers.
    pub bandwidth_hz: f64,
}

impl Scatterer {
    /// A frequency-flat reflector (wall, floor, shelf).
    pub fn broadband(position: Vec3, amplitude_ratio: f64, reflection_phase: f64) -> Self {
        Scatterer {
            position,
            amplitude_ratio,
            reflection_phase,
            resonance_hz: None,
            bandwidth_hz: 0.0,
        }
    }

    /// A narrow-band resonant scatterer: amplitude peaks at `resonance_hz`
    /// with Gaussian width `bandwidth_hz`.
    pub fn resonant(
        position: Vec3,
        amplitude_ratio: f64,
        reflection_phase: f64,
        resonance_hz: f64,
        bandwidth_hz: f64,
    ) -> Self {
        Scatterer {
            position,
            amplitude_ratio,
            reflection_phase,
            resonance_hz: Some(resonance_hz),
            bandwidth_hz,
        }
    }

    /// Effective amplitude at frequency `f`.
    pub fn amplitude_at(&self, f: f64) -> f64 {
        match self.resonance_hz {
            None => self.amplitude_ratio,
            Some(fc) => {
                let x = (f - fc) / self.bandwidth_hz.max(1.0);
                self.amplitude_ratio * (-0.5 * x * x).exp()
            }
        }
    }

    /// Excess (round-trip-relative) path length for a tag at `tag` read by
    /// an antenna at `antenna`, metres.
    pub fn excess_path_m(&self, antenna: Vec3, tag: Vec3) -> f64 {
        antenna.distance(self.position) + self.position.distance(tag)
            - antenna.distance(tag)
    }
}

/// The multipath state of a deployment: a set of scatterers shared by all
/// antennas (each antenna sees them from its own vantage point).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultipathEnvironment {
    scatterers: Vec<Scatterer>,
}

impl MultipathEnvironment {
    /// A clean environment (no multipath). The `_n_antennas` argument is
    /// kept for call-site symmetry with [`MultipathEnvironment::cluttered`].
    pub fn clean(_n_antennas: usize) -> Self {
        MultipathEnvironment { scatterers: Vec::new() }
    }

    /// A cluttered environment — "some cartons and people around the tag
    /// and the antennas, but LOS still guaranteed" (paper §VI-C): 2–3 weak
    /// broadband reflectors (ρ 0.001–0.004) plus 2–3 resonant scatterers
    /// (peak ρ 0.10–0.30, bandwidth 0.2–0.4 MHz), scattered around the
    /// working region, drawn deterministically from `seed`. `_n_antennas`
    /// kept for call-site symmetry.
    pub fn cluttered(_n_antennas: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4d50_4154);
        let random_pos = |rng: &mut StdRng| {
            Vec3::new(
                rng.gen_range(-1.5..2.5),
                rng.gen_range(0.2..3.5),
                rng.gen_range(0.0..2.0),
            )
        };
        let mut scatterers = Vec::new();
        for _ in 0..rng.gen_range(2..=3usize) {
            let position = random_pos(&mut rng);
            scatterers.push(Scatterer::broadband(
                position,
                rng.gen_range(0.001..0.004),
                rng.gen_range(0.0..std::f64::consts::TAU),
            ));
        }
        for _ in 0..rng.gen_range(2..=3usize) {
            let position = random_pos(&mut rng);
            scatterers.push(Scatterer::resonant(
                position,
                rng.gen_range(0.10..0.30),
                rng.gen_range(0.0..std::f64::consts::TAU),
                rng.gen_range(902.0e6..928.0e6),
                rng.gen_range(0.2e6..0.4e6),
            ));
        }
        MultipathEnvironment { scatterers }
    }

    /// Explicit scatterer list.
    pub fn from_scatterers(scatterers: Vec<Scatterer>) -> Self {
        MultipathEnvironment { scatterers }
    }

    /// The scatterers.
    pub fn scatterers(&self) -> &[Scatterer] {
        &self.scatterers
    }

    /// Whether any scatterer is present.
    pub fn has_multipath(&self) -> bool {
        !self.scatterers.is_empty()
    }

    /// Complex channel response relative to LOS for a tag at `tag` read by
    /// an antenna at `antenna` on frequency `f` Hz: returns
    /// `(phase_deviation_rad, magnitude_ratio)`.
    ///
    /// `(0.0, 1.0)` when the environment is clean.
    pub fn deviation(&self, antenna: Vec3, tag: Vec3, f: f64) -> (f64, f64) {
        if self.scatterers.is_empty() {
            return (0.0, 1.0);
        }
        let mut re = 1.0f64;
        let mut im = 0.0f64;
        for s in &self.scatterers {
            let l = s.excess_path_m(antenna, tag);
            let phi = std::f64::consts::TAU * l * f / SPEED_OF_LIGHT + s.reflection_phase;
            let a = s.amplitude_at(f);
            re += a * phi.cos();
            im -= a * phi.sin();
        }
        (im.atan2(re), (re * re + im * im).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANT: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };
    const TAG: Vec3 = Vec3 { x: 0.5, y: 1.5, z: 0.0 };

    #[test]
    fn clean_environment_identity() {
        let env = MultipathEnvironment::clean(3);
        assert!(!env.has_multipath());
        let (dev, mag) = env.deviation(ANT, TAG, 915e6);
        assert_eq!(dev, 0.0);
        assert_eq!(mag, 1.0);
    }

    #[test]
    fn cluttered_is_deterministic_and_frequency_selective() {
        let env = MultipathEnvironment::cluttered(3, 7);
        assert_eq!(env, MultipathEnvironment::cluttered(3, 7));
        assert!(env.has_multipath());
        let (d1, _) = env.deviation(ANT, TAG, 902.75e6);
        let (d2, _) = env.deviation(ANT, TAG, 915.0e6);
        let (d3, _) = env.deviation(ANT, TAG, 927.25e6);
        assert!((d1 - d2).abs() > 1e-9 || (d2 - d3).abs() > 1e-9);
    }

    #[test]
    fn deviation_depends_on_tag_position() {
        // The key property: moving the tag changes the reflection geometry,
        // so an in-situ calibration at one position cannot cancel the
        // environment elsewhere.
        let env = MultipathEnvironment::cluttered(3, 9);
        let (d1, _) = env.deviation(ANT, TAG, 915e6);
        let (d2, _) = env.deviation(ANT, Vec3::new(1.2, 2.2, 0.0), 915e6);
        assert!((d1 - d2).abs() > 1e-6, "d1={d1} d2={d2}");
    }

    #[test]
    fn excess_path_geometry() {
        // Scatterer on the direct line adds no excess path.
        let s = Scatterer::broadband(Vec3::new(0.25, 0.75, 0.5), 0.1, 0.0);
        let l = s.excess_path_m(ANT, TAG);
        let direct = ANT.distance(TAG);
        assert!(l >= -1e-12, "triangle inequality: {l}");
        // Far-away scatterer adds a long excess.
        let far = Scatterer::broadband(Vec3::new(-3.0, 5.0, 2.0), 0.1, 0.0);
        assert!(far.excess_path_m(ANT, TAG) > 2.0);
        let _ = direct;
    }

    #[test]
    fn resonant_scatterer_localized_in_frequency() {
        let s = Scatterer::resonant(Vec3::new(1.0, 1.0, 1.0), 0.5, 0.3, 915.0e6, 0.5e6);
        assert!((s.amplitude_at(915.0e6) - 0.5).abs() < 1e-12);
        assert!(s.amplitude_at(920.0e6) < 0.01, "10σ away should be tiny");
        let env = MultipathEnvironment::from_scatterers(vec![s]);
        let (dev_peak, _) = env.deviation(ANT, TAG, 915.0e6);
        let (dev_far, _) = env.deviation(ANT, TAG, 925.0e6);
        assert!(dev_peak.abs() > 10.0 * dev_far.abs().max(1e-9));
    }

    #[test]
    fn opposite_phase_reduces_magnitude() {
        // A scatterer colinear with the path (zero excess) and π reflection
        // phase interferes destructively.
        let s = Scatterer::broadband(
            Vec3::new(0.25, 0.75, 0.5),
            0.4,
            std::f64::consts::PI - std::f64::consts::TAU * 0.000_1, // ≈ π
        );
        let l = s.excess_path_m(ANT, TAG);
        // Compensate the excess phase so the total is ≈ π at 915 MHz.
        let phi = std::f64::consts::TAU * l * 915e6 / rfp_phys::constants::SPEED_OF_LIGHT;
        let s = Scatterer { reflection_phase: std::f64::consts::PI - phi, ..s };
        let env = MultipathEnvironment::from_scatterers(vec![s]);
        let (dev, mag) = env.deviation(ANT, TAG, 915e6);
        assert!(dev.abs() < 1e-9);
        assert!((mag - 0.6).abs() < 1e-9);
    }

    #[test]
    fn deviations_stay_finite() {
        let env = MultipathEnvironment::cluttered(1, 3);
        for i in 0..50 {
            let f = 902.75e6 + i as f64 * 0.5e6;
            let (dev, mag) = env.deviation(ANT, TAG, f);
            assert!(dev.is_finite());
            assert!(mag > 0.0);
        }
    }
}
