//! Dimension-generic Levenberg–Marquardt core (DESIGN.md §6).
//!
//! The 2-D solver fits 5 parameters and the 3-D solver fits 7, but the LM
//! machinery between them — fused residual+Jacobian evaluation, normal
//! equations, Cholesky (analytic) or Gaussian elimination (numeric
//! fallback), the λ damping/retry policy — is byte-for-byte the same
//! algorithm. [`LmCore`] is that algorithm, const-generic over the
//! parameter count `P`, with the problem physics abstracted behind
//! [`ResidualModel`]. Both solvers are thin facades over it, and a new
//! P-parameter sensing head gets the whole refinement stack by
//! implementing one trait method.
//!
//! Compared with the dynamic [`LmWorkspace`](crate::solver::LmWorkspace)
//! cores (kept public, frozen — they are the oracle the facades are tested
//! against), the const-generic core keeps the parameter vector, the `P×P`
//! normal equations, the factorization scratch and the step/trial buffers
//! in fixed-size arrays: no bounds checks in the `P`-indexed kernels, no
//! `clear`/`resize` churn per refinement, and loop trip counts the
//! compiler can fully unroll. Every floating-point operation runs in the
//! same order as the dynamic cores, so results are **bit-identical**.
//!
//! # Lane accounting
//!
//! The residual models evaluate antenna rows in explicit 4-wide lanes
//! (each lane computes one independent row; rows are written in antenna
//! order, so the reduction order — and therefore every bit of the result —
//! matches the scalar loop). The normal-equation assembly (`JᵀJ`/`Jᵀr`)
//! runs the same discipline: 4 residual rows per pass, one independent
//! accumulator per matrix entry, lane products reduced in row order — so
//! the blocked assembly is bit-identical to the scalar `m×P` loop. The
//! core counts full 4-row blocks and leftover scalar rows per evaluation
//! into [`LaneStats`]; the solvers surface the tallies through the
//! `solver.lane_*` observability counters. [`LaneMode::Scalar`] is the
//! config escape hatch back to the plain loops.
//!
//! # Step solvers
//!
//! Each LM iteration solves the damped normal equations
//! `(JᵀJ + λ·diag(JᵀJ))δ = −Jᵀr`, and the λ retry policy may re-solve the
//! same system at several λ before a step is accepted. [`StepSolver`]
//! picks the linear-algebra backend: [`StepSolver::Cholesky`] re-factors
//! the damped matrix per attempt (O(P³), the bit-identity default) while
//! [`StepSolver::Cached`] keeps the first two attempts on the Cholesky
//! fast path and, once an iteration enters a λ ladder (a second retry
//! against the same normal equations), tridiagonalizes the *undamped*
//! scaled normal matrix once and resolves every remaining λ attempt in
//! O(P²) — same math, different factorization, pinned ≤1e-9 against the
//! default (DESIGN.md §6 derives it).

use crate::solver::SolveStats;

/// How the residual models traverse their antenna/channel rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneMode {
    /// Process rows in explicit 4-wide unrolled lanes (independent rows,
    /// antenna-order writes — bit-identical to the scalar loop). The
    /// default.
    #[default]
    Wide4,
    /// The plain scalar loop — the escape hatch, and the reference the
    /// lane path is pinned against in the equivalence suite.
    Scalar,
    /// Like [`LaneMode::Wide4`], but residual models with fewer rows than
    /// a full block *pad* the trailing antenna block up to 4 lanes
    /// (duplicating the last antenna, discarding the padded outputs) and
    /// evaluate the block's transcendentals through bounded-error
    /// polynomial lanes instead of one libm call per row. Results are
    /// pinned ≤1e-9 against the default on full solves — the padding
    /// itself is exact; only the polynomial trig differs, by ≲1e-13.
    Padded4,
}

/// The linear-algebra backend of the damped LM step
/// `(JᵀJ + λ·diag(JᵀJ))δ = −Jᵀr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StepSolver {
    /// Copy, damp and Cholesky-factor the P×P system on every λ attempt —
    /// the bit-identity default (identical to the frozen dynamic cores).
    #[default]
    Cholesky,
    /// Cholesky for the first two attempts (so retry-free iterations cost
    /// exactly the default), then — once an iteration enters a λ ladder —
    /// factor once (scaled Householder tridiagonalization of `JᵀJ`) and
    /// resolve every remaining λ attempt in O(P²) through the cached
    /// [`CachedStep`] factor. Same step to ~1e-12 relative; full solves
    /// are pinned ≤1e-9 against the default. Applies to the analytic
    /// refinement path; the numeric fallback keeps Gaussian elimination.
    Cached,
}

/// Lane-utilization counters of the 4-wide hot paths, accumulated
/// monotonically (snapshot and diff with [`LaneStats::since`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Full 4-seed blocks evaluated by the coarse seed ranking.
    pub seed_blocks: u64,
    /// Full 4-row blocks evaluated by residual/Jacobian passes.
    pub row_blocks: u64,
    /// Rows (or seeds) processed outside a full 4-wide block — loop
    /// remainders, plus everything when [`LaneMode::Scalar`] is selected.
    pub scalar_rows: u64,
}

impl LaneStats {
    /// The tallies accumulated since `earlier` was snapshotted.
    #[must_use]
    pub fn since(self, earlier: LaneStats) -> LaneStats {
        LaneStats {
            seed_blocks: self.seed_blocks - earlier.seed_blocks,
            row_blocks: self.row_blocks - earlier.row_blocks,
            scalar_rows: self.scalar_rows - earlier.scalar_rows,
        }
    }

    /// Element-wise sum of two tallies (for aggregating a workspace's
    /// cores into one snapshot).
    #[must_use]
    pub fn merged(self, other: LaneStats) -> LaneStats {
        LaneStats {
            seed_blocks: self.seed_blocks + other.seed_blocks,
            row_blocks: self.row_blocks + other.row_blocks,
            scalar_rows: self.scalar_rows + other.scalar_rows,
        }
    }
}

/// Work counters of the λ-retry step machinery, accumulated monotonically
/// (snapshot and diff with [`StepStats::since`]). These feed the
/// `solver.lambda_retries` / `solver.chol_failures` /
/// `solver.step_cached_solves` observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepStats {
    /// Damped-step attempts beyond the first of each iteration — every λ
    /// escalation, whether from a factorization failure or a rejected
    /// (cost-increasing) trial step.
    pub lambda_retries: u64,
    /// Damped systems the backend refused to solve (Cholesky pivot
    /// failure, singular elimination, or a non-positive cached pivot) —
    /// each one escalates λ ×10 and retries.
    pub chol_failures: u64,
    /// Once-per-iteration tridiagonal factorizations built by
    /// [`StepSolver::Cached`].
    pub cached_factors: u64,
    /// O(P²) λ-resolves served from a cached factor.
    pub cached_solves: u64,
}

impl StepStats {
    /// The counts accumulated since `earlier` was snapshotted.
    #[must_use]
    pub fn since(self, earlier: StepStats) -> StepStats {
        StepStats {
            lambda_retries: self.lambda_retries - earlier.lambda_retries,
            chol_failures: self.chol_failures - earlier.chol_failures,
            cached_factors: self.cached_factors - earlier.cached_factors,
            cached_solves: self.cached_solves - earlier.cached_solves,
        }
    }

    /// Element-wise sum of two tallies.
    #[must_use]
    pub fn merged(self, other: StepStats) -> StepStats {
        StepStats {
            lambda_retries: self.lambda_retries + other.lambda_retries,
            chol_failures: self.chol_failures + other.chol_failures,
            cached_factors: self.cached_factors + other.cached_factors,
            cached_solves: self.cached_solves + other.cached_solves,
        }
    }
}

/// A `P`-parameter nonlinear least-squares model: the problem physics the
/// dimension-generic [`LmCore`] refines against.
///
/// Implementations own (borrow) their observations and configuration; the
/// core owns the numerics. The solvers implement this for the 2-D joint
/// (`P = 5`), 2-D slope-only (`P = 3`), 3-D joint (`P = 7`) and 3-D
/// slope-only (`P = 4`) problems; a new sensing head needs exactly this
/// one method to inherit the refinement stack.
pub trait ResidualModel<const P: usize> {
    /// Fills `r` with the residuals at `p` and, when `jac` is given, the
    /// row-major `m × P` Jacobian `∂r/∂p` in the same fused pass.
    ///
    /// Must fully overwrite both buffers (`clear` + fill). When `jac` is
    /// `None` only the residuals are needed (trial-point evaluations and
    /// the numeric fallback's difference sweeps).
    fn eval(&self, p: &[f64; P], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>);

    /// The lane mode this model's row loops run under — used by the core's
    /// lane accounting. Defaults to [`LaneMode::Wide4`].
    fn lane_mode(&self) -> LaneMode {
        LaneMode::Wide4
    }
}

/// The dimension-generic LM engine: scratch buffers plus the analytic and
/// numeric refinement loops, const-generic over the parameter count.
///
/// The residual and Jacobian buffers grow to the model's row count on the
/// first refinement and are reused afterwards; everything `P`-sized lives
/// inline in the struct. A sized core performs **zero** heap allocations
/// per refinement — the property the counting-allocator suite pins.
#[derive(Debug, Clone)]
pub struct LmCore<const P: usize> {
    r: Vec<f64>,
    r_plus: Vec<f64>,
    r_minus: Vec<f64>,
    /// Row-major `m × P` Jacobian.
    jac: Vec<f64>,
    /// Normal matrix `JᵀJ` and its damped factorization scratch.
    jtj: [[f64; P]; P],
    chol: [[f64; P]; P],
    /// Gradient, step and trial-point buffers.
    jtr: [f64; P],
    delta: [f64; P],
    candidate: [f64; P],
    /// Per-iteration factor cache of [`StepSolver::Cached`].
    cached: CachedStep<P>,
    stats: SolveStats,
    lanes: LaneStats,
    steps: StepStats,
}

impl<const P: usize> Default for LmCore<P> {
    fn default() -> Self {
        LmCore {
            r: Vec::new(),
            r_plus: Vec::new(),
            r_minus: Vec::new(),
            jac: Vec::new(),
            jtj: [[0.0; P]; P],
            chol: [[0.0; P]; P],
            jtr: [0.0; P],
            delta: [0.0; P],
            candidate: [0.0; P],
            cached: CachedStep::default(),
            stats: SolveStats::default(),
            lanes: LaneStats::default(),
            steps: StepStats::default(),
        }
    }
}

impl<const P: usize> LmCore<P> {
    /// Snapshot of the work counters accumulated by every refinement run
    /// against this core (diff with
    /// [`SolveStats::since`](crate::solver::SolveStats::since)).
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Snapshot of the lane-utilization counters (diff with
    /// [`LaneStats::since`]).
    pub fn lane_stats(&self) -> LaneStats {
        self.lanes
    }

    /// Snapshot of the λ-retry step counters (diff with
    /// [`StepStats::since`]).
    pub fn step_stats(&self) -> StepStats {
        self.steps
    }

    /// Charges one model evaluation of `rows` residual rows to the lane
    /// tallies under the model's lane mode.
    fn charge_lanes(&mut self, mode: LaneMode, rows: usize) {
        match mode {
            LaneMode::Wide4 => {
                self.lanes.row_blocks += (rows / 4) as u64;
                self.lanes.scalar_rows += (rows % 4) as u64;
            }
            LaneMode::Scalar => self.lanes.scalar_rows += rows as u64,
            // Padded blocks run every row inside a (possibly part-filled)
            // 4-wide block; nothing falls through to a scalar remainder.
            LaneMode::Padded4 => self.lanes.row_blocks += rows.div_ceil(4) as u64,
        }
    }

    /// Assembles the normal equations `JᵀJ` / `Jᵀr` from the current
    /// residual and Jacobian buffers. Under the wide modes the `m`
    /// residual rows are consumed 4 per pass; every `JᵀJ`/`Jᵀr` entry
    /// keeps its own independent accumulator and the four lane products
    /// are reduced in row order, so each partial sum — and therefore
    /// every bit of the result — matches the scalar loop. Assembly rows
    /// are charged to the lane tallies like model-evaluation rows.
    #[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
    fn assemble_normal_equations(&mut self, m: usize, mode: LaneMode) {
        self.jtj = [[0.0; P]; P];
        self.jtr = [0.0; P];
        let mut i = 0usize;
        if mode != LaneMode::Scalar {
            while i + 4 <= m {
                let j0 = &self.jac[i * P..(i + 1) * P];
                let j1 = &self.jac[(i + 1) * P..(i + 2) * P];
                let j2 = &self.jac[(i + 2) * P..(i + 3) * P];
                let j3 = &self.jac[(i + 3) * P..(i + 4) * P];
                let (y0, y1, y2, y3) =
                    (self.r[i], self.r[i + 1], self.r[i + 2], self.r[i + 3]);
                for a in 0..P {
                    let mut g = self.jtr[a];
                    g += j0[a] * y0;
                    g += j1[a] * y1;
                    g += j2[a] * y2;
                    g += j3[a] * y3;
                    self.jtr[a] = g;
                    for b in a..P {
                        let mut s = self.jtj[a][b];
                        s += j0[a] * j0[b];
                        s += j1[a] * j1[b];
                        s += j2[a] * j2[b];
                        s += j3[a] * j3[b];
                        self.jtj[a][b] = s;
                    }
                }
                i += 4;
            }
        }
        for i in i..m {
            let row = &self.jac[i * P..(i + 1) * P];
            let ri = self.r[i];
            for a in 0..P {
                self.jtr[a] += row[a] * ri;
                for b in a..P {
                    self.jtj[a][b] += row[a] * row[b];
                }
            }
        }
        for a in 0..P {
            for b in 0..a {
                self.jtj[a][b] = self.jtj[b][a];
            }
        }
        self.charge_lanes(mode, m);
    }

    /// The λ damping/retry policy shared by the analytic and numeric
    /// refinement paths — the **single** home of the retry block: up to 8
    /// damped-step attempts, λ ×10 on a factorization failure, λ ×4 on a
    /// rejected (cost-increasing) trial, λ/3 (floored at 1e-12) on an
    /// accepted step. Identical floating-point behaviour to the frozen
    /// dynamic cores for the [`StepSolver::Cholesky`] and Gaussian
    /// backends.
    #[allow(clippy::too_many_arguments)]
    fn lambda_retry<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        mode: LaneMode,
        m: usize,
        backend: StepBackend,
        p: &mut [f64; P],
        cost: &mut f64,
        lambda: &mut f64,
        tolerance: f64,
    ) -> RetryOutcome {
        // The cached backend factors *lazily*: the first attempt — and
        // the first retry — run the plain Cholesky fast path, so an
        // iteration that accepts within two attempts costs exactly what
        // the default backend costs. Only a second retry against the
        // same normal equations (a λ ladder: consecutive rejections or a
        // ×10 factorization-failure escalation) tridiagonalizes once and
        // serves every remaining attempt as an O(P²) resolve — the
        // regime where the per-retry O(P³) rebuild+refactor tax lived.
        let mut factored = false;
        for attempt in 0..8 {
            if attempt > 0 {
                self.steps.lambda_retries += 1;
            }
            let solved = match backend {
                StepBackend::Cholesky => damped_step_cholesky(
                    &self.jtj,
                    &self.jtr,
                    *lambda,
                    &mut self.chol,
                    &mut self.delta,
                ),
                StepBackend::Gauss => damped_step_gauss(
                    &self.jtj,
                    &self.jtr,
                    *lambda,
                    &mut self.chol,
                    &mut self.delta,
                ),
                StepBackend::Cached if attempt < 2 => damped_step_cholesky(
                    &self.jtj,
                    &self.jtr,
                    *lambda,
                    &mut self.chol,
                    &mut self.delta,
                ),
                StepBackend::Cached => {
                    if !factored {
                        self.cached.factor(&self.jtj, &self.jtr);
                        self.steps.cached_factors += 1;
                        factored = true;
                    }
                    self.steps.cached_solves += 1;
                    self.cached.solve(*lambda, &mut self.delta)
                }
            };
            if !solved {
                self.steps.chol_failures += 1;
                *lambda *= 10.0;
                continue;
            }
            for (a, pa) in p.iter().enumerate() {
                self.candidate[a] = pa + self.delta[a];
            }
            model.eval(&self.candidate, &mut self.r_plus, None);
            self.stats.residual_evals += 1;
            self.charge_lanes(mode, m);
            let new_cost: f64 = self.r_plus.iter().map(|v| v * v).sum();
            if new_cost < *cost {
                let rel_drop = (*cost - new_cost) / (*cost).max(1e-300);
                *p = self.candidate;
                std::mem::swap(&mut self.r, &mut self.r_plus);
                *cost = new_cost;
                *lambda = (*lambda / 3.0).max(1e-12);
                if rel_drop < tolerance {
                    return RetryOutcome::Converged;
                }
                return RetryOutcome::Improved;
            }
            *lambda *= 4.0;
        }
        RetryOutcome::Exhausted
    }

    /// Levenberg–Marquardt with the model's fused analytic
    /// residual+Jacobian — the hot path. The damping/retry policy and
    /// every floating-point operation match
    /// [`levenberg_marquardt_analytic_with`](crate::solver::levenberg_marquardt_analytic_with)
    /// exactly, so results are bit-identical to the dynamic core.
    pub fn refine<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        p: [f64; P],
        max_iterations: usize,
        tolerance: f64,
    ) -> ([f64; P], f64) {
        self.refine_with(model, p, max_iterations, tolerance, StepSolver::Cholesky)
    }

    /// [`refine`](LmCore::refine) with an explicit damped-step backend.
    /// [`StepSolver::Cholesky`] is bit-identical to the frozen dynamic
    /// core; [`StepSolver::Cached`] factors lazily on an iteration's
    /// second λ retry and resolves the rest of the ladder in O(P²),
    /// within ≤1e-9 of the default on full solves.
    pub fn refine_with<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        mut p: [f64; P],
        max_iterations: usize,
        tolerance: f64,
        step: StepSolver,
    ) -> ([f64; P], f64) {
        let mode = model.lane_mode();
        let backend = match step {
            StepSolver::Cholesky => StepBackend::Cholesky,
            StepSolver::Cached => StepBackend::Cached,
        };
        model.eval(&p, &mut self.r, Some(&mut self.jac));
        self.stats.residual_evals += 1;
        self.stats.jacobian_evals += 1;
        let mut cost: f64 = self.r.iter().map(|v| v * v).sum();
        let m = self.r.len();
        self.charge_lanes(mode, m);
        debug_assert_eq!(self.jac.len(), m * P);

        let mut lambda = 1e-3;
        // The Jacobian from the initial fused evaluation is current; after
        // an accepted step it goes stale and the next iteration re-fuses.
        let mut jac_fresh = true;

        for _ in 0..max_iterations {
            self.stats.iterations += 1;
            if !jac_fresh {
                model.eval(&p, &mut self.r, Some(&mut self.jac));
                self.stats.residual_evals += 1;
                self.stats.jacobian_evals += 1;
                self.charge_lanes(mode, m);
            }
            // Assemble the normal equations once; the λ retries below
            // reuse them and only re-damp (or re-shift) the diagonal.
            self.assemble_normal_equations(m, mode);

            match self.lambda_retry(
                model, mode, m, backend, &mut p, &mut cost, &mut lambda, tolerance,
            ) {
                RetryOutcome::Converged => return (p, cost),
                RetryOutcome::Improved => jac_fresh = false,
                RetryOutcome::Exhausted => break,
            }
        }
        (p, cost)
    }

    /// Levenberg–Marquardt with a central-difference Jacobian and
    /// per-parameter step scales — the numeric fallback. The policy and
    /// operation order match
    /// [`levenberg_marquardt_with`](crate::solver::levenberg_marquardt_with)
    /// exactly (bit-identical results); only residual evaluations
    /// (`jac: None`) are requested from the model.
    #[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
    pub fn refine_numeric<M: ResidualModel<P>>(
        &mut self,
        model: &M,
        mut p: [f64; P],
        steps: &[f64; P],
        max_iterations: usize,
        tolerance: f64,
    ) -> ([f64; P], f64) {
        let mode = model.lane_mode();
        model.eval(&p, &mut self.r, None);
        self.stats.residual_evals += 1;
        let mut cost: f64 = self.r.iter().map(|v| v * v).sum();
        let m = self.r.len();
        self.charge_lanes(mode, m);

        let mut lambda = 1e-3;
        self.jac.clear();
        self.jac.resize(m * P, 0.0);

        for _ in 0..max_iterations {
            self.stats.iterations += 1;
            // Numeric Jacobian (central differences, per-parameter steps).
            for j in 0..P {
                let h = steps[j];
                let saved = p[j];
                p[j] = saved + h;
                model.eval(&p, &mut self.r_plus, None);
                p[j] = saved - h;
                model.eval(&p, &mut self.r_minus, None);
                p[j] = saved;
                for i in 0..m {
                    self.jac[i * P + j] = (self.r_plus[i] - self.r_minus[i]) / (2.0 * h);
                }
            }
            self.stats.residual_evals += 2 * P as u64;
            self.stats.jacobian_evals += 1;
            self.charge_lanes(mode, 2 * P * m);
            // Normal equations — same accumulation order as the dynamic
            // numeric core (bit-identical results).
            self.assemble_normal_equations(m, mode);

            // Damped solve with retry on cost increase; the difference
            // Jacobian is less trustworthy than the analytic one, so this
            // path keeps pivoted Gaussian elimination as its backend.
            match self.lambda_retry(
                model,
                mode,
                m,
                StepBackend::Gauss,
                &mut p,
                &mut cost,
                &mut lambda,
                tolerance,
            ) {
                RetryOutcome::Converged => return (p, cost),
                RetryOutcome::Improved => {}
                RetryOutcome::Exhausted => break,
            }
        }
        (p, cost)
    }
}

/// The internal dispatch of [`LmCore::lambda_retry`]: the two public
/// [`StepSolver`] backends plus the numeric path's pivoted elimination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StepBackend {
    Cholesky,
    Gauss,
    Cached,
}

/// What one pass of the λ retry loop did to the running iterate.
enum RetryOutcome {
    /// A step was accepted and the relative cost drop fell under the
    /// tolerance — refinement is done.
    Converged,
    /// A step was accepted; the Jacobian is now stale.
    Improved,
    /// All 8 attempts failed to decrease the cost.
    Exhausted,
}

/// One damped normal-equation step
/// `(JᵀJ + λ·diag(JᵀJ)₊)δ = −Jᵀr` by copy + damp + Cholesky — the
/// bit-identity reference backend (exactly the frozen dynamic cores'
/// operations, in their order). `scratch` receives the damped factor;
/// `delta` the step. Returns `false` when the damped matrix is not
/// numerically SPD — the caller escalates λ and retries.
pub fn damped_step_cholesky<const P: usize>(
    jtj: &[[f64; P]; P],
    jtr: &[f64; P],
    lambda: f64,
    scratch: &mut [[f64; P]; P],
    delta: &mut [f64; P],
) -> bool {
    *scratch = *jtj;
    for d in 0..P {
        scratch[d][d] += lambda * jtj[d][d].max(1e-12);
    }
    if !cholesky_factor(scratch) {
        return false;
    }
    for a in 0..P {
        delta[a] = -jtr[a];
    }
    cholesky_solve(scratch, delta);
    true
}

/// The numeric fallback's damped step: copy + damp + pivoted Gaussian
/// elimination (same operations and order as the frozen numeric core).
fn damped_step_gauss<const P: usize>(
    jtj: &[[f64; P]; P],
    jtr: &[f64; P],
    lambda: f64,
    scratch: &mut [[f64; P]; P],
    delta: &mut [f64; P],
) -> bool {
    *scratch = *jtj;
    for d in 0..P {
        scratch[d][d] += lambda * jtj[d][d].max(1e-12);
    }
    for a in 0..P {
        delta[a] = -jtr[a];
    }
    gauss_solve(scratch, delta)
}

/// The cached damped-step factor of [`StepSolver::Cached`] (DESIGN.md §6).
///
/// The λ retry loop re-solves `(JᵀJ + λD)δ = −Jᵀr` with `D =
/// max(diag(JᵀJ), 1e-12)` at escalating λ. Write `S = D^{1/2}`; then
///
/// ```text
/// JᵀJ + λD = S (B + λI) S    with    B = S⁻¹ JᵀJ S⁻¹.
/// ```
///
/// [`CachedStep::factor`] tridiagonalizes the symmetric scaled matrix
/// once per λ ladder — `B = Q T Qᵀ` by Householder reflections, `T`
/// tridiagonal — and transforms the (λ-independent) right-hand side into
/// `u = Qᵀ S⁻¹ (−Jᵀr)`. Each [`CachedStep::solve`] then costs O(P²):
/// an O(P) LDLᵀ solve of `(T + λI) y = u` plus one multiply by `Q` and a
/// diagonal rescale, `δ = S⁻¹ Q y`. A non-positive LDLᵀ pivot plays the
/// role of the Cholesky failure (the damped matrix is not SPD at this λ).
#[derive(Debug, Clone)]
pub struct CachedStep<const P: usize> {
    /// `S⁻¹ = D^{-1/2}` of the diagonal scaling.
    dinv: [f64; P],
    /// Accumulated orthogonal factor of the tridiagonalization.
    q: [[f64; P]; P],
    /// Diagonal of `T`.
    tdiag: [f64; P],
    /// Sub-diagonal of `T` (`P − 1` entries used).
    toff: [f64; P],
    /// Transformed right-hand side `Qᵀ S⁻¹ (−Jᵀr)`.
    u: [f64; P],
    /// False until [`CachedStep::factor`] has run (or when the inputs
    /// were non-finite); [`CachedStep::solve`] fails closed.
    valid: bool,
}

impl<const P: usize> Default for CachedStep<P> {
    fn default() -> Self {
        CachedStep {
            dinv: [0.0; P],
            q: [[0.0; P]; P],
            tdiag: [0.0; P],
            toff: [0.0; P],
            u: [0.0; P],
            valid: false,
        }
    }
}

impl<const P: usize> CachedStep<P> {
    /// Builds the λ-independent factor for one LM iteration: the scaled
    /// Householder tridiagonalization of `JᵀJ` plus the transformed
    /// right-hand side. O(P³), paid once; every λ retry of the iteration
    /// then resolves through [`CachedStep::solve`] in O(P²).
    #[allow(clippy::needless_range_loop)] // P-indexed kernels, same idiom as the Cholesky core
    pub fn factor(&mut self, jtj: &[[f64; P]; P], jtr: &[f64; P]) {
        // Diagonal scaling: B = S⁻¹ JᵀJ S⁻¹ has a ~unit diagonal, which
        // keeps the Householder norms well-conditioned and makes the
        // LDLᵀ pivot threshold scale-free.
        for d in 0..P {
            self.dinv[d] = 1.0 / jtj[d][d].max(1e-12).sqrt();
        }
        let mut b = [[0.0; P]; P];
        for i in 0..P {
            for j in 0..P {
                b[i][j] = self.dinv[i] * jtj[i][j] * self.dinv[j];
            }
        }
        // Householder tridiagonalization, accumulating Q (B = Q T Qᵀ).
        self.q = [[0.0; P]; P];
        for i in 0..P {
            self.q[i][i] = 1.0;
        }
        for k in 0..P.saturating_sub(2) {
            let mut xnorm2 = 0.0;
            for i in (k + 1)..P {
                xnorm2 += b[i][k] * b[i][k];
            }
            if xnorm2 <= 0.0 {
                continue; // column already tridiagonal
            }
            // v = x − α e₁ with α = −sign(x₁)‖x‖ (the stable choice).
            let alpha = -b[k + 1][k].signum() * xnorm2.sqrt();
            let mut v = [0.0; P];
            for i in (k + 1)..P {
                v[i] = b[i][k];
            }
            v[k + 1] -= alpha;
            let vnorm2: f64 = v.iter().map(|t| t * t).sum();
            if vnorm2 <= 0.0 {
                continue;
            }
            let beta = 2.0 / vnorm2;
            // Symmetric update B ← H B H with H = I − β v vᵀ:
            // w = β B v − (β² (vᵀ B v) / 2) v, then B ← B − v wᵀ − w vᵀ.
            let mut w = [0.0; P];
            let mut vw = 0.0;
            for i in 0..P {
                let mut s = 0.0;
                for j in (k + 1)..P {
                    s += b[i][j] * v[j];
                }
                w[i] = beta * s;
            }
            for i in (k + 1)..P {
                vw += v[i] * w[i];
            }
            let kappa = 0.5 * beta * vw;
            for i in 0..P {
                w[i] -= kappa * v[i];
            }
            for i in 0..P {
                for j in 0..P {
                    b[i][j] -= v[i] * w[j] + w[i] * v[j];
                }
            }
            // Q ← Q H (post-multiplying accumulates the product of
            // reflections so that B_original = Q T Qᵀ).
            for i in 0..P {
                let mut s = 0.0;
                for j in (k + 1)..P {
                    s += self.q[i][j] * v[j];
                }
                s *= beta;
                for j in (k + 1)..P {
                    self.q[i][j] -= s * v[j];
                }
            }
        }
        let mut finite = true;
        for i in 0..P {
            self.tdiag[i] = b[i][i];
            self.toff[i] = if i + 1 < P { b[i + 1][i] } else { 0.0 };
            finite &= self.tdiag[i].is_finite() && self.toff[i].is_finite();
        }
        // u = Qᵀ S⁻¹ (−Jᵀr): λ-independent, so transformed once here.
        for i in 0..P {
            let mut s = 0.0;
            for j in 0..P {
                s += self.q[j][i] * (self.dinv[j] * -jtr[j]);
            }
            self.u[i] = s;
            finite &= s.is_finite();
        }
        self.valid = finite;
    }

    /// Resolves the damped system at `lambda` from the cached factor:
    /// LDLᵀ of the shifted tridiagonal `T + λI` (O(P)), then
    /// `δ = S⁻¹ Q y` (O(P²)). Returns `false` when a pivot is not
    /// strictly positive — the damped matrix is not SPD at this λ, the
    /// same condition that fails the Cholesky backend.
    #[allow(clippy::needless_range_loop)] // P-indexed kernels, same idiom as the Cholesky core
    pub fn solve(&self, lambda: f64, delta: &mut [f64; P]) -> bool {
        if !self.valid {
            return false;
        }
        // LDLᵀ forward sweep over the shifted tridiagonal: piv holds the
        // D pivots, y the partially substituted right-hand side.
        let mut piv = [0.0; P];
        let mut y = [0.0; P];
        let mut prev_piv = 0.0;
        let mut prev_y = 0.0;
        for i in 0..P {
            let mut d = self.tdiag[i] + lambda;
            let mut rhs = self.u[i];
            if i > 0 {
                let l = self.toff[i - 1] / prev_piv;
                d -= l * self.toff[i - 1];
                rhs -= l * prev_y;
            }
            // B is scaled to a ~unit diagonal, so a healthy pivot is
            // O(1); the guard mirrors the Cholesky `s < 1e-300` check.
            if !d.is_finite() || d < 1e-300 {
                return false;
            }
            piv[i] = d;
            y[i] = rhs;
            prev_piv = d;
            prev_y = rhs;
        }
        // Diagonal + backward sweeps.
        for i in 0..P {
            y[i] /= piv[i];
        }
        for i in (0..P.saturating_sub(1)).rev() {
            y[i] -= (self.toff[i] / piv[i]) * y[i + 1];
        }
        // δ = S⁻¹ Q y.
        for a in 0..P {
            let mut s = 0.0;
            for j in 0..P {
                s += self.q[a][j] * y[j];
            }
            delta[a] = self.dinv[a] * s;
        }
        true
    }
}

/// In-place Cholesky factorization `A = LLᵀ`; on success the lower
/// triangle holds `L`. Same expressions (and failure guard) as the
/// dynamic [`solver`](crate::solver) routine, over fixed-size storage —
/// bit-identical factors.
#[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
fn cholesky_factor<const P: usize>(a: &mut [[f64; P]; P]) -> bool {
    for i in 0..P {
        for j in 0..=i {
            let mut s = a[i][j];
            for k in 0..j {
                s -= a[i][k] * a[j][k];
            }
            if i == j {
                if !s.is_finite() || s < 1e-300 {
                    return false;
                }
                a[i][i] = s.sqrt();
            } else {
                a[i][j] = s / a[j][j];
            }
        }
    }
    true
}

/// Solves `LLᵀ x = b` in place against a [`cholesky_factor`] factor.
fn cholesky_solve<const P: usize>(l: &[[f64; P]; P], b: &mut [f64; P]) {
    for i in 0..P {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i][k] * b[k];
        }
        b[i] = s / l[i][i];
    }
    for i in (0..P).rev() {
        let mut s = b[i];
        for k in (i + 1)..P {
            s -= l[k][i] * b[k];
        }
        b[i] = s / l[i][i];
    }
}

/// In-place Gaussian elimination with partial pivoting; pivot selection,
/// elimination order and back-substitution match the dynamic
/// `solve_linear_in_place` exactly (the numeric core stays a bit-exact
/// oracle). Returns `false` when singular.
#[allow(clippy::needless_range_loop)] // index loops mirror the frozen core verbatim
fn gauss_solve<const P: usize>(a: &mut [[f64; P]; P], b: &mut [f64; P]) -> bool {
    for col in 0..P {
        let mut pivot = col;
        for row in (col + 1)..P {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-300 {
            return false;
        }
        if pivot != col {
            a.swap(col, pivot);
            b.swap(col, pivot);
        }
        for row in (col + 1)..P {
            let factor = a[row][col] / a[col][col];
            for k in col..P {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    for col in (0..P).rev() {
        let mut s = b[col];
        for k in (col + 1)..P {
            s -= a[col][k] * b[k];
        }
        b[col] = s / a[col][col];
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{
        levenberg_marquardt_analytic_with, levenberg_marquardt_with, LmWorkspace,
    };

    /// Fit y = a·x + b over 10 points — a tiny 2-parameter model whose
    /// analytic Jacobian is exact.
    struct Line {
        data: Vec<(f64, f64)>,
        mode: LaneMode,
    }

    impl ResidualModel<2> for Line {
        fn eval(&self, p: &[f64; 2], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>) {
            r.clear();
            let mut jac = jac;
            if let Some(j) = jac.as_deref_mut() {
                j.clear();
            }
            for &(x, y) in &self.data {
                r.push(y - (p[0] * x + p[1]));
                if let Some(j) = jac.as_deref_mut() {
                    j.push(-x);
                    j.push(-1.0);
                }
            }
        }

        fn lane_mode(&self) -> LaneMode {
            self.mode
        }
    }

    fn line_model(mode: LaneMode) -> Line {
        Line {
            data: (0..10).map(|i| (i as f64, 2.0 * i as f64 - 3.0)).collect(),
            mode,
        }
    }

    #[test]
    fn analytic_refine_matches_dynamic_core_bitwise() {
        let model = line_model(LaneMode::Wide4);
        let mut core = LmCore::<2>::default();
        let (p, cost) = core.refine(&model, [0.0, 0.0], 100, 1e-14);

        let mut ws = LmWorkspace::default();
        let resjac = |p: &[f64], r: &mut Vec<f64>, jac: Option<&mut Vec<f64>>| {
            let pa = [p[0], p[1]];
            model.eval(&pa, r, jac);
        };
        let (pd, costd) =
            levenberg_marquardt_analytic_with(&mut ws, &resjac, vec![0.0, 0.0], 100, 1e-14);
        assert_eq!(p[0].to_bits(), pd[0].to_bits());
        assert_eq!(p[1].to_bits(), pd[1].to_bits());
        assert_eq!(cost.to_bits(), costd.to_bits());
        assert!((p[0] - 2.0).abs() < 1e-8 && (p[1] + 3.0).abs() < 1e-8);
        // Identical work accounting, too.
        assert_eq!(core.stats(), ws.stats());
    }

    #[test]
    fn numeric_refine_matches_dynamic_core_bitwise() {
        let model = line_model(LaneMode::Scalar);
        let mut core = LmCore::<2>::default();
        let steps = [1e-5, 1e-5];
        let (p, cost) = core.refine_numeric(&model, [0.0, 0.0], &steps, 100, 1e-14);

        let mut ws = LmWorkspace::default();
        let residual = |p: &[f64], out: &mut Vec<f64>| {
            let pa = [p[0], p[1]];
            model.eval(&pa, out, None);
        };
        let (pd, costd) = levenberg_marquardt_with(
            &mut ws,
            &residual,
            vec![0.0, 0.0],
            &steps,
            100,
            1e-14,
        );
        assert_eq!(p[0].to_bits(), pd[0].to_bits());
        assert_eq!(p[1].to_bits(), pd[1].to_bits());
        assert_eq!(cost.to_bits(), costd.to_bits());
        assert_eq!(core.stats(), ws.stats());
    }

    #[test]
    fn lane_tallies_follow_the_mode() {
        let wide = line_model(LaneMode::Wide4);
        let mut core = LmCore::<2>::default();
        core.refine(&wide, [0.0, 0.0], 100, 1e-14);
        let lanes = core.lane_stats();
        // 10 rows per evaluation → 2 full blocks + 2 scalar rows each.
        assert!(lanes.row_blocks > 0);
        assert_eq!(lanes.scalar_rows, lanes.row_blocks);

        let scalar = line_model(LaneMode::Scalar);
        let mut core2 = LmCore::<2>::default();
        core2.refine(&scalar, [0.0, 0.0], 100, 1e-14);
        let lanes2 = core2.lane_stats();
        assert_eq!(lanes2.row_blocks, 0);
        assert!(lanes2.scalar_rows > 0);
        // Same evaluations either way: 4·blocks + scalar is conserved.
        assert_eq!(4 * lanes.row_blocks + lanes.scalar_rows, lanes2.scalar_rows);
    }

    #[test]
    fn fixed_size_cholesky_round_trip() {
        let a = [[4.0, 2.0, 0.6], [2.0, 5.0, 1.0], [0.6, 1.0, 3.0]];
        let b = [1.0, -2.0, 0.5];
        let mut l = a;
        assert!(cholesky_factor(&mut l));
        let mut x = b;
        cholesky_solve(&l, &mut x);
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a[i][j] * x[j]).sum();
            assert!((ax - b[i]).abs() < 1e-12, "row {i}: {ax} vs {}", b[i]);
        }
        let mut indef = [[1.0, 2.0], [2.0, 1.0]];
        assert!(!cholesky_factor(&mut indef));
    }

    #[test]
    fn fixed_size_gauss_pivots_and_rejects_singular() {
        let a0 = [[0.0, 2.0, 1.0], [1.0, 1.0, 0.5], [3.0, 0.1, 2.0]];
        let b0 = [1.0, 2.0, 3.0];
        let mut a = a0;
        let mut x = b0;
        assert!(gauss_solve(&mut a, &mut x));
        for i in 0..3 {
            let ax: f64 = (0..3).map(|j| a0[i][j] * x[j]).sum();
            assert!((ax - b0[i]).abs() < 1e-10, "row {i}: {ax} vs {}", b0[i]);
        }
        let mut sing = [[1.0, 2.0], [2.0, 4.0]];
        let mut b = [1.0, 2.0];
        assert!(!gauss_solve(&mut sing, &mut b));
    }
}
