//! Model selection: cross-validated scoring and small grid searches.
//!
//! The paper hand-picks its classifier hyper-parameters; a production
//! system would tune them on the training split. This module provides the
//! two primitives that need: a k-fold cross-validation scorer generic over
//! any `fit` closure, and a convenience grid search that returns the best
//! candidate by mean CV accuracy.

use crate::dataset::Dataset;
use crate::metrics;
use crate::Classifier;

/// Mean k-fold cross-validation accuracy of a classifier family.
///
/// `fit` trains a classifier on each fold's training split; accuracy is
/// measured on the held-out split and averaged.
///
/// # Panics
///
/// Panics if `k < 2` or `k > dataset.len()` (propagated from
/// [`Dataset::k_folds`]).
///
/// # Example
///
/// ```
/// use rfp_ml::dataset::Dataset;
/// use rfp_ml::modsel::cross_val_accuracy;
/// use rfp_ml::knn::KnnClassifier;
///
/// let mut ds = Dataset::new(2);
/// for i in 0..20 {
///     ds.push(vec![i as f64], usize::from(i >= 10));
/// }
/// let acc = cross_val_accuracy(&ds, 4, 7, |train| KnnClassifier::fit(train, 1));
/// assert!(acc > 0.8);
/// ```
pub fn cross_val_accuracy<C, F>(dataset: &Dataset, k: usize, seed: u64, mut fit: F) -> f64
where
    C: Classifier,
    F: FnMut(&Dataset) -> C,
{
    let folds = dataset.k_folds(k, seed);
    let mut total = 0.0;
    for (train, val) in &folds {
        let model = fit(train);
        let preds = model.predict_batch(val.features());
        total += metrics::accuracy(val.labels(), &preds);
    }
    total / folds.len() as f64
}

/// Result of a grid search: the winning candidate, its CV accuracy, and
/// the per-candidate scores (same order as the input grid).
#[derive(Debug, Clone, PartialEq)]
pub struct GridSearchResult<P> {
    /// The best candidate's parameters.
    pub best: P,
    /// Its mean cross-validation accuracy.
    pub best_accuracy: f64,
    /// Accuracy of every candidate, in input order.
    pub scores: Vec<f64>,
}

/// Evaluates every candidate in `grid` by k-fold CV accuracy and returns
/// the best (ties go to the earlier candidate).
///
/// # Panics
///
/// Panics if `grid` is empty or the fold parameters are invalid.
///
/// # Example
///
/// ```
/// use rfp_ml::dataset::Dataset;
/// use rfp_ml::modsel::grid_search;
/// use rfp_ml::knn::KnnClassifier;
///
/// let mut ds = Dataset::new(2);
/// for i in 0..30 {
///     ds.push(vec![i as f64], usize::from(i >= 15));
/// }
/// let result = grid_search(&ds, 3, 1, &[1usize, 5, 15], |train, &k| {
///     KnnClassifier::fit(train, k)
/// });
/// assert_eq!(result.scores.len(), 3);
/// assert!(result.best_accuracy > 0.8);
/// ```
pub fn grid_search<P: Clone, C, F>(
    dataset: &Dataset,
    k_folds: usize,
    seed: u64,
    grid: &[P],
    mut fit: F,
) -> GridSearchResult<P>
where
    C: Classifier,
    F: FnMut(&Dataset, &P) -> C,
{
    assert!(!grid.is_empty(), "grid must hold at least one candidate");
    let scores: Vec<f64> = grid
        .iter()
        .map(|p| cross_val_accuracy(dataset, k_folds, seed, |train| fit(train, p)))
        .collect();
    let (best_idx, &best_accuracy) = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite accuracies"))
        .expect("nonempty grid");
    GridSearchResult { best: grid[best_idx].clone(), best_accuracy, scores }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knn::KnnClassifier;
    use crate::tree::{DecisionTree, TreeConfig};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, spread: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(42);
        let mut ds = Dataset::new(2);
        for _ in 0..n {
            ds.push(vec![rng.gen_range(-spread..spread)], 0);
            ds.push(vec![3.0 + rng.gen_range(-spread..spread)], 1);
        }
        ds
    }

    #[test]
    fn cv_accuracy_high_on_separable_data() {
        let ds = blobs(30, 0.8);
        let acc = cross_val_accuracy(&ds, 5, 1, |train| {
            DecisionTree::fit(train, &TreeConfig::default())
        });
        assert!(acc > 0.95, "cv accuracy {acc}");
    }

    #[test]
    fn cv_accuracy_near_chance_on_shuffled_labels() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut ds = Dataset::new(2);
        for _ in 0..60 {
            ds.push(vec![rng.gen_range(-1.0..1.0)], rng.gen_range(0..2));
        }
        let acc = cross_val_accuracy(&ds, 5, 2, |train| KnnClassifier::fit(train, 3));
        assert!((0.2..0.8).contains(&acc), "shuffled-label accuracy {acc}");
    }

    #[test]
    fn grid_search_prefers_sane_k() {
        // Overlapping blobs: k = 1 overfits; a larger k should win or tie.
        let ds = blobs(40, 1.8);
        let result =
            grid_search(&ds, 4, 3, &[1usize, 9], |train, &k| KnnClassifier::fit(train, k));
        assert_eq!(result.scores.len(), 2);
        assert!(result.best_accuracy >= result.scores[0]);
        assert!(result.best_accuracy >= result.scores[1]);
    }

    #[test]
    fn grid_search_reports_all_scores() {
        let ds = blobs(20, 0.5);
        let grid = [TreeConfig { max_depth: 1, ..Default::default() }, TreeConfig::default()];
        let result = grid_search(&ds, 4, 4, &grid, DecisionTree::fit);
        assert_eq!(result.scores.len(), 2);
        assert!(result.scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
    }

    #[test]
    #[should_panic]
    fn empty_grid_panics() {
        let ds = blobs(10, 0.5);
        let _: GridSearchResult<usize> =
            grid_search(&ds, 3, 1, &[], |train, &k| KnnClassifier::fit(train, k));
    }
}
