//! Ablation: what the error detector (paper §V-C) buys.
//!
//! Moving/rotating tags smear their phase lines; the detector rejects such
//! windows. This bench measures (a) the detection rate on genuinely moving
//! tags, (b) the false-alarm rate on static tags, and (c) the localization
//! error that would leak into the output if the rejected windows were
//! solved anyway.

use rfp_bench::{report, setup};
use rfp_core::{RfPrismConfig, SenseError};
use rfp_geom::Vec2;
use rfp_sim::{Motion, Scene, SimTag};

fn main() {
    report::header("Ablation", "mobility error detector (paper §V-C)");
    let scene = Scene::standard_2d();
    let prism = setup::prism_for(&scene);
    let permissive = prism.clone().with_config(RfPrismConfig {
        reject_moving: false,
        ..RfPrismConfig::paper()
    });

    // (a) Moving tags: drifting at a few cm/s during the 10 s round.
    let mut detected = 0usize;
    let mut leaked_err = Vec::new();
    let n_moving = 40;
    for i in 0..n_moving {
        let start = Vec2::new(-0.3 + 0.04 * i as f64, 0.8 + 0.03 * i as f64);
        let v = Vec2::new(0.02 + 0.001 * i as f64, 0.015);
        let tag = SimTag::with_seeded_diversity(i)
            .with_motion(Motion::planar_linear(start, v, 0.4));
        let survey = scene.survey(&tag, 500 + i);
        if let Err(SenseError::TagMoving { .. }) = prism.sense(&survey.per_antenna) { detected += 1 }
        if let Ok(r) = permissive.sense(&survey.per_antenna) {
            // Error against the mid-round position, capped at 3 m: a
            // garbage fit can land arbitrarily far outside the region.
            let mid = tag.motion().position(5.0).xy();
            leaked_err.push((r.estimate.position.distance(mid) * 100.0).min(300.0));
        }
    }

    // (b) Static tags: false alarms.
    let mut false_alarms = 0usize;
    let n_static = 40;
    for i in 0..n_static {
        let pos = Vec2::new(-0.4 + 0.045 * i as f64, 1.0 + 0.03 * i as f64);
        let tag =
            SimTag::with_seeded_diversity(100 + i).with_motion(Motion::planar_static(pos, 0.7));
        let survey = scene.survey(&tag, 900 + i);
        if matches!(prism.sense(&survey.per_antenna), Err(SenseError::TagMoving { .. })) {
            false_alarms += 1;
        }
    }

    let mean_leak = leaked_err.iter().sum::<f64>() / leaked_err.len().max(1) as f64;
    report::row(
        "moving windows detected",
        "filtered out",
        &report::pct(detected as f64 / n_moving as f64),
    );
    report::row(
        "false alarms on static tags",
        "≈ 0",
        &report::pct(false_alarms as f64 / n_static as f64),
    );
    report::row("error if solved anyway (cap 3 m)", "large", &report::cm(mean_leak));

    let detection_rate = detected as f64 / n_moving as f64;
    let false_alarm_rate = false_alarms as f64 / n_static as f64;
    assert!(detection_rate > 0.9, "detector must catch moving tags ({detected}/{n_moving})");
    assert!(
        false_alarm_rate < 0.1,
        "detector must not reject static tags ({false_alarms}/{n_static})"
    );
}
