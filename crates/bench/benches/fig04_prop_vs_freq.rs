//! Fig. 4: θ_prop vs frequency — the unwrapped phase is linear in `f` and
//! the slope encodes the antenna–tag distance (0.5 / 1.5 / 2.5 m, glass).

use rfp_bench::report;
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_geom::Vec2;
use rfp_phys::{propagation, Material};
use rfp_sim::{Motion, Scene, SimTag};

fn main() {
    report::header(
        "Fig. 4",
        "phase vs frequency at 0.5 / 1.5 / 2.5 m (tag on glass)",
    );
    let scene = Scene::standard_2d();
    // Antenna 0 sits at (0, 0, 0.4); place the tag along its boresight at
    // controlled distances (projected into the plane).
    let antenna = scene.antenna_poses()[0];
    println!("{:>8} {:>14} {:>14} {:>14} {:>10}", "d (m)", "slope (rad/Hz)", "d̂ from slope", "R²", "sweep(rad)");
    for &d_xy in &[0.5f64, 1.5, 2.5] {
        // Tag straight ahead of the rack at ground level.
        let pos = Vec2::new(0.0, d_xy);
        let true_d = antenna.distance_to(pos.with_z(0.0));
        let tag = SimTag::with_seeded_diversity(1)
            .attached_to(Material::Glass)
            .with_motion(Motion::planar_static(pos, 0.0));
        let survey = scene.survey(&tag, 4);
        let obs =
            extract_observation(antenna, &survey.per_antenna[0], &ExtractConfig::paper())
                .expect("survey usable");
        // Remove the (calibratable) device slope to isolate θ_prop.
        let kt = tag.electrical().linearized(&scene.reader().plan).kt;
        let prop_slope = obs.slope - kt;
        let d_hat = propagation::distance_from_slope(prop_slope);
        let sweep = obs.slope * scene.reader().plan.span_hz();
        println!(
            "{true_d:>8.3} {:>14.4e} {d_hat:>14.3} {:>14.6} {sweep:>10.2}",
            obs.slope,
            obs.raw_r_squared,
        );
        assert!(
            (d_hat - true_d).abs() < 0.05,
            "slope-ranged distance {d_hat} vs truth {true_d}"
        );
    }
    println!();
    println!("paper: three clearly linear curves whose slopes grow with distance;");
    println!("measured: linear fits with R² ≈ 1 and slope-ranged distances within 5 cm.");
}
