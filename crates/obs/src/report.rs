//! Run reports: an owned, serializable snapshot of one [`Recorder`],
//! with three sinks — a versioned JSON document, a human-readable summary
//! table, and a Prometheus-style text exposition.
//!
//! The JSON schema is stable and versioned (`schema_version`, currently
//! [`SCHEMA_VERSION`]); [`RunReport::to_json`] / [`RunReport::from_json`]
//! round-trip exactly, which the schema test pins. Bench snapshot writers
//! reuse the same serializer through [`snapshot`] / [`write_json`] so every
//! machine-readable artifact this workspace emits shares one format.

use crate::health::HealthReport;
use crate::json::{JsonError, JsonValue};
use crate::metrics::MetricKind;
use crate::recorder::Recorder;
use crate::snapshot::MetricsSnapshot;
use std::io;
use std::path::Path;

/// Version stamped into every JSON report and bench snapshot. Bump when a
/// field changes meaning or is removed; adding fields is compatible.
///
/// History: v1 = PR 3 (counters/gauges/spans/histograms); v2 adds
/// histogram `help` + estimated `p50`/`p90`/`p99` and the telemetry-frame
/// record. Readers accept v1 documents (the added fields default).
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest schema version [`RunReport::from_json`] still reads.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// One aggregated span in a report: its `/`-joined stage path plus the
/// entry count and total time, in DFS first-entry order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEntry {
    /// Stage path from the root, joined with `/` (e.g. `sense/solve_2d`).
    pub path: String,
    /// How many times this stage ran.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
}

/// One histogram in a report.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramEntry {
    /// Metric name.
    pub name: String,
    /// One-line help text from the descriptor table (empty when read from
    /// a v1 document, which did not carry it).
    pub help: String,
    /// Total observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (`None` when empty).
    pub min: Option<f64>,
    /// Largest observation (`None` when empty).
    pub max: Option<f64>,
    /// Estimated median (bucket interpolation; `None` when empty or when
    /// read from a v1 document).
    pub p50: Option<f64>,
    /// Estimated 90th percentile.
    pub p90: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
    /// Ascending inclusive bucket upper bounds (without `+Inf`).
    pub bounds: Vec<f64>,
    /// Per-bucket counts; one longer than `bounds` (`+Inf` overflow last).
    pub buckets: Vec<u64>,
}

/// An owned snapshot of one recorder, ready for any sink.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Report name (e.g. the CLI subcommand that produced it).
    pub name: String,
    /// Free-form key/value context (input file, jobs, …), insertion-ordered.
    pub meta: Vec<(String, String)>,
    /// Flattened span tree, DFS first-entry order.
    pub spans: Vec<SpanEntry>,
    /// Counters, descriptor-table order. Zero-valued counters are kept so
    /// the schema is identical run to run.
    pub counters: Vec<(String, u64)>,
    /// Gauges, descriptor-table order.
    pub gauges: Vec<(String, f64)>,
    /// Histograms, descriptor-table order.
    pub histograms: Vec<HistogramEntry>,
}

impl RunReport {
    /// Snapshots `rec` into an owned report named `name`.
    pub fn from_recorder(name: &str, rec: &Recorder) -> RunReport {
        let mut spans = Vec::new();
        let mut path: Vec<&'static str> = Vec::new();
        rec.spans.walk(&mut |depth, node| {
            path.truncate(depth);
            path.push(node.name);
            spans.push(SpanEntry {
                path: path.join("/"),
                count: node.count,
                total_ns: node.total_ns,
            });
        });

        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (idx, def) in rec.metrics.defs().iter().enumerate() {
            match def.kind {
                MetricKind::Counter => {
                    counters.push((def.name.to_string(), rec.metrics.counter(idx)));
                }
                MetricKind::Gauge => {
                    gauges.push((def.name.to_string(), rec.metrics.gauge(idx)));
                }
                MetricKind::Histogram => {
                    let h = rec.metrics.histogram(idx).expect("kind checked");
                    let empty = h.count() == 0;
                    histograms.push(HistogramEntry {
                        name: def.name.to_string(),
                        help: def.help.to_string(),
                        count: h.count(),
                        sum: h.sum(),
                        min: (!empty).then(|| h.min()),
                        max: (!empty).then(|| h.max()),
                        p50: h.quantile(0.5),
                        p90: h.quantile(0.9),
                        p99: h.quantile(0.99),
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts().to_vec(),
                    });
                }
            }
        }

        RunReport { name: name.to_string(), meta: Vec::new(), spans, counters, gauges, histograms }
    }

    /// Appends one meta key/value pair (builder-style).
    pub fn with_meta(mut self, key: &str, value: &str) -> RunReport {
        self.meta.push((key.to_string(), value.to_string()));
        self
    }

    /// The versioned JSON document for this report.
    pub fn to_json(&self) -> JsonValue {
        let meta = JsonValue::Obj(
            self.meta.iter().map(|(k, v)| (k.clone(), JsonValue::Str(v.clone()))).collect(),
        );
        let spans = JsonValue::Arr(
            self.spans
                .iter()
                .map(|s| {
                    JsonValue::obj(vec![
                        ("path", JsonValue::Str(s.path.clone())),
                        ("count", JsonValue::Num(s.count as f64)),
                        ("total_ns", JsonValue::Num(s.total_ns as f64)),
                    ])
                })
                .collect(),
        );
        let counters = JsonValue::Obj(
            self.counters.iter().map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64))).collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges.iter().map(|(k, v)| (k.clone(), JsonValue::Num(*v))).collect(),
        );
        let histograms = JsonValue::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    JsonValue::obj(vec![
                        ("name", JsonValue::Str(h.name.clone())),
                        ("help", JsonValue::Str(h.help.clone())),
                        ("count", JsonValue::Num(h.count as f64)),
                        ("sum", JsonValue::Num(h.sum)),
                        ("min", h.min.map_or(JsonValue::Null, JsonValue::Num)),
                        ("max", h.max.map_or(JsonValue::Null, JsonValue::Num)),
                        ("p50", h.p50.map_or(JsonValue::Null, JsonValue::Num)),
                        ("p90", h.p90.map_or(JsonValue::Null, JsonValue::Num)),
                        ("p99", h.p99.map_or(JsonValue::Null, JsonValue::Num)),
                        (
                            "bounds",
                            JsonValue::Arr(h.bounds.iter().map(|&b| JsonValue::Num(b)).collect()),
                        ),
                        (
                            "buckets",
                            JsonValue::Arr(
                                h.buckets.iter().map(|&c| JsonValue::Num(c as f64)).collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        JsonValue::obj(vec![
            ("schema_version", JsonValue::Num(SCHEMA_VERSION as f64)),
            ("name", JsonValue::Str(self.name.clone())),
            ("meta", meta),
            ("spans", spans),
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
        ])
    }

    /// Reconstructs a report from its JSON document.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a schema mismatch (missing
    /// fields, wrong `schema_version`).
    pub fn from_json(text: &str) -> Result<RunReport, JsonError> {
        let v = JsonValue::parse(text)?;
        let schema_err = |message: &str| JsonError { offset: 0, message: message.to_string() };
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema_err("missing schema_version"))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(schema_err(&format!(
                "unsupported schema_version {version} (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            )));
        }
        let name = v
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema_err("missing name"))?
            .to_string();
        let meta = v
            .get("meta")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| schema_err("missing meta"))?
            .iter()
            .map(|(k, val)| {
                val.as_str()
                    .map(|s| (k.clone(), s.to_string()))
                    .ok_or_else(|| schema_err("meta values must be strings"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let spans = v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| schema_err("missing spans"))?
            .iter()
            .map(|s| {
                Ok(SpanEntry {
                    path: s
                        .get("path")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| schema_err("span missing path"))?
                        .to_string(),
                    count: s
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| schema_err("span missing count"))?,
                    total_ns: s
                        .get("total_ns")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| schema_err("span missing total_ns"))?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| schema_err("missing counters"))?
            .iter()
            .map(|(k, val)| {
                val.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| schema_err("counter values must be non-negative integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| schema_err("missing gauges"))?
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| schema_err("gauge values must be numbers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let histograms = v
            .get("histograms")
            .and_then(JsonValue::as_arr)
            .ok_or_else(|| schema_err("missing histograms"))?
            .iter()
            .map(|h| {
                let nums = |key: &str| -> Result<Vec<f64>, JsonError> {
                    h.get(key)
                        .and_then(JsonValue::as_arr)
                        .ok_or_else(|| schema_err("histogram missing array field"))?
                        .iter()
                        .map(|x| x.as_f64().ok_or_else(|| schema_err("non-numeric bucket")))
                        .collect()
                };
                Ok(HistogramEntry {
                    name: h
                        .get("name")
                        .and_then(JsonValue::as_str)
                        .ok_or_else(|| schema_err("histogram missing name"))?
                        .to_string(),
                    // `help` and the quantile estimates were added in v2;
                    // v1 documents simply lack them.
                    help: h
                        .get("help")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string(),
                    count: h
                        .get("count")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| schema_err("histogram missing count"))?,
                    sum: h
                        .get("sum")
                        .and_then(JsonValue::as_f64)
                        .ok_or_else(|| schema_err("histogram missing sum"))?,
                    min: h.get("min").and_then(JsonValue::as_f64),
                    max: h.get("max").and_then(JsonValue::as_f64),
                    p50: h.get("p50").and_then(JsonValue::as_f64),
                    p90: h.get("p90").and_then(JsonValue::as_f64),
                    p99: h.get("p99").and_then(JsonValue::as_f64),
                    bounds: nums("bounds")?,
                    buckets: nums("buckets")?.into_iter().map(|c| c as u64).collect(),
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(RunReport { name, meta, spans, counters, gauges, histograms })
    }

    /// The human-readable summary table (the CLI's `--trace` output).
    /// Timings are wall-clock; everything else is deterministic.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== run report: {} ==\n", self.name));
        for (k, v) in &self.meta {
            out.push_str(&format!("   {k}: {v}\n"));
        }
        if !self.spans.is_empty() {
            out.push_str("-- spans --\n");
            let width = self
                .spans
                .iter()
                .map(|s| 2 * depth_of(&s.path) + leaf_of(&s.path).len())
                .max()
                .unwrap_or(0)
                .max(16);
            for s in &self.spans {
                let depth = depth_of(&s.path);
                let label = format!("{}{}", "  ".repeat(depth), leaf_of(&s.path));
                out.push_str(&format!(
                    "   {label:<width$}  x{:<6} {}\n",
                    s.count,
                    fmt_ns(s.total_ns)
                ));
            }
        }
        let nonzero: Vec<_> = self.counters.iter().filter(|(_, v)| *v > 0).collect();
        if !nonzero.is_empty() {
            out.push_str("-- counters --\n");
            let width = nonzero.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &nonzero {
                out.push_str(&format!("   {k:<width$}  {v}\n"));
            }
        }
        let live_gauges: Vec<_> = self.gauges.iter().filter(|(_, v)| *v != 0.0).collect();
        if !live_gauges.is_empty() {
            out.push_str("-- gauges --\n");
            let width = live_gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (k, v) in &live_gauges {
                out.push_str(&format!("   {k:<width$}  {v}\n"));
            }
        }
        let live_hists: Vec<_> = self.histograms.iter().filter(|h| h.count > 0).collect();
        if !live_hists.is_empty() {
            out.push_str("-- histograms --\n");
            for h in live_hists {
                let mean = h.sum / h.count as f64;
                out.push_str(&format!(
                    "   {}  n={} mean={:.1} p50={:.1} p90={:.1} p99={:.1} min={:.1} max={:.1}\n",
                    h.name,
                    h.count,
                    mean,
                    h.p50.unwrap_or(0.0),
                    h.p90.unwrap_or(0.0),
                    h.p99.unwrap_or(0.0),
                    h.min.unwrap_or(0.0),
                    h.max.unwrap_or(0.0),
                ));
            }
        }
        out
    }

    /// Prometheus-style text exposition (dots in metric names become
    /// underscores). Counters and gauges emit `# TYPE` + value exactly as
    /// they always have; histograms (added later) also carry a `# HELP`
    /// line and the conventional cumulative `_bucket{le=...}` / `_sum` /
    /// `_count` triplet.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let sanitize = |name: &str| name.replace('.', "_");
        for (k, v) in &self.counters {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (k, v) in &self.gauges {
            let name = sanitize(k);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for h in &self.histograms {
            let name = sanitize(&h.name);
            if !h.help.is_empty() {
                out.push_str(&format!("# HELP {name} {}\n", h.help));
            }
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.buckets.iter().enumerate() {
                cumulative += c;
                let le = match h.bounds.get(i) {
                    Some(b) => format!("{b}"),
                    None => "+Inf".to_string(),
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_sum {}\n{name}_count {}\n", h.sum, h.count));
        }
        out
    }
}

/// One periodic telemetry record: the windowed counter deltas and gauge
/// levels between two snapshot ticks, plus an optional health verdict.
/// Serialized compact, one frame per JSONL line.
///
/// Frames deliberately carry **only deterministic data** — counter deltas,
/// gauge levels, health verdicts computed from them — never wall-clock
/// histograms or span timings, so replaying the same log produces
/// byte-identical frames at any worker count. Latency distributions go to
/// the end-of-run report and the Prometheus sink instead.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryFrame {
    /// Frame number within the emitting run, starting at 0.
    pub seq: u64,
    /// The deterministic clock this frame closes (e.g. reads processed).
    pub tick: u64,
    /// Windowed counter deltas, descriptor-table order, zeros kept.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels at the frame boundary, descriptor-table order.
    pub gauges: Vec<(String, f64)>,
    /// Health verdict for this window, when an evaluator is attached.
    pub health: Option<HealthReport>,
}

impl TelemetryFrame {
    /// Builds a frame from a windowed snapshot `delta` (counters in the
    /// delta are the window's change; gauges are current levels).
    pub fn from_delta(
        seq: u64,
        tick: u64,
        delta: &MetricsSnapshot,
        health: Option<HealthReport>,
    ) -> TelemetryFrame {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for (idx, def) in delta.defs().iter().enumerate() {
            match def.kind {
                MetricKind::Counter => counters.push((def.name.to_string(), delta.counter(idx))),
                MetricKind::Gauge => gauges.push((def.name.to_string(), delta.gauge(idx))),
                MetricKind::Histogram => {} // wall-clock data: excluded by design
            }
        }
        TelemetryFrame { seq, tick, counters, gauges, health }
    }

    /// The frame as a JSON object (stamped with [`SCHEMA_VERSION`]).
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("schema_version".to_string(), JsonValue::Num(SCHEMA_VERSION as f64)),
            ("seq".to_string(), JsonValue::Num(self.seq as f64)),
            ("tick".to_string(), JsonValue::Num(self.tick as f64)),
            (
                "counters".to_string(),
                JsonValue::Obj(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Num(*v as f64)))
                        .collect(),
                ),
            ),
            (
                "gauges".to_string(),
                JsonValue::Obj(
                    self.gauges.iter().map(|(k, v)| (k.clone(), JsonValue::Num(*v))).collect(),
                ),
            ),
        ];
        if let Some(health) = &self.health {
            pairs.push(("health".to_string(), health.to_json()));
        }
        JsonValue::Obj(pairs)
    }

    /// The frame as one JSONL line (compact form, no trailing newline).
    pub fn to_jsonl_line(&self) -> String {
        self.to_json().to_compact()
    }

    /// Parses one frame from its JSON text (either form).
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a frame that does not match the
    /// schema.
    pub fn from_json(text: &str) -> Result<TelemetryFrame, JsonError> {
        let v = JsonValue::parse(text)?;
        let schema_err = |message: &str| JsonError { offset: 0, message: message.to_string() };
        let version = v
            .get("schema_version")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema_err("missing schema_version"))?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(schema_err(&format!("unsupported schema_version {version}")));
        }
        let seq = v
            .get("seq")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema_err("missing seq"))?;
        let tick = v
            .get("tick")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| schema_err("missing tick"))?;
        let counters = v
            .get("counters")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| schema_err("missing counters"))?
            .iter()
            .map(|(k, val)| {
                val.as_u64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| schema_err("counter deltas must be non-negative integers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = v
            .get("gauges")
            .and_then(JsonValue::as_obj)
            .ok_or_else(|| schema_err("missing gauges"))?
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| schema_err("gauge values must be numbers"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let health = match v.get("health") {
            Some(h) => {
                Some(HealthReport::from_json(h).ok_or_else(|| schema_err("malformed health"))?)
            }
            None => None,
        };
        Ok(TelemetryFrame { seq, tick, counters, gauges, health })
    }
}

fn depth_of(path: &str) -> usize {
    path.matches('/').count()
}

fn leaf_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn fmt_ns(ns: u64) -> String {
    let us = ns as f64 / 1e3;
    if us < 1e3 {
        format!("{us:.1} us")
    } else if us < 1e6 {
        format!("{:.2} ms", us / 1e3)
    } else {
        format!("{:.3} s", us / 1e6)
    }
}

/// Wraps bench-snapshot `fields` in the shared versioned envelope:
/// `schema_version` + `name` + the given fields, in order. Benches write
/// the result with [`write_json`] so every snapshot this workspace emits
/// carries the same version stamp.
pub fn snapshot(name: &str, fields: Vec<(&str, JsonValue)>) -> JsonValue {
    let mut pairs = vec![
        ("schema_version".to_string(), JsonValue::Num(SCHEMA_VERSION as f64)),
        ("name".to_string(), JsonValue::Str(name.to_string())),
    ];
    pairs.extend(fields.into_iter().map(|(k, v)| (k.to_string(), v)));
    JsonValue::Obj(pairs)
}

/// Writes `value` to `path` in the canonical pretty form.
///
/// # Errors
///
/// Propagates the underlying [`std::fs::write`] error.
pub fn write_json(path: &Path, value: &JsonValue) -> io::Result<()> {
    std::fs::write(path, value.to_pretty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricDef;
    use crate::recorder;

    static DEFS: &[MetricDef] = &[
        MetricDef::counter("solver.iterations", "LM iterations"),
        MetricDef::counter("solver.solves", "solve calls"),
        MetricDef::gauge("batch.workers", "worker threads"),
        MetricDef::histogram("solve.latency_us", "solve latency", &[100.0, 1000.0]),
    ];

    fn sample_report() -> RunReport {
        let ((), rec) = recorder::observe(DEFS, || {
            let _sense = recorder::span("sense");
            {
                let _solve = recorder::span("solve_2d");
                recorder::counter_add(0, 17);
            }
            recorder::counter_add(1, 1);
            recorder::gauge_set(2, 4.0);
            recorder::observe_value(3, 250.0);
            recorder::observe_value(3, 40.0);
        });
        RunReport::from_recorder("sense", &rec).with_meta("log", "trace.jsonl")
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let text = report.to_json().to_pretty();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // And the document itself is stable under a second pass.
        assert_eq!(back.to_json().to_pretty(), text);
    }

    #[test]
    fn json_carries_schema_version_and_structure() {
        let v = sample_report().to_json();
        assert_eq!(v.get("schema_version").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("sense"));
        let spans = v.get("spans").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(spans[0].get("path").and_then(JsonValue::as_str), Some("sense"));
        assert_eq!(spans[1].get("path").and_then(JsonValue::as_str), Some("sense/solve_2d"));
        let counters = v.get("counters").and_then(JsonValue::as_obj).unwrap();
        assert_eq!(counters[0].0, "solver.iterations");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut report_json = sample_report().to_json();
        if let JsonValue::Obj(pairs) = &mut report_json {
            pairs[0].1 = JsonValue::Num(999.0);
        }
        let err = RunReport::from_json(&report_json.to_pretty()).unwrap_err();
        assert!(err.message.contains("schema_version"));
    }

    #[test]
    fn empty_histogram_min_max_round_trip_as_null() {
        let ((), rec) = recorder::observe(DEFS, || {});
        let report = RunReport::from_recorder("idle", &rec);
        assert_eq!(report.histograms[0].min, None);
        let back = RunReport::from_json(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn summary_lists_spans_and_nonzero_counters() {
        let s = sample_report().summary();
        assert!(s.contains("run report: sense"));
        assert!(s.contains("solve_2d"));
        assert!(s.contains("solver.iterations"));
        assert!(s.contains("17"));
        // zero counters are suppressed in the summary...
        assert!(!s.contains("nonexistent"));
        // ...but histograms with data show up.
        assert!(s.contains("solve.latency_us"));
    }

    #[test]
    fn reads_v1_documents_with_defaults() {
        // A schema-v1 histogram entry: no help, no quantile estimates.
        let v1 = r#"{
  "schema_version": 1,
  "name": "sense",
  "meta": {},
  "spans": [],
  "counters": {"solver.iterations": 3},
  "gauges": {},
  "histograms": [
    {"name": "solve.latency_us", "count": 1, "sum": 40, "min": 40, "max": 40,
     "bounds": [100, 1000], "buckets": [1, 0, 0]}
  ]
}"#;
        let report = RunReport::from_json(v1).unwrap();
        assert_eq!(report.counters[0], ("solver.iterations".to_string(), 3));
        let h = &report.histograms[0];
        assert_eq!(h.help, "");
        assert_eq!(h.p50, None);
        assert_eq!(h.count, 1);
        // Re-serializing upgrades the stamp to the current version.
        let v = report.to_json();
        assert_eq!(v.get("schema_version").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
    }

    #[test]
    fn report_carries_help_and_quantiles() {
        let report = sample_report();
        let h = &report.histograms[0];
        assert_eq!(h.help, "solve latency");
        assert!(h.p50.is_some() && h.p90.is_some() && h.p99.is_some());
        let back = RunReport::from_json(&report.to_json().to_pretty()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn telemetry_frame_round_trips_and_is_one_line() {
        use crate::health::{Health, HealthReason};
        static FRAME_DEFS: &[MetricDef] = &[
            MetricDef::counter("s.windows", "windows"),
            MetricDef::gauge("s.stale", "stale tags"),
            MetricDef::histogram("s.lat", "latency", &[10.0]),
        ];
        let mut reg = crate::metrics::Registry::new(FRAME_DEFS);
        reg.add(0, 7);
        reg.set(1, 2.0);
        reg.observe(2, 5.0); // histogram: must NOT appear in the frame
        let frame = TelemetryFrame::from_delta(
            3,
            400,
            &reg.snapshot(),
            Some(HealthReport {
                verdict: Health::Degraded,
                reasons: vec![HealthReason {
                    rule: "stale_tags".into(),
                    level: Health::Degraded,
                    value: 2.0,
                    threshold: 1.0,
                }],
            }),
        );
        let line = frame.to_jsonl_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("\"s.windows\":7"));
        assert!(!line.contains("s.lat"), "histograms are excluded from frames");
        assert!(line.contains("\"verdict\":\"degraded\""));
        assert_eq!(TelemetryFrame::from_json(&line).unwrap(), frame);

        // Health-less frames omit the key entirely and still round-trip.
        let bare = TelemetryFrame::from_delta(0, 100, &reg.snapshot(), None);
        assert!(!bare.to_jsonl_line().contains("health"));
        assert_eq!(TelemetryFrame::from_json(&bare.to_jsonl_line()).unwrap(), bare);
    }

    #[test]
    fn prometheus_exposition_is_cumulative() {
        let p = sample_report().prometheus();
        assert!(p.contains("# TYPE solver_iterations counter\nsolver_iterations 17\n"));
        assert!(p.contains("batch_workers 4\n"));
        // HELP lines exist for histograms only; counters/gauges keep the
        // original HELP-less format.
        assert!(p.contains("# HELP solve_latency_us solve latency\n"));
        assert!(!p.contains("# HELP solver_iterations"));
        assert!(!p.contains("# HELP batch_workers"));
        assert!(p.contains("solve_latency_us_bucket{le=\"100\"} 1\n"));
        assert!(p.contains("solve_latency_us_bucket{le=\"1000\"} 2\n"));
        assert!(p.contains("solve_latency_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(p.contains("solve_latency_us_count 2\n"));
    }

    #[test]
    fn snapshot_envelope_is_versioned() {
        let v = snapshot("bench_solver", vec![("evals", JsonValue::Num(12.0))]);
        assert_eq!(v.get("schema_version").and_then(JsonValue::as_u64), Some(SCHEMA_VERSION));
        assert_eq!(v.get("name").and_then(JsonValue::as_str), Some("bench_solver"));
        assert_eq!(v.get("evals").and_then(JsonValue::as_u64), Some(12));
    }
}
