//! Strategies: how argument values are drawn.

use crate::test_runner::TestRng;
use core::ops::{Range, RangeInclusive};

/// A source of values for one `proptest!` argument.
///
/// Unlike upstream there is no shrinking: a strategy only knows how to
/// sample. Ranges, tuples of strategies, and the `collection` helpers all
/// implement it.
pub trait Strategy {
    /// The type of the produced values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_f64(self.start, self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_f64(self.start as f64, self.end as f64) as f32
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_u64(0, span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.gen_u64(0, span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

pub mod collection {
    //! `vec` / `btree_set` strategies with flexible size bounds.

    use super::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};
    use std::collections::BTreeSet;

    /// A length specification: an exact `usize` or a (half-open or
    /// inclusive) range of lengths.
    pub trait SizeBounds {
        /// Draws a concrete length.
        fn sample_size(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeBounds for usize {
        fn sample_size(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeBounds for Range<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_usize(self.start, self.end)
        }
    }

    impl SizeBounds for RangeInclusive<usize> {
        fn sample_size(&self, rng: &mut TestRng) -> usize {
            rng.gen_usize(*self.start(), *self.end() + 1)
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub fn vec<S: Strategy, Z: SizeBounds>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeBounds> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample_size(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s with a size in `size` (upstream
    /// semantics: the size range bounds the *attempted* size; duplicate
    /// draws may produce a smaller set, never below one element for a
    /// non-empty request).
    pub fn btree_set<S, Z>(element: S, size: Z) -> BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeBounds,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone, Copy)]
    pub struct BTreeSetStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S, Z> Strategy for BTreeSetStrategy<S, Z>
    where
        S: Strategy,
        S::Value: Ord,
        Z: SizeBounds,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample_size(rng);
            let mut out = BTreeSet::new();
            // Bounded draws: duplicates may leave the set short of the
            // target, which matches upstream's tolerance for sparse
            // element domains.
            for _ in 0..target.saturating_mul(8).max(8) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.sample(rng));
            }
            out
        }
    }
}
