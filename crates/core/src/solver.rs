//! The joint disentangling solver (paper §IV-C, §V-A).
//!
//! Given N ≥ 3 antenna observations `(kᵢ, bᵢ)`, solve the 2N equations
//!
//! ```text
//! kᵢ = 4π · dist(Aᵢ, (x, y)) / c + k_t
//! bᵢ = θ_orient(Aᵢ, α) + b_t        (mod 2π)
//! ```
//!
//! for the 5 unknowns `(x, y, α, k_t, b_t)` by weighted nonlinear least
//! squares. The intercept residuals are *angular* (wrapped into
//! `(-π, π]`), which makes the cost surface multimodal in `α`; a coarse
//! multi-start over the working region × orientation grid followed by
//! Levenberg–Marquardt refinement finds the global optimum reliably.
//!
//! Parameter magnitudes differ wildly (`k_t` ~1e-8 rad/Hz vs `x` ~1 m), so
//! the LM core uses per-parameter step scales, MINPACK style.

use crate::model::AntennaObservation;
use rfp_geom::{angle, Region2, Vec2};
use rfp_phys::polarization::{orientation_phase, planar_dipole, projection_magnitude};
use rfp_phys::propagation;

/// Per-scene constants of the 2-D solve, computed once and shared
/// read-only by every solve against the same `(region, config)` pair —
/// the batch engine builds one of these per scene and hands it to all
/// workers (see `crate::batch`).
#[derive(Debug, Clone)]
pub struct SolveSeeds {
    /// Multi-start position grid over the working region.
    position_starts: Vec<Vec2>,
    /// Number of α seeds scanned per position candidate.
    alpha_steps: usize,
    /// Region candidates must refine into to be preferred.
    admissible: Region2,
}

impl SolveSeeds {
    /// Precomputes the multi-start seeds for `region` under `config`.
    pub fn new(region: Region2, config: &SolverConfig) -> Self {
        let (nx, ny) = config.position_starts;
        SolveSeeds {
            position_starts: region.grid(nx.max(1), ny.max(1)).collect(),
            alpha_steps: (config.orientation_starts.max(1) * 8).max(24),
            admissible: region.expanded(0.3),
        }
    }
}

/// Reusable scratch buffers for repeated 2-D solves. All contents are
/// overwritten by each solve; reusing one workspace across calls only
/// avoids reallocation, it never changes results.
#[derive(Debug, Default)]
pub struct SolverWorkspace {
    lm: LmWorkspace,
    scratch: Vec<f64>,
    position_candidates: Vec<(Vec<f64>, f64)>,
    alpha_ranked: Vec<(f64, f64)>,
}

/// Configuration of the 2-D disentangling solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Expected slope noise (rad/Hz); weights the slope residuals.
    pub slope_sigma: f64,
    /// Expected intercept noise (rad); weights the intercept residuals.
    pub intercept_sigma: f64,
    /// Multi-start position grid (nx, ny) over the working region.
    pub position_starts: (usize, usize),
    /// Multi-start orientation count over `[0, π)`.
    pub orientation_starts: usize,
    /// Maximum LM iterations per start.
    pub max_iterations: usize,
    /// Relative cost-decrease tolerance for LM convergence.
    pub tolerance: f64,
    /// Expected RSSI noise (dB) used when ranking candidate modes by
    /// polarization-mismatch consistency. The wrapped intercept equations
    /// admit near-twin `α` solutions with 3 antennas; the per-antenna RSSI
    /// pattern (`20·log10` of the dipole projection) breaks the tie. Set to
    /// `f64::INFINITY` to disable and rank by phase cost alone.
    pub rssi_sigma_db: f64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            slope_sigma: 1.0e-10,
            intercept_sigma: 0.08,
            position_starts: (6, 6),
            orientation_starts: 6,
            max_iterations: 60,
            tolerance: 1e-10,
            rssi_sigma_db: 1.0,
        }
    }
}

/// The disentangled physical state of one tag in 2-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagEstimate2D {
    /// Tag coordinates on the surveillance plane, metres.
    pub position: Vec2,
    /// Tag dipole orientation, radians in `[0, π)` (dipoles are
    /// π-symmetric).
    pub orientation: f64,
    /// Material/device slope term `k_t`, rad/Hz.
    pub kt: f64,
    /// Material/device intercept term `b_t`, radians in `[0, 2π)`.
    pub bt: f64,
    /// Final weighted cost (sum of squared sigma-normalized residuals).
    pub cost: f64,
    /// RMS of the sigma-normalized residuals (≈1 when the noise model is
    /// well calibrated, ≫1 when the linear model is violated).
    pub residual_rms: f64,
    /// 1-σ position uncertainty from the local curvature of the cost
    /// surface (Gauss–Newton covariance), metres. A *statistical* bound —
    /// model violations (multipath bias) are not included.
    pub position_std_m: f64,
    /// 1-σ orientation uncertainty, radians (same caveat).
    pub orientation_std_rad: f64,
    /// Full 2×2 position covariance `[[σxx², σxy], [σxy, σyy²]]`, m².
    pub position_cov: [[f64; 2]; 2],
}

impl TagEstimate2D {
    /// The 1-σ uncertainty ellipse of the position estimate, if the
    /// covariance is well-formed.
    pub fn uncertainty_ellipse(&self) -> Option<rfp_geom::CovarianceEllipse> {
        rfp_geom::CovarianceEllipse::from_covariance(self.position_cov)
    }
}

/// Errors from [`solve_2d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// Fewer than three antennas: 2N < 5 unknowns.
    TooFewAntennas {
        /// Number of observations provided.
        provided: usize,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::TooFewAntennas { provided } => write!(
                f,
                "2-D disentangling needs at least 3 antennas, got {provided}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solves the 2-D disentangling problem.
///
/// `region` bounds the multi-start grid (the paper's known working region);
/// the refined position may land slightly outside it — it is a seed
/// region, not a hard constraint.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d(
    observations: &[AntennaObservation],
    region: Region2,
    config: &SolverConfig,
) -> Result<TagEstimate2D, SolveError> {
    let seeds = SolveSeeds::new(region, config);
    let mut workspace = SolverWorkspace::default();
    solve_2d_seeded(observations, &seeds, config, &mut workspace)
}

/// [`solve_2d`] against precomputed [`SolveSeeds`] and a reusable
/// [`SolverWorkspace`] — the hot-path entry used by the batch engine.
/// Produces bit-identical results to [`solve_2d`] with the same inputs.
///
/// # Errors
///
/// [`SolveError::TooFewAntennas`] when fewer than 3 observations are given.
pub fn solve_2d_seeded(
    observations: &[AntennaObservation],
    seeds: &SolveSeeds,
    config: &SolverConfig,
    workspace: &mut SolverWorkspace,
) -> Result<TagEstimate2D, SolveError> {
    if observations.len() < 3 {
        return Err(SolveError::TooFewAntennas { provided: observations.len() });
    }

    let residual = |p: &[f64], out: &mut Vec<f64>| {
        residuals_2d(observations, p, config, out);
    };
    // Parameter step scales for numeric differentiation and LM damping:
    // x (m), y (m), α (rad), k_t (rad/Hz), b_t (rad).
    let steps = [1e-4, 1e-4, 1e-4, 1e-13, 1e-4];

    // The problem separates naturally, which both speeds the solve up and
    // avoids local minima:
    //
    // 1. Position + k_t depend only on the slope equations — a smooth
    //    3-parameter least-squares problem seeded from a coarse grid.
    // 2. Given a position candidate, orientation is found by scanning α
    //    over [0, π) with the closed-form circular-mean b_t — the wrapped
    //    intercept residuals are multimodal in α, so a scan is the robust
    //    way in.
    // 3. A full joint 5-parameter LM refinement from the combined seeds
    //    lets the two halves inform each other.
    //
    // Candidates refining to a point outside the (slightly expanded)
    // working region are physically impossible deployments — when the
    // per-antenna observations are inconsistent (multipath bias), the
    // near-degenerate range direction otherwise lets the unconstrained
    // optimum drift metres away. Prefer in-region candidates; fall back to
    // the overall best only if no start stayed inside.
    let admissible = seeds.admissible;

    // Stage 1: slope-only position solve.
    let slope_residual = |p: &[f64], out: &mut Vec<f64>| {
        let pos = Vec2::new(p[0], p[1]).with_z(0.0);
        let kt = p[2];
        out.clear();
        for o in observations {
            let d = o.pose.position().distance(pos);
            out.push((o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma);
        }
    };
    let slope_steps = [1e-4, 1e-4, 1e-13];
    let position_candidates = &mut workspace.position_candidates;
    position_candidates.clear();
    for &seed_pos in &seeds.position_starts {
        let kt0 = seed_kt(observations, seed_pos);
        let (p, cost) = levenberg_marquardt_with(
            &mut workspace.lm,
            &slope_residual,
            vec![seed_pos.x, seed_pos.y, kt0],
            &slope_steps,
            config.max_iterations,
            config.tolerance,
        );
        position_candidates.push((p, cost));
    }
    position_candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    // Keep the best in-region candidates (plus the overall best as backup).
    let mut stage1: Vec<Vec<f64>> = position_candidates
        .iter()
        .filter(|(p, _)| admissible.contains(Vec2::new(p[0], p[1])))
        .take(2)
        .map(|(p, _)| p.clone())
        .collect();
    if stage1.is_empty() {
        stage1.push(position_candidates[0].0.clone());
    }

    // Stages 2 + 3: α scan then joint refinement. Final candidates are
    // ranked by phase cost *plus* the RSSI mode penalty: the wrapped
    // intercept system admits near-twin α solutions (3 antennas, 2
    // intercept unknowns), and the per-antenna polarization-mismatch
    // pattern in the RSSI is the physical tie-breaker.
    let alpha_steps = seeds.alpha_steps;
    let mut best_inside: Option<(Vec<f64>, f64, f64)> = None;
    let mut best_any: Option<(Vec<f64>, f64, f64)> = None;
    let scratch = &mut workspace.scratch;
    for cand in &stage1 {
        // Rank α seeds by the intercept-only cost at this position.
        let alpha_ranked = &mut workspace.alpha_ranked;
        alpha_ranked.clear();
        for a in 0..alpha_steps {
            let alpha0 = std::f64::consts::PI * a as f64 / alpha_steps as f64;
            let bt0 = seed_bt(observations, alpha0);
            let p = [cand[0], cand[1], alpha0, cand[2], bt0];
            residuals_2d(observations, &p, config, scratch);
            let mut cost: f64 = scratch.iter().map(|v| v * v).sum();
            // Rank with the RSSI mode penalty already applied: spurious
            // twin-α basins often fit the phases *better* than the true
            // mode under noise, and would otherwise crowd truth out of
            // the refinement short-list entirely.
            cost += rssi_mode_penalty(
                observations,
                Vec2::new(cand[0], cand[1]),
                alpha0,
                config.rssi_sigma_db,
            );
            alpha_ranked.push((alpha0, cost));
        }
        alpha_ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
        for &(alpha0, _) in alpha_ranked.iter().take(4) {
            let bt0 = seed_bt(observations, alpha0);
            let p0 = vec![cand[0], cand[1], alpha0, cand[2], bt0];
            let (p, cost) = levenberg_marquardt_with(
                &mut workspace.lm,
                &residual,
                p0,
                &steps,
                config.max_iterations,
                config.tolerance,
            );
            let key = cost
                + rssi_mode_penalty(
                    observations,
                    Vec2::new(p[0], p[1]),
                    p[2],
                    config.rssi_sigma_db,
                );
            if admissible.contains(Vec2::new(p[0], p[1]))
                && best_inside.as_ref().is_none_or(|&(_, _, k)| key < k)
            {
                best_inside = Some((p.clone(), cost, key));
            }
            if best_any.as_ref().is_none_or(|&(_, _, k)| key < k) {
                best_any = Some((p, cost, key));
            }
        }
    }

    let (p, cost, _) = best_inside.or(best_any).expect("at least one start");
    let n_res = 2 * observations.len();
    let steps = [1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
    let (position_std_m, orientation_std_rad, position_cov) =
        estimate_uncertainty(&residual, &p, &steps);
    Ok(TagEstimate2D {
        position: Vec2::new(p[0], p[1]),
        orientation: p[2].rem_euclid(std::f64::consts::PI),
        kt: p[3],
        bt: angle::wrap_tau(p[4]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
        position_std_m,
        orientation_std_rad,
        position_cov,
    })
}

/// Gauss–Newton covariance at the solution: `(JᵀJ)⁻¹` of the
/// sigma-normalized residuals. Returns `(position σ, orientation σ,
/// position 2×2 covariance)`; infinities when the curvature is singular.
// Index loops mirror the matrix math; iterator forms obscure the kernels.
#[allow(clippy::needless_range_loop)]
fn estimate_uncertainty<F>(
    residual: &F,
    p: &[f64],
    steps: &[f64],
) -> (f64, f64, [[f64; 2]; 2])
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let n = p.len();
    let mut r_plus = Vec::new();
    let mut r_minus = Vec::new();
    residual(p, &mut r_plus);
    let m = r_plus.len();
    let mut jac = vec![vec![0.0; n]; m];
    let mut work = p.to_vec();
    for j in 0..n {
        let h = steps[j];
        work[j] = p[j] + h;
        residual(&work, &mut r_plus);
        work[j] = p[j] - h;
        residual(&work, &mut r_minus);
        work[j] = p[j];
        for i in 0..m {
            jac[i][j] = (r_plus[i] - r_minus[i]) / (2.0 * h);
        }
    }
    let mut jtj = vec![vec![0.0; n]; n];
    for i in 0..m {
        for a in 0..n {
            for b in 0..n {
                jtj[a][b] += jac[i][a] * jac[i][b];
            }
        }
    }
    // Invert by solving against identity columns; keep the full columns so
    // the position block's off-diagonal is available.
    let mut cov_cols: Vec<Vec<f64>> = Vec::with_capacity(n);
    for col in 0..n {
        let mut e = vec![0.0; n];
        e[col] = 1.0;
        match solve_linear(jtj.clone(), e) {
            Some(x) if x[col].is_finite() && x[col] >= 0.0 => cov_cols.push(x),
            _ => {
                let inf = [[f64::INFINITY; 2]; 2];
                return (f64::INFINITY, f64::INFINITY, inf);
            }
        }
    }
    let position_cov = [
        [cov_cols[0][0], cov_cols[1][0]],
        [cov_cols[0][1], cov_cols[1][1]],
    ];
    let position_std = (cov_cols[0][0] + cov_cols[1][1]).sqrt();
    let orientation_std = cov_cols[2][2].sqrt();
    (position_std, orientation_std, position_cov)
}

/// Mean `kᵢ − 4π dᵢ(pos)/c` over antennas — the closed-form `k_t` seed for
/// a hypothesised position.
fn seed_kt(observations: &[AntennaObservation], pos: Vec2) -> f64 {
    let sum: f64 = observations
        .iter()
        .map(|o| {
            let d = o.pose.position().distance(pos.with_z(0.0));
            o.slope - propagation::slope_from_distance(d)
        })
        .sum();
    sum / observations.len() as f64
}

/// RSSI-consistency penalty of a candidate mode `(pos, α)`: the weighted
/// variance of `rssiᵢ + 40·log10(dᵢ) − 20·log10(pᵢ(α))` across antennas.
///
/// The backscatter link budget (`rfp_phys::rssi`) says that quantity is a
/// per-tag constant (transmit power + material loss) plus noise, so modes
/// whose predicted polarization projections `pᵢ(α)` disagree with the
/// measured RSSI pattern score high. Returns 0 when disabled
/// (`sigma_db = ∞`) or when any observation lacks a finite RSSI.
pub(crate) fn rssi_mode_penalty(
    observations: &[AntennaObservation],
    pos: Vec2,
    alpha: f64,
    sigma_db: f64,
) -> f64 {
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let w = planar_dipole(alpha);
    rssi_pattern_penalty(observations, |o| {
        let d = o.pose.position().distance(pos.with_z(0.0));
        (d, projection_magnitude(&o.pose, w))
    }, sigma_db)
}

/// Shared core of the 2-D and 3-D RSSI mode penalties: `predict` returns
/// each observation's `(distance, projection magnitude)` under the
/// candidate mode.
pub(crate) fn rssi_pattern_penalty<F>(
    observations: &[AntennaObservation],
    predict: F,
    sigma_db: f64,
) -> f64
where
    F: Fn(&AntennaObservation) -> (f64, f64),
{
    if !sigma_db.is_finite() || sigma_db <= 0.0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let n = observations.len() as f64;
    for o in observations {
        if !o.mean_rssi_dbm.is_finite() {
            return 0.0;
        }
        let (d, proj) = predict(o);
        if proj < 1e-3 || d <= 0.0 {
            // The mode predicts an unreadable antenna that in fact read the
            // tag: strongly implausible.
            return 1e6;
        }
        let m = o.mean_rssi_dbm + 40.0 * d.log10() - 20.0 * proj.log10();
        sum += m;
        sum_sq += m * m;
    }
    let variance = (sum_sq - sum * sum / n).max(0.0);
    variance / (sigma_db * sigma_db)
}

/// Circular mean of `bᵢ − θ_orient(Aᵢ, α₀)` — the closed-form `b_t` seed
/// for a hypothesised orientation.
fn seed_bt(observations: &[AntennaObservation], alpha0: f64) -> f64 {
    let w = planar_dipole(alpha0);
    angle::circular_mean(
        observations
            .iter()
            .map(|o| o.intercept - orientation_phase(&o.pose, w)),
    )
    .unwrap_or(0.0)
}

/// Fills `out` with the 2N sigma-normalized residuals at parameters `p`.
fn residuals_2d(
    observations: &[AntennaObservation],
    p: &[f64],
    config: &SolverConfig,
    out: &mut Vec<f64>,
) {
    let pos = Vec2::new(p[0], p[1]).with_z(0.0);
    let w = planar_dipole(p[2]);
    let (kt, bt) = (p[3], p[4]);
    out.clear();
    for o in observations {
        let d = o.pose.position().distance(pos);
        let k_model = propagation::slope_from_distance(d) + kt;
        out.push((o.slope - k_model) / config.slope_sigma);
        let b_model = orientation_phase(&o.pose, w) + bt;
        out.push(angle::wrap_pi(o.intercept - b_model) / config.intercept_sigma);
    }
}

/// Small dense Levenberg–Marquardt with numeric Jacobian and per-parameter
/// step scales (MINPACK-style diagonal damping). Returns the refined
/// parameters and the final cost (sum of squared residuals).
///
/// `residual` fills its output vector with the residuals at the supplied
/// parameters; `steps` gives the finite-difference step per parameter and
/// must have the same length as `p`. Exposed publicly because the
/// baselines reuse it for their own small least-squares problems.
///
/// # Example
///
/// ```
/// use rfp_core::solver::levenberg_marquardt;
/// // Fit y = a·x to the points (1, 2), (2, 4).
/// let residual = |p: &[f64], out: &mut Vec<f64>| {
///     out.clear();
///     out.push(2.0 - p[0] * 1.0);
///     out.push(4.0 - p[0] * 2.0);
/// };
/// let (p, cost) = levenberg_marquardt(&residual, vec![0.0], &[1e-6], 50, 1e-14);
/// assert!((p[0] - 2.0).abs() < 1e-8);
/// assert!(cost < 1e-12);
/// ```
pub fn levenberg_marquardt<F>(
    residual: &F,
    p: Vec<f64>,
    steps: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let mut workspace = LmWorkspace::default();
    levenberg_marquardt_with(&mut workspace, residual, p, steps, max_iterations, tolerance)
}

/// Reusable buffers for [`levenberg_marquardt_with`]: the residual and
/// Jacobian storage whose allocation otherwise dominates small repeated
/// solves. Contents are fully overwritten by every call.
#[derive(Debug, Default)]
pub struct LmWorkspace {
    r: Vec<f64>,
    r_plus: Vec<f64>,
    r_minus: Vec<f64>,
    /// Row-major `m × n` Jacobian.
    jac: Vec<f64>,
}

/// [`levenberg_marquardt`] with caller-owned scratch buffers; produces
/// bit-identical results. This is the hot-path entry for the batch engine,
/// where one [`LmWorkspace`] per worker thread is reused across every
/// solve that worker performs.
#[allow(clippy::needless_range_loop)]
pub fn levenberg_marquardt_with<F>(
    workspace: &mut LmWorkspace,
    residual: &F,
    mut p: Vec<f64>,
    steps: &[f64],
    max_iterations: usize,
    tolerance: f64,
) -> (Vec<f64>, f64)
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let n = p.len();
    debug_assert_eq!(steps.len(), n);
    let LmWorkspace { r, r_plus, r_minus, jac } = workspace;
    residual(&p, r);
    let mut cost: f64 = r.iter().map(|v| v * v).sum();
    let m = r.len();

    let mut lambda = 1e-3;
    jac.clear();
    jac.resize(m * n, 0.0);

    for _ in 0..max_iterations {
        // Numeric Jacobian (central differences with per-parameter steps).
        for j in 0..n {
            let h = steps[j];
            let saved = p[j];
            p[j] = saved + h;
            residual(&p, r_plus);
            p[j] = saved - h;
            residual(&p, r_minus);
            p[j] = saved;
            for i in 0..m {
                jac[i * n + j] = (r_plus[i] - r_minus[i]) / (2.0 * h);
            }
        }
        // Normal equations.
        let mut jtj = vec![vec![0.0; n]; n];
        let mut jtr = vec![0.0; n];
        for i in 0..m {
            for a in 0..n {
                jtr[a] += jac[i * n + a] * r[i];
                for b in a..n {
                    jtj[a][b] += jac[i * n + a] * jac[i * n + b];
                }
            }
        }
        for a in 0..n {
            for b in 0..a {
                jtj[a][b] = jtj[b][a];
            }
        }

        // Damped solve with retry on cost increase.
        let mut improved = false;
        for _ in 0..8 {
            let mut a_mat = jtj.clone();
            for d in 0..n {
                a_mat[d][d] += lambda * jtj[d][d].max(1e-12);
            }
            let rhs: Vec<f64> = jtr.iter().map(|v| -v).collect();
            let Some(delta) = solve_linear(a_mat, rhs) else {
                lambda *= 10.0;
                continue;
            };
            let candidate: Vec<f64> = p.iter().zip(&delta).map(|(a, d)| a + d).collect();
            residual(&candidate, r_plus);
            let new_cost: f64 = r_plus.iter().map(|v| v * v).sum();
            if new_cost < cost {
                let rel_drop = (cost - new_cost) / cost.max(1e-300);
                p = candidate;
                std::mem::swap(r, r_plus);
                cost = new_cost;
                lambda = (lambda / 3.0).max(1e-12);
                improved = true;
                if rel_drop < tolerance {
                    return (p, cost);
                }
                break;
            }
            lambda *= 4.0;
        }
        if !improved {
            break;
        }
    }
    (p, cost)
}

/// Gaussian elimination with partial pivoting; `None` when singular.
#[allow(clippy::needless_range_loop)]
fn solve_linear(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-300 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::AntennaPose;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    /// Builds exact (noise-free) observations straight from the forward
    /// model, bypassing the simulator.
    fn synthetic_observations(
        poses: &[AntennaPose],
        truth: (Vec2, f64, f64, f64),
    ) -> Vec<AntennaObservation> {
        let (pos, alpha, kt, bt) = truth;
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        // Use the simulator only to obtain correctly-shaped observations;
        // then overwrite slope/intercept with exact values.
        let tag = SimTag::nominal(0).with_motion(Motion::planar_static(pos, alpha));
        let survey = scene.survey(&tag, 0);
        poses
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&pose, reads)| {
                let mut o =
                    extract_observation(pose, reads, &ExtractConfig::paper()).unwrap();
                let d = pose.position().distance(pos.with_z(0.0));
                o.slope = propagation::slope_from_distance(d) + kt;
                o.intercept = angle::wrap_tau(
                    orientation_phase(&pose, planar_dipole(alpha)) + bt,
                );
                o
            })
            .collect()
    }

    fn region() -> Region2 {
        Scene::standard_2d().region()
    }

    #[test]
    fn recovers_exact_truth() {
        let poses = Scene::standard_2d().antenna_poses();
        let truth_pos = Vec2::new(0.3, 1.7);
        let obs = synthetic_observations(&poses, (truth_pos, 0.8, -2.5e-8, 1.3));
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(est.position.distance(truth_pos) < 1e-4, "pos {}", est.position);
        assert!(angle::dipole_distance(est.orientation, 0.8) < 1e-4);
        assert!((est.kt + 2.5e-8).abs() < 1e-12);
        assert!(angle::distance(est.bt, 1.3) < 1e-4);
        assert!(est.residual_rms < 1e-3);
    }

    #[test]
    fn orientation_recovered_mod_pi() {
        let poses = Scene::standard_2d().antenna_poses();
        // Truth orientation 0.4 + π must come back as 0.4.
        let obs = synthetic_observations(
            &poses,
            (Vec2::new(0.9, 1.1), 0.4 + std::f64::consts::PI, 0.0, 0.2),
        );
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(angle::dipole_distance(est.orientation, 0.4) < 1e-4);
        assert!((0.0..std::f64::consts::PI).contains(&est.orientation));
    }

    #[test]
    fn corners_of_region_solvable() {
        let poses = Scene::standard_2d().antenna_poses();
        for &(x, y) in &[(-0.4, 0.6), (1.4, 0.6), (-0.4, 2.4), (1.4, 2.4)] {
            let truth = Vec2::new(x, y);
            let obs = synthetic_observations(&poses, (truth, 1.2, -1e-8, 4.0));
            let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
            assert!(
                est.position.distance(truth) < 1e-3,
                "corner ({x},{y}): got {}",
                est.position
            );
        }
    }

    #[test]
    fn end_to_end_with_noise_lands_near_truth() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.6, 1.3);
        let tag = SimTag::with_seeded_diversity(3)
            .with_motion(Motion::planar_static(truth, 0.5));
        let survey = scene.survey(&tag, 11);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 30.0, "error {err_cm} cm");
        let orient_err = angle::dipole_distance(est.orientation, 0.5).to_degrees();
        assert!(orient_err < 30.0, "orientation error {orient_err}°");
    }

    #[test]
    fn too_few_antennas_rejected() {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = synthetic_observations(&poses, (Vec2::new(0.5, 1.5), 0.0, 0.0, 0.0));
        assert_eq!(
            solve_2d(&obs[..2], region(), &SolverConfig::default()).unwrap_err(),
            SolveError::TooFewAntennas { provided: 2 }
        );
    }

    #[test]
    fn lm_minimizes_quadratic() {
        // Sanity-check the LM core on a known problem: fit y = a·x + b.
        let data: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64 - 3.0)).collect();
        let residual = |p: &[f64], out: &mut Vec<f64>| {
            out.clear();
            for (x, y) in &data {
                out.push(y - (p[0] * x + p[1]));
            }
        };
        let (p, cost) =
            levenberg_marquardt(&residual, vec![0.0, 0.0], &[1e-5, 1e-5], 100, 1e-14);
        assert!((p[0] - 2.0).abs() < 1e-6);
        assert!((p[1] + 3.0).abs() < 1e-6);
        assert!(cost < 1e-10);
    }

    #[test]
    fn uncertainty_reported_and_meaningful() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.5, 1.4);
        let tag = SimTag::with_seeded_diversity(4)
            .with_motion(Motion::planar_static(truth, 0.7));
        let survey = scene.survey(&tag, 21);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let est = solve_2d(&obs, region(), &SolverConfig::default()).unwrap();
        assert!(est.position_std_m.is_finite() && est.position_std_m > 0.0);
        assert!(est.orientation_std_rad.is_finite() && est.orientation_std_rad > 0.0);
        // The reported σ should be in the same decade as the actual error
        // regime (centimetres / ~0.2 rad).
        assert!(est.position_std_m < 0.5, "σ_pos {}", est.position_std_m);
        assert!(est.orientation_std_rad < 1.0, "σ_α {}", est.orientation_std_rad);
        // The ellipse is well-formed and elongated along the weakly
        // constrained (range) direction — its major axis exceeds its minor.
        let e = est.uncertainty_ellipse().expect("well-formed covariance");
        assert!(e.semi_major >= e.semi_minor);
        assert!(e.semi_major > 0.0 && e.semi_major < 0.5);
        // Consistency with the scalar summary.
        let trace = (e.semi_major * e.semi_major + e.semi_minor * e.semi_minor).sqrt();
        assert!((trace - est.position_std_m).abs() < 1e-9);
    }

    #[test]
    fn solve_linear_rejects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear(a, vec![1.0, 2.0]).is_none());
        let a = vec![vec![2.0, 0.0], vec![0.0, 0.5]];
        let x = solve_linear(a, vec![4.0, 1.0]).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
    }
}
