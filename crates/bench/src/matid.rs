//! Material-identification dataset builder and evaluation
//! (Figs. 10, 11, 13, 17–20).
//!
//! Follows the paper's methodology (§VI-B): per material, 150 measurements
//! at varied positions — 100 at 0° and 50 at 90° orientation; half of the
//! 0° trials train the classifier, everything else validates. Each
//! measurement runs the *full* RF-Prism pipeline (survey → disentangle →
//! calibrated features), so classification quality reflects the quality of
//! the disentangling, exactly as in the paper.

use crate::setup;
use rfp_core::calibration::DeviceCalibration;
use rfp_core::material::{ClassifierKind, MaterialIdentifier};
use rfp_geom::Vec2;
use rfp_ml::dataset::Dataset;
use rfp_ml::metrics::ConfusionMatrix;
use rfp_phys::Material;
use rfp_sim::Scene;

/// One labelled measurement: features plus bookkeeping for slicing.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Flattened feature vector (paper Eq. 9).
    pub features: Vec<f64>,
    /// True class index into [`Material::CLASSES`].
    pub label: usize,
    /// True position of the measurement.
    pub position: Vec2,
    /// Tag orientation, radians.
    pub alpha: f64,
    /// Distance region index.
    pub region: usize,
}

/// The evaluation corpus: training samples (0° only) and validation
/// samples (0° + 90°).
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    /// Training samples.
    pub train: Vec<Sample>,
    /// Validation samples.
    pub validation: Vec<Sample>,
}

/// Builds the paper's measurement corpus on `scene`.
///
/// `per_material_0deg` measurements at 0° (half train / half validate) and
/// `per_material_90deg` at 90° (all validate). Positions cycle through the
/// 25-point grid; five tag identities (each with its one-time device
/// calibration) are used in rotation.
pub fn build_corpus(
    scene: &Scene,
    per_material_0deg: usize,
    per_material_90deg: usize,
) -> Corpus {
    let grid = setup::evaluation_grid(scene);
    let tags: Vec<(u64, DeviceCalibration)> =
        (1..=5).map(|s| (s, setup::calibrate_tag(s, 900 + s))).collect();
    let prism = setup::prism_for(scene);
    let channel_count = scene.reader().plan.channel_count();

    let mut corpus = Corpus::default();
    let mut seed = 0u64;
    for (class, &material) in Material::CLASSES.iter().enumerate() {
        for (count, alpha, split_train) in [
            (per_material_0deg, 0.0f64, true),
            (per_material_90deg, 90.0f64.to_radians(), false),
        ] {
            for i in 0..count {
                seed += 1;
                let position = grid[(seed as usize * 7 + i) % grid.len()];
                let (tag_seed, calibration) = &tags[seed as usize % tags.len()];
                let tag = setup::place_tag(*tag_seed, material, position, alpha);
                let survey = scene.survey(&tag, 200_000 + seed * 13);
                let result = match prism.sense(&survey.per_antenna) {
                    Ok(r) => r,
                    Err(_) => continue, // rejected window; paper drops it too
                };
                let features =
                    result.material_features(calibration, channel_count).to_vector();
                let sample = Sample {
                    features,
                    label: class,
                    position,
                    alpha,
                    region: setup::distance_region(scene, position),
                };
                if split_train && i % 2 == 0 {
                    corpus.train.push(sample);
                } else {
                    corpus.validation.push(sample);
                }
            }
        }
    }
    corpus
}

/// Turns samples into an `rfp-ml` dataset.
pub fn to_dataset(samples: &[Sample]) -> Dataset {
    let mut ds = Dataset::new(Material::CLASSES.len());
    for s in samples {
        ds.push(s.features.clone(), s.label);
    }
    ds
}

/// Trains `kind` on the corpus and evaluates on a validation subset
/// selected by `pred`, returning the confusion matrix.
pub fn evaluate(
    corpus: &Corpus,
    kind: &ClassifierKind,
    mut pred: impl FnMut(&Sample) -> bool,
) -> ConfusionMatrix {
    let identifier = MaterialIdentifier::train(&to_dataset(&corpus.train), kind);
    let mut cm = ConfusionMatrix::new(Material::CLASSES.len());
    for s in corpus.validation.iter().filter(|s| pred(s)) {
        cm.record(s.label, identifier.predict_index(&s.features));
    }
    cm
}

/// Evaluates on the full validation set.
pub fn evaluate_all(corpus: &Corpus, kind: &ClassifierKind) -> ConfusionMatrix {
    evaluate(corpus, kind, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> Corpus {
        // Reduced counts to keep the unit test quick.
        build_corpus(&Scene::standard_2d(), 8, 4)
    }

    #[test]
    fn corpus_split_follows_paper() {
        let c = small_corpus();
        // 8 materials × 4 training samples (half of 8 at 0°).
        assert!(c.train.len() >= 8 * 3, "train {}", c.train.len());
        assert!(c.validation.len() >= 8 * 6, "validation {}", c.validation.len());
        assert!(c.train.iter().all(|s| s.alpha == 0.0));
        assert!(c.validation.iter().any(|s| s.alpha > 0.0));
        // 52-dimensional features (paper: k_t, b_t + 50 channels).
        assert_eq!(c.train[0].features.len(), 52);
    }

    #[test]
    fn decision_tree_beats_chance_easily() {
        let c = small_corpus();
        let cm = evaluate_all(&c, &ClassifierKind::paper_default());
        assert!(cm.accuracy() > 0.5, "accuracy {}", cm.accuracy());
        assert_eq!(cm.n_classes(), 8);
    }
}
