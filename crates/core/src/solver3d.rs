//! 3-D disentangling (paper §VII future work).
//!
//! "One of them is to perform the system in 3D space, which is totally
//! feasible as long as increasing the number of antenna to 4." — with four
//! antennas there are 8 fitted parameters against 7 unknowns: position
//! `(x, y, z)`, the dipole direction (two angles — a dipole is an axis, so
//! a point on the half-sphere), and the material terms `(k_t, b_t)`.
//!
//! The machinery is the 2-D solver's: sigma-weighted residuals, wrapped
//! intercepts, multi-start + Levenberg–Marquardt.

use crate::model::AntennaObservation;
use crate::solver::{levenberg_marquardt_with, rssi_pattern_penalty, LmWorkspace};
use rfp_geom::{angle, Region2, Vec3};
use rfp_phys::polarization::{orientation_phase, projection_magnitude};
use rfp_phys::propagation;

/// Configuration for [`solve_3d`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Solver3DConfig {
    /// Expected slope noise (rad/Hz).
    pub slope_sigma: f64,
    /// Expected intercept noise (rad).
    pub intercept_sigma: f64,
    /// Multi-start grid over (x, y).
    pub position_starts: (usize, usize),
    /// Multi-start levels over z within `z_range`.
    pub z_starts: usize,
    /// Multi-start dipole directions.
    pub dipole_starts: usize,
    /// Maximum LM iterations per start.
    pub max_iterations: usize,
    /// Relative cost tolerance.
    pub tolerance: f64,
    /// Expected RSSI noise (dB) for ranking candidate modes by
    /// polarization-mismatch consistency (see
    /// [`SolverConfig::rssi_sigma_db`](crate::solver::SolverConfig)).
    /// `f64::INFINITY` disables the penalty.
    pub rssi_sigma_db: f64,
}

impl Default for Solver3DConfig {
    fn default() -> Self {
        Solver3DConfig {
            slope_sigma: 1.0e-10,
            intercept_sigma: 0.08,
            position_starts: (5, 5),
            z_starts: 3,
            dipole_starts: 6,
            max_iterations: 80,
            tolerance: 1e-10,
            rssi_sigma_db: 1.0,
        }
    }
}

/// Per-scene constants of the 3-D solve (multi-start seeds + admissible
/// volume), computed once per `(region, z_range, config)` and shared
/// read-only across solves — the 3-D analogue of
/// [`SolveSeeds`](crate::solver::SolveSeeds).
#[derive(Debug, Clone)]
pub struct Solve3DSeeds {
    /// Multi-start positions: (x, y) grid × z levels, in grid-major order.
    position_starts: Vec<Vec3>,
    /// Polar ring count of the dipole half-sphere scan.
    rings: usize,
    /// Horizontal region candidates must refine into to be preferred.
    admissible_xy: Region2,
    /// Expanded vertical bounds of the admissible volume.
    z_bounds: (f64, f64),
}

impl Solve3DSeeds {
    /// Precomputes the multi-start seeds for the `region × z_range` box.
    pub fn new(region: Region2, z_range: (f64, f64), config: &Solver3DConfig) -> Self {
        let (nx, ny) = config.position_starts;
        let (z_lo, z_hi) = z_range;
        let z_starts = config.z_starts.max(1);
        let mut position_starts =
            Vec::with_capacity(nx.max(1) * ny.max(1) * z_starts);
        for seed_pos in region.grid(nx.max(1), ny.max(1)) {
            for zi in 0..z_starts {
                let z = z_lo + (z_hi - z_lo) * (zi as f64 + 0.5) / z_starts as f64;
                position_starts.push(seed_pos.with_z(z));
            }
        }
        Solve3DSeeds {
            position_starts,
            rings: config.dipole_starts.max(3),
            admissible_xy: region.expanded(0.3),
            z_bounds: (z_lo - 0.3, z_hi + 0.3),
        }
    }
}

/// Reusable scratch buffers for repeated 3-D solves; contents are fully
/// overwritten by each solve, so reuse never changes results.
#[derive(Debug, Default)]
pub struct Solver3DWorkspace {
    lm: LmWorkspace,
    scratch: Vec<f64>,
    position_candidates: Vec<(Vec<f64>, f64)>,
    dipole_ranked: Vec<(f64, f64, f64)>,
}

/// The disentangled 3-D tag state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagEstimate3D {
    /// Tag position, metres.
    pub position: Vec3,
    /// Unit dipole axis, canonicalized to `z ≥ 0` (dipoles are
    /// π-symmetric).
    pub dipole: Vec3,
    /// Material slope term, rad/Hz.
    pub kt: f64,
    /// Material intercept term, radians in `[0, 2π)`.
    pub bt: f64,
    /// Final weighted cost.
    pub cost: f64,
    /// RMS of sigma-normalized residuals.
    pub residual_rms: f64,
}

impl TagEstimate3D {
    /// Angular distance between this estimate's dipole axis and another
    /// axis, in `[0, π/2]`.
    pub fn dipole_axis_error(&self, other: Vec3) -> f64 {
        let dot = self.dipole.dot(other.normalized()).abs().clamp(0.0, 1.0);
        dot.acos()
    }
}

/// Errors from [`solve_3d`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Solve3DError {
    /// Fewer than four antennas: 2N < 7 unknowns.
    TooFewAntennas {
        /// Number of observations provided.
        provided: usize,
    },
}

impl std::fmt::Display for Solve3DError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Solve3DError::TooFewAntennas { provided } => {
                write!(f, "3-D disentangling needs at least 4 antennas, got {provided}")
            }
        }
    }
}

impl std::error::Error for Solve3DError {}

fn dipole_from_angles(theta: f64, phi: f64) -> Vec3 {
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    Vec3::new(st * cp, st * sp, ct)
}

/// Solves the 3-D disentangling problem over the `region × z_range` box.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d(
    observations: &[AntennaObservation],
    region: Region2,
    z_range: (f64, f64),
    config: &Solver3DConfig,
) -> Result<TagEstimate3D, Solve3DError> {
    let seeds = Solve3DSeeds::new(region, z_range, config);
    let mut workspace = Solver3DWorkspace::default();
    solve_3d_seeded(observations, &seeds, config, &mut workspace)
}

/// [`solve_3d`] against precomputed [`Solve3DSeeds`] and a reusable
/// [`Solver3DWorkspace`] — the hot-path entry used by the batch engine.
/// Produces bit-identical results to [`solve_3d`] with the same inputs.
///
/// # Errors
///
/// [`Solve3DError::TooFewAntennas`] with fewer than 4 observations.
pub fn solve_3d_seeded(
    observations: &[AntennaObservation],
    seeds: &Solve3DSeeds,
    config: &Solver3DConfig,
    workspace: &mut Solver3DWorkspace,
) -> Result<TagEstimate3D, Solve3DError> {
    if observations.len() < 4 {
        return Err(Solve3DError::TooFewAntennas { provided: observations.len() });
    }

    let residual = |p: &[f64], out: &mut Vec<f64>| {
        let pos = Vec3::new(p[0], p[1], p[2]);
        let w = dipole_from_angles(p[3], p[4]);
        let (kt, bt) = (p[5], p[6]);
        out.clear();
        for o in observations {
            let d = o.pose.position().distance(pos);
            out.push(
                (o.slope - propagation::slope_from_distance(d) - kt) / config.slope_sigma,
            );
            let b_model = orientation_phase(&o.pose, w) + bt;
            out.push(angle::wrap_pi(o.intercept - b_model) / config.intercept_sigma);
        }
    };
    let steps = [1e-4, 1e-4, 1e-4, 1e-4, 1e-4, 1e-13, 1e-4];

    // Prefer candidates inside the known deployment volume: distances are
    // mirror-symmetric about the antenna plane and the range direction is
    // near-degenerate, so unconstrained optima can drift metres away (see
    // the 2-D solver for the same rule).
    let admissible_xy = seeds.admissible_xy;
    let (z_lo_adm, z_hi_adm) = seeds.z_bounds;
    let inside = |p: &[f64]| {
        admissible_xy.contains(rfp_geom::Vec2::new(p[0], p[1]))
            && p[2] >= z_lo_adm
            && p[2] <= z_hi_adm
    };
    // RSSI-consistency penalty of a candidate 3-D mode, shared with the
    // 2-D solver (see `solver::rssi_pattern_penalty`).
    let mode_penalty = |pos: Vec3, w: Vec3| {
        rssi_pattern_penalty(
            observations,
            |o| (o.pose.position().distance(pos), projection_magnitude(&o.pose, w)),
            config.rssi_sigma_db,
        )
    };

    // Stage 1: slope-only position solve over (x, y, z, k_t) — smooth and
    // exactly determined with 4 antennas, over-determined with more.
    let slope_residual = |p: &[f64], out: &mut Vec<f64>| {
        let pos = Vec3::new(p[0], p[1], p[2]);
        out.clear();
        for o in observations {
            let d = o.pose.position().distance(pos);
            out.push(
                (o.slope - propagation::slope_from_distance(d) - p[3]) / config.slope_sigma,
            );
        }
    };
    let slope_steps = [1e-4, 1e-4, 1e-4, 1e-13];
    let position_candidates = &mut workspace.position_candidates;
    position_candidates.clear();
    for &pos in &seeds.position_starts {
        let kt0: f64 = observations
            .iter()
            .map(|o| {
                o.slope
                    - propagation::slope_from_distance(o.pose.position().distance(pos))
            })
            .sum::<f64>()
            / observations.len() as f64;
        let (p, cost) = levenberg_marquardt_with(
            &mut workspace.lm,
            &slope_residual,
            vec![pos.x, pos.y, pos.z, kt0],
            &slope_steps,
            config.max_iterations,
            config.tolerance,
        );
        position_candidates.push((p, cost));
    }
    position_candidates.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"));
    // With exactly 4 antennas the slope system is exactly determined, so
    // several zero-cost position candidates can exist (mirror images,
    // spurious intersections) — only the intercept equations can tell them
    // apart. Keep every distinct in-volume candidate (deduplicated to
    // 10 cm) and let the joint stage pick.
    let mut stage1: Vec<Vec<f64>> = Vec::new();
    for (p, _) in position_candidates.iter().filter(|(p, _)| inside(p)) {
        let pos = Vec3::new(p[0], p[1], p[2]);
        let duplicate = stage1
            .iter()
            .any(|q| Vec3::new(q[0], q[1], q[2]).distance(pos) < 0.10);
        if !duplicate {
            stage1.push(p.clone());
        }
        if stage1.len() >= 6 {
            break;
        }
    }
    if stage1.is_empty() {
        stage1.push(position_candidates[0].0.clone());
    }

    // Stage 2: dipole scan over the half-sphere with closed-form b_t, then
    // stage 3: joint 7-parameter refinement from the best seeds. As in the
    // 2-D solver, candidates are ranked by phase cost *plus* the RSSI mode
    // penalty so spurious twin-dipole modes neither crowd truth out of the
    // refinement short-list nor win the final selection.
    let rings = seeds.rings;
    let mut best_inside_cand: Option<(Vec<f64>, f64, f64)> = None;
    let mut best_any: Option<(Vec<f64>, f64, f64)> = None;
    let scratch = &mut workspace.scratch;
    for cand in &stage1 {
        let cand_pos = Vec3::new(cand[0], cand[1], cand[2]);
        let dipole_ranked = &mut workspace.dipole_ranked;
        dipole_ranked.clear();
        for ti in 0..rings {
            // Polar rings from near-pole to equator.
            let theta = std::f64::consts::FRAC_PI_2 * (ti as f64 + 0.5) / rings as f64;
            for pi in 0..(2 * rings) {
                let phi = std::f64::consts::TAU * pi as f64 / (2 * rings) as f64;
                let w0 = dipole_from_angles(theta, phi);
                let bt0 = angle::circular_mean(
                    observations
                        .iter()
                        .map(|o| o.intercept - orientation_phase(&o.pose, w0)),
                )
                .unwrap_or(0.0);
                let p = [cand[0], cand[1], cand[2], theta, phi, cand[3], bt0];
                residual(&p, scratch);
                let cost: f64 = scratch.iter().map(|v| v * v).sum::<f64>()
                    + mode_penalty(cand_pos, w0);
                dipole_ranked.push((theta, phi, cost));
            }
        }
        dipole_ranked
            .sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite costs"));
        for &(theta, phi, _) in dipole_ranked.iter().take(3) {
            let w0 = dipole_from_angles(theta, phi);
            let bt0 = angle::circular_mean(
                observations
                    .iter()
                    .map(|o| o.intercept - orientation_phase(&o.pose, w0)),
            )
            .unwrap_or(0.0);
            let p0 = vec![cand[0], cand[1], cand[2], theta, phi, cand[3], bt0];
            let (p, cost) = levenberg_marquardt_with(
                &mut workspace.lm,
                &residual,
                p0,
                &steps,
                config.max_iterations,
                config.tolerance,
            );
            let key = cost
                + mode_penalty(
                    Vec3::new(p[0], p[1], p[2]),
                    dipole_from_angles(p[3], p[4]),
                );
            if inside(&p)
                && best_inside_cand.as_ref().is_none_or(|&(_, _, k)| key < k)
            {
                best_inside_cand = Some((p.clone(), cost, key));
            }
            if best_any.as_ref().is_none_or(|&(_, _, k)| key < k) {
                best_any = Some((p, cost, key));
            }
        }
    }
    let best_inside = best_inside_cand;

    let (p, cost, _) = best_inside.or(best_any).expect("at least one start");
    let mut dipole = dipole_from_angles(p[3], p[4]);
    if dipole.z < 0.0 {
        dipole = -dipole;
    }
    let n_res = 2 * observations.len();
    Ok(TagEstimate3D {
        position: Vec3::new(p[0], p[1], p[2]),
        dipole,
        kt: p[5],
        bt: angle::wrap_tau(p[6]),
        cost,
        residual_rms: (cost / n_res as f64).sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn observations_3d(
        scene: &Scene,
        position: Vec3,
        dipole: Vec3,
        seed: u64,
    ) -> Vec<AntennaObservation> {
        let tag = SimTag::nominal(1)
            .with_motion(Motion::Static { position, dipole: dipole.normalized() });
        let survey = scene.survey(&tag, seed);
        scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect()
    }

    #[test]
    fn recovers_3d_position_clean() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.3, 1.6, 0.7);
        let dipole = Vec3::new(1.0, 0.2, 0.4).normalized();
        let obs = observations_3d(&scene, truth, dipole, 1);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.0), &Solver3DConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 5.0, "3-D position error {err_cm} cm");
        let axis_err = est.dipole_axis_error(dipole).to_degrees();
        assert!(axis_err < 8.0, "dipole axis error {axis_err}°");
    }

    #[test]
    fn recovers_3d_with_noise() {
        // Four antennas are identifiable but have zero slope redundancy;
        // the noisy evaluation uses the six-antenna deployment.
        let scene = Scene::six_antenna_3d();
        let truth = Vec3::new(0.8, 1.2, 0.4);
        let dipole = Vec3::new(0.2, 0.5, 1.0).normalized();
        let obs = observations_3d(&scene, truth, dipole, 2);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.5), &Solver3DConfig::default()).unwrap();
        let err_cm = est.position.distance(truth) * 100.0;
        assert!(err_cm < 40.0, "noisy 3-D position error {err_cm} cm");
    }

    #[test]
    fn dipole_canonicalized_upward() {
        let scene = Scene::four_antenna_3d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec3::new(0.5, 1.5, 0.5);
        let dipole = Vec3::new(0.3, 0.1, -0.9).normalized(); // points down
        let obs = observations_3d(&scene, truth, dipole, 3);
        let est =
            solve_3d(&obs, scene.region(), (0.0, 1.0), &Solver3DConfig::default()).unwrap();
        assert!(est.dipole.z >= 0.0);
        assert!(est.dipole_axis_error(dipole).to_degrees() < 10.0);
    }

    #[test]
    fn three_antennas_insufficient() {
        let scene = Scene::four_antenna_3d();
        let obs = observations_3d(&scene, Vec3::new(0.5, 1.5, 0.5), Vec3::X, 4);
        assert_eq!(
            solve_3d(&obs[..3], scene.region(), (0.0, 1.0), &Solver3DConfig::default())
                .unwrap_err(),
            Solve3DError::TooFewAntennas { provided: 3 }
        );
    }

    #[test]
    fn region2_used_for_xy_box() {
        let r = Region2::new(Vec2::new(0.0, 0.0), Vec2::new(1.0, 1.0));
        assert!(r.contains(Vec2::new(0.5, 0.5)));
    }
}
