//! Deployment scenes: antennas + reader + noise + environment + region.
//!
//! [`Scene::standard_2d`] mirrors the paper's Fig. 7 setup: three
//! circularly-polarized antennas in a row with 0.5 m spacing, facing a
//! 2 m × 2 m working region. The antennas are mounted with distinct rolls
//! (0°/45°/90°) so their polarization frames differ — the paper's "45°"
//! mounting — which is what makes the tag orientation observable from the
//! intercept differences (see `rfp-geom::pose`).

use crate::antenna::Antenna;
use crate::interference::InterferenceModel;
use crate::measure::HopSurvey;
use crate::multipath::MultipathEnvironment;
use crate::noise::NoiseModel;
use crate::reader::ReaderConfig;
use crate::tag::SimTag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_geom::{AntennaPose, Region2, Vec2, Vec3};

/// A complete simulated deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct Scene {
    antennas: Vec<Antenna>,
    reader: ReaderConfig,
    noise: NoiseModel,
    environment: MultipathEnvironment,
    interference: InterferenceModel,
    region: Region2,
}

impl Scene {
    /// The paper's 2-D evaluation deployment: three antennas spaced 0.5 m
    /// apart on a rack, all aimed at the centre of the 2 m × 2 m working
    /// region `[-0.5, 1.5] × [0.5, 2.5]`; ImpinJ R420 reader, paper-like
    /// noise, clean space, antenna port offsets already calibrated out
    /// (paper §IV-C does this once, pre-deployment).
    ///
    /// The antennas sit at *different heights* (0.2/1.0/1.8 m) and carry
    /// different rolls (0°/45°/90°, the "45°" of the paper's Fig. 7). Both
    /// matter for orientation sensing: each antenna must view the tag's
    /// dipole from a genuinely different transverse frame, otherwise every
    /// intercept shifts identically with α and the orientation aliases into
    /// the material term `b_t` (see `rfp-core::solver`).
    pub fn standard_2d() -> Self {
        let region = Region2::new(Vec2::new(-0.5, 0.5), Vec2::new(1.5, 2.5));
        let target = region.center().with_z(0.0);
        let rolls = [0.0, std::f64::consts::FRAC_PI_4, std::f64::consts::FRAC_PI_2];
        let heights = [0.2, 1.0, 1.8];
        let antennas = (0..3)
            .map(|i| {
                let pos = Vec3::new(0.5 * i as f64, 0.0, heights[i]);
                Antenna::calibrated(AntennaPose::looking_at(pos, target, rolls[i]))
            })
            .collect();
        Scene {
            antennas,
            reader: ReaderConfig::impinj_r420(),
            noise: NoiseModel::paper_like(),
            environment: MultipathEnvironment::clean(3),
            interference: InterferenceModel::none(),
            region,
        }
    }

    /// As [`Scene::standard_2d`] but with *uncalibrated* antenna ports:
    /// each port gets a random constant phase offset drawn from `seed`.
    /// Used to demonstrate the paper's §IV-C antenna calibration.
    pub fn standard_2d_uncalibrated(seed: u64) -> Self {
        let mut scene = Self::standard_2d();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x414e_5401);
        for a in &mut scene.antennas {
            a.hardware_phase_offset = rng.gen_range(0.0..std::f64::consts::TAU);
        }
        scene
    }

    /// A four-antenna deployment for 3-D localization (paper §VII future
    /// work): antennas at the corners of a 1 m square on the x–z plane,
    /// rolls 0°/45°/90°/135°, facing the region centre at y = 1.5.
    pub fn four_antenna_3d() -> Self {
        let region = Region2::new(Vec2::new(-0.5, 0.5), Vec2::new(1.5, 2.5));
        let target = Vec3::new(0.5, 1.5, 0.5);
        let positions = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 0.0, 1.0),
        ];
        let antennas = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let roll = i as f64 * std::f64::consts::FRAC_PI_4;
                Antenna::calibrated(AntennaPose::looking_at(p, target, roll))
            })
            .collect();
        Scene {
            antennas,
            reader: ReaderConfig::impinj_r420(),
            noise: NoiseModel::paper_like(),
            environment: MultipathEnvironment::clean(4),
            interference: InterferenceModel::none(),
            region,
        }
    }

    /// A six-antenna 3-D deployment with a 2 m × 2 m aperture. Four
    /// antennas give the 3-D problem *identifiability* (8 equations, 7
    /// unknowns) but zero redundancy in the slope subsystem — millimetre
    /// ranging noise then dilutes into metres of position error. Two extra
    /// antennas restore the redundancy; this is the deployment the 3-D
    /// evaluation uses.
    pub fn six_antenna_3d() -> Self {
        let region = Region2::new(Vec2::new(0.0, 0.5), Vec2::new(2.0, 2.5));
        let target = Vec3::new(1.0, 1.5, 0.75);
        let positions = [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(2.0, 0.0, 2.0),
            Vec3::new(1.0, 0.0, 0.3),
            Vec3::new(1.0, 0.0, 1.7),
        ];
        let antennas = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let roll = i as f64 * std::f64::consts::PI / 6.0;
                Antenna::calibrated(AntennaPose::looking_at(p, target, roll))
            })
            .collect();
        Scene {
            antennas,
            reader: ReaderConfig::impinj_r420(),
            noise: NoiseModel::paper_like(),
            environment: MultipathEnvironment::clean(6),
            interference: InterferenceModel::none(),
            region,
        }
    }

    /// Replaces the noise model (builder style).
    pub fn with_noise(mut self, noise: NoiseModel) -> Self {
        self.noise = noise;
        self
    }

    /// Replaces the reader configuration.
    pub fn with_reader(mut self, reader: ReaderConfig) -> Self {
        self.reader = reader;
        self
    }

    /// Replaces the multipath environment.
    pub fn with_environment(mut self, environment: MultipathEnvironment) -> Self {
        self.environment = environment;
        self
    }

    /// Replaces the transient-interference model.
    pub fn with_interference(mut self, interference: InterferenceModel) -> Self {
        self.interference = interference;
        self
    }

    /// Transient-interference model.
    pub fn interference(&self) -> &InterferenceModel {
        &self.interference
    }

    /// The antennas.
    pub fn antennas(&self) -> &[Antenna] {
        &self.antennas
    }

    /// Just the antenna poses (what the disentangler is given — it never
    /// sees hardware offsets or the environment).
    pub fn antenna_poses(&self) -> Vec<AntennaPose> {
        self.antennas.iter().map(|a| a.pose).collect()
    }

    /// Reader configuration.
    pub fn reader(&self) -> &ReaderConfig {
        &self.reader
    }

    /// Noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Multipath environment.
    pub fn environment(&self) -> &MultipathEnvironment {
        &self.environment
    }

    /// The working region tags are deployed in.
    pub fn region(&self) -> Region2 {
        self.region
    }

    /// Runs one full hop round over `tag` and returns the raw reads per
    /// antenna. Deterministic for a given `(scene, tag, seed)`.
    pub fn survey(&self, tag: &SimTag, seed: u64) -> HopSurvey {
        crate::measure::run_survey(self, tag, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_scene_geometry() {
        let s = Scene::standard_2d();
        assert_eq!(s.antennas().len(), 3);
        // 0.5 m horizontal spacing, staggered heights.
        let p: Vec<Vec3> = s.antennas().iter().map(|a| a.pose.position()).collect();
        assert!((p[1].x - p[0].x - 0.5).abs() < 1e-12);
        assert!((p[2].x - p[1].x - 0.5).abs() < 1e-12);
        assert!(p[0].z < p[1].z && p[1].z < p[2].z);
        // 2 m × 2 m region.
        assert_eq!(s.region().width(), 2.0);
        assert_eq!(s.region().height(), 2.0);
        // Distinct rolls.
        let rolls: Vec<f64> = s.antennas().iter().map(|a| a.pose.roll()).collect();
        assert!(rolls[0] != rolls[1] && rolls[1] != rolls[2]);
        // Calibrated ports.
        assert!(s.antennas().iter().all(|a| a.hardware_phase_offset == 0.0));
    }

    #[test]
    fn uncalibrated_scene_has_distinct_offsets() {
        let s = Scene::standard_2d_uncalibrated(3);
        let o: Vec<f64> = s.antennas().iter().map(|a| a.hardware_phase_offset).collect();
        assert!(o[0] != o[1] && o[1] != o[2]);
        // Deterministic per seed.
        assert_eq!(s, Scene::standard_2d_uncalibrated(3));
    }

    #[test]
    fn four_antenna_scene() {
        let s = Scene::four_antenna_3d();
        assert_eq!(s.antennas().len(), 4);
        assert!(!s.environment().has_multipath());
    }

    #[test]
    fn six_antenna_scene() {
        let s = Scene::six_antenna_3d();
        assert_eq!(s.antennas().len(), 6);
        // Spread in both x and z for 3-D observability.
        let xs: Vec<f64> = s.antennas().iter().map(|a| a.pose.position().x).collect();
        let zs: Vec<f64> = s.antennas().iter().map(|a| a.pose.position().z).collect();
        assert!(xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) - xs.iter().cloned().fold(f64::INFINITY, f64::min) >= 2.0 - 1e-9);
        assert!(zs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) - zs.iter().cloned().fold(f64::INFINITY, f64::min) >= 2.0 - 1e-9);
    }
}
