//! Fig. 8: overall localization error under varying orientation (0°–150°)
//! and varying material (8 classes).
//!
//! Paper: mean 7.61 cm across orientations (max spread between angles
//! 0.70 cm) and 7.48 cm across materials, with metal and the conductive
//! liquids slightly worse.

use rfp_bench::{loc, report, setup};
use rfp_phys::Material;
use rfp_sim::Scene;

fn main() {
    let scene = Scene::standard_2d();

    report::header("Fig. 8 (left)", "localization error vs tag orientation");
    let specs = loc::grid_orientation_specs(&scene, 5);
    let outcomes = loc::run_trials(&scene, &specs);
    let mut per_angle = Vec::new();
    for (i, alpha) in setup::evaluation_orientations().iter().enumerate() {
        let subset = loc::filter(&outcomes, |s| (s.alpha - alpha).abs() < 1e-9);
        let mean = loc::mean_position_error_cm(&subset);
        report::row(
            &format!("{}°", i * 30),
            "≈ 7.6 cm",
            &report::cm(mean),
        );
        per_angle.push(mean);
    }
    let overall = loc::mean_position_error_cm(&outcomes);
    report::row("overall", "7.61 cm", &report::cm(overall));
    let spread = per_angle.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - per_angle.iter().cloned().fold(f64::INFINITY, f64::min);
    report::row("max spread across angles", "0.70 cm", &report::cm(spread));

    report::header("Fig. 8 (right)", "localization error vs attached material");
    let specs = loc::grid_material_specs(&scene, 4);
    let outcomes = loc::run_trials(&scene, &specs);
    for m in Material::CLASSES {
        let subset = loc::filter(&outcomes, |s| s.material == m);
        report::row(
            m.label(),
            "≈ 6–10 cm",
            &report::cm(loc::mean_position_error_cm(&subset)),
        );
    }
    let overall_mat = loc::mean_position_error_cm(&outcomes);
    report::row("overall", "7.48 cm", &report::cm(overall_mat));

    // Shape assertions (not exact numbers): the system works at the
    // centimetre scale and orientation does not matter much.
    assert!(overall < 20.0, "orientation-sweep mean {overall} cm");
    assert!(overall_mat < 20.0, "material-sweep mean {overall_mat} cm");
    assert!(spread < 0.5 * overall, "orientation must not dominate the error");
}
