//! Fig. 10: material identification accuracy by distance region and by
//! tag orientation.
//!
//! Paper: 88.6 % / 87.5 % / 87.5 % near/medium/far; 88.0 % at 0° vs
//! 87.8 % at 90° with training data from 0° only.

use rfp_bench::{matid, report, setup};
use rfp_core::material::ClassifierKind;
use rfp_sim::Scene;

fn main() {
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 100, 50);
    let kind = ClassifierKind::paper_default();

    report::header("Fig. 10 (top)", "material accuracy by distance region");
    let paper = ["88.6 %", "87.5 %", "87.5 %"];
    let mut region_acc = Vec::new();
    for (r, paper_row) in paper.iter().enumerate() {
        let cm = matid::evaluate(&corpus, &kind, |s| s.region == r);
        report::row(setup::REGION_NAMES[r], paper_row, &report::pct(cm.accuracy()));
        region_acc.push(cm.accuracy());
    }

    report::header("Fig. 10 (bottom)", "material accuracy by tag orientation");
    let cm0 = matid::evaluate(&corpus, &kind, |s| s.alpha == 0.0);
    let cm90 = matid::evaluate(&corpus, &kind, |s| s.alpha > 0.0);
    report::row("0° (training orientation)", "88.0 %", &report::pct(cm0.accuracy()));
    report::row("90° (unseen orientation)", "87.8 %", &report::pct(cm90.accuracy()));

    // Shape: all conditions in the same band — neither distance nor
    // orientation should matter much (that is the point of disentangling).
    for (name, acc) in [("near", region_acc[0]), ("far", region_acc[2])] {
        assert!(acc > 0.7, "{name} accuracy {acc}");
    }
    assert!(
        (cm0.accuracy() - cm90.accuracy()).abs() < 0.12,
        "orientation must not matter: {} vs {}",
        cm0.accuracy(),
        cm90.accuracy()
    );
}
