//! Labelled feature datasets, splits and cross-validation.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A dataset of feature vectors with integer class labels.
///
/// # Example
///
/// ```
/// use rfp_ml::Dataset;
/// let mut ds = Dataset::new(3);
/// ds.push(vec![1.0, 2.0], 0);
/// ds.push(vec![3.0, 4.0], 2);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.feature_dim(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates an empty dataset expecting labels in `0..n_classes`.
    pub fn new(n_classes: usize) -> Self {
        Dataset { features: Vec::new(), labels: Vec::new(), n_classes }
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if `label >= n_classes` or if the feature length differs from
    /// previously pushed samples.
    pub fn push(&mut self, features: Vec<f64>, label: usize) {
        assert!(label < self.n_classes, "label {label} >= n_classes {}", self.n_classes);
        if let Some(first) = self.features.first() {
            assert_eq!(
                first.len(),
                features.len(),
                "inconsistent feature dimension"
            );
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of classes declared at construction.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature dimensionality, or `None` when empty.
    pub fn feature_dim(&self) -> Option<usize> {
        self.features.first().map(Vec::len)
    }

    /// Feature matrix.
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Labels, parallel to [`Dataset::features`].
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Sample `(features, label)` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn sample(&self, index: usize) -> (&[f64], usize) {
        (&self.features[index], self.labels[index])
    }

    /// Returns a dataset containing the samples at `indices` (cloned).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.n_classes);
        for &i in indices {
            out.push(self.features[i].clone(), self.labels[i]);
        }
        out
    }

    /// Per-class sample counts (length `n_classes`).
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// Splits into `(train, test)` with `train_fraction` of each class in
    /// the training set (stratified), shuffled with the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    pub fn stratified_split(&self, train_fraction: f64, seed: u64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train_fraction must be in (0, 1)"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train_idx = Vec::new();
        let mut test_idx = Vec::new();
        for class in 0..self.n_classes {
            let mut idx: Vec<usize> =
                (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            idx.shuffle(&mut rng);
            let cut = (idx.len() as f64 * train_fraction).round() as usize;
            train_idx.extend_from_slice(&idx[..cut]);
            test_idx.extend_from_slice(&idx[cut..]);
        }
        (self.subset(&train_idx), self.subset(&test_idx))
    }

    /// Yields `k` (train, validation) folds for cross-validation, shuffled
    /// with the seeded RNG.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k > len()`.
    pub fn k_folds(&self, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
        assert!(k >= 2, "need at least 2 folds");
        assert!(k <= self.len(), "more folds than samples");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng);
        let mut folds = Vec::with_capacity(k);
        for f in 0..k {
            let val: Vec<usize> =
                idx.iter().copied().skip(f).step_by(k).collect();
            let train: Vec<usize> =
                idx.iter().copied().filter(|i| !val.contains(i)).collect();
            folds.push((self.subset(&train), self.subset(&val)));
        }
        folds
    }
}

impl Extend<(Vec<f64>, usize)> for Dataset {
    fn extend<T: IntoIterator<Item = (Vec<f64>, usize)>>(&mut self, iter: T) {
        for (f, l) in iter {
            self.push(f, l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_per_class: usize, classes: usize) -> Dataset {
        let mut ds = Dataset::new(classes);
        for c in 0..classes {
            for i in 0..n_per_class {
                ds.push(vec![c as f64, i as f64], c);
            }
        }
        ds
    }

    #[test]
    fn push_and_introspect() {
        let ds = toy(3, 2);
        assert_eq!(ds.len(), 6);
        assert_eq!(ds.feature_dim(), Some(2));
        assert_eq!(ds.class_counts(), vec![3, 3]);
        assert_eq!(ds.sample(4), (&[1.0, 1.0][..], 1));
    }

    #[test]
    #[should_panic]
    fn bad_label_panics() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 2);
    }

    #[test]
    #[should_panic]
    fn inconsistent_dim_panics() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 0);
        ds.push(vec![0.0, 1.0], 1);
    }

    #[test]
    fn stratified_split_preserves_class_balance() {
        let ds = toy(10, 4);
        let (train, test) = ds.stratified_split(0.7, 42);
        assert_eq!(train.class_counts(), vec![7, 7, 7, 7]);
        assert_eq!(test.class_counts(), vec![3, 3, 3, 3]);
        assert_eq!(train.len() + test.len(), ds.len());
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let ds = toy(10, 2);
        let (a1, _) = ds.stratified_split(0.5, 7);
        let (a2, _) = ds.stratified_split(0.5, 7);
        let (b, _) = ds.stratified_split(0.5, 8);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn k_folds_partition_everything() {
        let ds = toy(6, 2);
        let folds = ds.k_folds(3, 1);
        assert_eq!(folds.len(), 3);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, ds.len());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), ds.len());
        }
    }

    #[test]
    fn extend_works() {
        let mut ds = Dataset::new(2);
        ds.extend(vec![(vec![1.0], 0), (vec![2.0], 1)]);
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn subset_clones_selected() {
        let ds = toy(2, 2);
        let sub = ds.subset(&[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[0, 1]);
    }
}
