//! Offline API-compatible subset of the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `criterion` its benches use: [`Criterion`],
//! [`Criterion::bench_function`], benchmark groups with throughput, and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing is intentionally simple — warm-up followed by timed batches,
//! reporting the median per-iteration time — with none of upstream's
//! statistical machinery. It is enough to compare configurations of the
//! same workload within one process (the only way the repo's benches are
//! consumed).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings + reporting for one bench binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1500),
        }
    }
}

impl Criterion {
    /// Accepts (and ignores) CLI arguments, mirroring upstream's builder.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Overrides the warm-up time.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Overrides the measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Runs one benchmark and prints its median iteration time.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.warm_up, self.measure);
        f(&mut b);
        b.report(id, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup { criterion: self, throughput: None }
    }

    /// Finalizes reporting (upstream prints summaries; the stub has
    /// nothing buffered).
    pub fn final_summary(&mut self) {}
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measure);
        f(&mut b);
        b.report(id.as_ref(), self.throughput);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; runs and times the hot loop.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    samples: Vec<f64>,
    iters_done: u64,
}

impl Bencher {
    fn new(warm_up: Duration, measure: Duration) -> Self {
        Bencher { warm_up, measure, samples: Vec::new(), iters_done: 0 }
    }

    /// Times `routine`, discarding its output.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Aim for ~32 samples inside the measurement budget.
        let budget = self.measure.as_secs_f64();
        let batch = ((budget / 32.0 / per_iter.max(1e-12)).ceil() as u64).max(1);
        let deadline = Instant::now() + self.measure;
        while Instant::now() < deadline || self.samples.is_empty() {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
            self.iters_done += batch;
        }
    }

    fn median(&self) -> f64 {
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
        s[s.len() / 2]
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let med = self.median();
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / med;
                println!(
                    "{id:<40} {:>12} /iter   {rate:>14.1} elem/s",
                    format_time(med)
                );
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / med;
                println!(
                    "{id:<40} {:>12} /iter   {rate:>14.1} B/s",
                    format_time(med)
                );
            }
            None => println!("{id:<40} {:>12} /iter", format_time(med)),
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of bench functions, mirroring upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
