//! Transient RF interference.
//!
//! The paper's §VI-C notes that interference from other RF devices "can
//! also impact greatly the system performance since phase measurements may
//! be inaccurate or even inaccessible. But different from the multipath
//! effect, noises are usually transient so RF-Prism is more likely to
//! filter out them just like in the mobility error case."
//!
//! This model captures exactly that: an interferer (another reader, a
//! Wi-Fi burst) is active during a random subset of the hop dwells. Reads
//! taken during an active burst get large extra phase error and an RSSI
//! hit (some are lost outright below the sensitivity floor). Because a
//! burst corrupts *whole dwells*, the damage lands on a few channels —
//! which the robust line fit then rejects, exactly like multipath
//! outliers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A transient interferer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Probability that the interferer is active during any given dwell.
    pub dwell_probability: f64,
    /// Extra phase noise std while active, radians.
    pub phase_std_rad: f64,
    /// RSSI degradation while active, dB (raises the chance reads are
    /// lost).
    pub rssi_drop_db: f64,
}

impl InterferenceModel {
    /// No interference.
    pub fn none() -> Self {
        InterferenceModel { dwell_probability: 0.0, phase_std_rad: 0.0, rssi_drop_db: 0.0 }
    }

    /// An occasional strong interferer: active on ~10 % of dwells, 0.8 rad
    /// extra phase noise, 12 dB RSSI hit.
    pub fn occasional() -> Self {
        InterferenceModel { dwell_probability: 0.10, phase_std_rad: 0.8, rssi_drop_db: 12.0 }
    }

    /// Whether any interference can occur.
    pub fn is_active_model(&self) -> bool {
        self.dwell_probability > 0.0
    }

    /// Draws the per-dwell activity pattern for a hop round of
    /// `dwell_count` dwells, deterministically from `seed`.
    pub fn dwell_pattern(&self, dwell_count: usize, seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1e7f_3a11);
        (0..dwell_count).map(|_| rng.gen::<f64>() < self.dwell_probability).collect()
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_silent() {
        let m = InterferenceModel::none();
        assert!(!m.is_active_model());
        assert!(m.dwell_pattern(50, 1).iter().all(|&b| !b));
    }

    #[test]
    fn occasional_hits_a_minority_of_dwells() {
        let m = InterferenceModel::occasional();
        let hits: usize = (0..50u64)
            .map(|s| m.dwell_pattern(50, s).iter().filter(|&&b| b).count())
            .sum();
        let rate = hits as f64 / (50.0 * 50.0);
        assert!((rate - 0.10).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn pattern_deterministic_per_seed() {
        let m = InterferenceModel::occasional();
        assert_eq!(m.dwell_pattern(50, 7), m.dwell_pattern(50, 7));
        assert_ne!(m.dwell_pattern(50, 7), m.dwell_pattern(50, 8));
    }
}
