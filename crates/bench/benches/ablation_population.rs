//! Ablation: tag-population size vs per-tag sensing accuracy.
//!
//! An inventory round shares the reader's slots among all responding tags
//! (slotted ALOHA); the per-tag read budget — and with it the per-channel
//! averaging — shrinks as the population grows. This bench senses the same
//! reference tag embedded in growing populations.

use rfp_bench::{report, setup};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, ReaderConfig, Scene, SimTag};

fn main() {
    report::header("Ablation", "per-tag accuracy vs population size (shared reads)");
    let scene = Scene::standard_2d()
        .with_reader(ReaderConfig::impinj_r420().with_reads_per_channel(24));
    let prism = setup::prism_for(&scene);
    let truth = Vec2::new(0.6, 1.5);

    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "population", "reads/tag", "loc error", "sensed"
    );
    let mut results = Vec::new();
    for &n in &[1usize, 2, 4, 8, 16] {
        let mut tags: Vec<SimTag> = (0..n as u64)
            .map(|i| {
                SimTag::with_seeded_diversity(100 + i)
                    .attached_to(Material::CLASSES[i as usize % 8])
                    .with_motion(Motion::planar_static(
                        Vec2::new(-0.4 + 0.11 * i as f64, 0.9 + 0.09 * i as f64),
                        0.3 * i as f64,
                    ))
            })
            .collect();
        // The reference tag under test is always tag 0.
        tags[0] = SimTag::with_seeded_diversity(100)
            .with_motion(Motion::planar_static(truth, 0.5));

        let mut errors = Vec::new();
        let mut reads_per_tag = 0;
        for rep in 0..12u64 {
            let round = scene.survey_inventory(&tags, 1_000 * rep + n as u64);
            reads_per_tag = round.reads_per_tag;
            let (_, survey) = &round.surveys[0];
            if let Ok(result) = prism.sense(&survey.per_antenna) {
                errors.push(result.estimate.position.distance(truth) * 100.0);
            }
        }
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        println!(
            "{n:>12} {reads_per_tag:>14} {:>14} {:>9}/12",
            report::cm(mean),
            errors.len()
        );
        results.push((n, mean));
    }
    println!();
    println!("the read budget divides across the population, so a crowded field");
    println!("costs per-tag accuracy — re-running rounds (or longer dwells) buys it back.");
    assert!(
        results.last().unwrap().1 >= results[0].1 * 0.8,
        "a 16-tag field should not sense better than a lone tag: {results:?}"
    );
}
