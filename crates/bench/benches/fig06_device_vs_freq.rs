//! Fig. 6: θ_device vs frequency — attaching different materials (wood /
//! glass / plastic at 1.5 m) changes the *slope* of the phase line.

use rfp_bench::report;
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

fn main() {
    report::header(
        "Fig. 6",
        "phase vs frequency with wood / glass / plastic at 1.5 m",
    );
    let scene = Scene::standard_2d();
    let antenna = scene.antenna_poses()[0];
    let pos = Vec2::new(0.0, 1.5);

    let mut slopes = Vec::new();
    println!("{:>9} {:>14} {:>12}", "material", "slope (rad/Hz)", "sweep (rad)");
    for &m in &[Material::Wood, Material::Glass, Material::Plastic] {
        let tag = SimTag::with_seeded_diversity(1)
            .attached_to(m)
            .with_motion(Motion::planar_static(pos, 0.0));
        let survey = scene.survey(&tag, 6);
        let obs =
            extract_observation(antenna, &survey.per_antenna[0], &ExtractConfig::paper())
                .expect("survey usable");
        let sweep = obs.slope * scene.reader().plan.span_hz();
        println!("{:>9} {:>14.4e} {sweep:>12.2}", m.label(), obs.slope);
        slopes.push((m, obs.slope));
    }

    println!();
    println!("paper: the three materials give visibly distinct slopes (total sweeps");
    println!("of ~12–18 rad across the band); measured sweeps above.");
    for i in 0..slopes.len() {
        for j in (i + 1)..slopes.len() {
            let gap = (slopes[i].1 - slopes[j].1).abs();
            report::row(
                &format!("{} vs {}", slopes[i].0.label(), slopes[j].0.label()),
                "distinct",
                &format!("{gap:.2e} rad/Hz"),
            );
            assert!(gap > 5e-9, "material slopes must be distinct");
        }
    }
}
