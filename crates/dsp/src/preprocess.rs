//! Raw-read pre-processing: π-jump correction, per-channel aggregation and
//! cross-channel unwrapping.
//!
//! A COTS reader reports, for every successful inventory of a tag, the
//! channel it was read on, a phase in `[0, 2π)` and an RSSI. Three artifacts
//! must be repaired before the readings can be fitted to a line
//! (the paper's *signal pre-processing module*):
//!
//! 1. **π jumps** — ImpinJ-class readers resolve the backscatter phase only
//!    up to π; a random half of the reads come back shifted by exactly π.
//!    Within one channel the true phase is constant, so the reads form two
//!    antipodal clusters. We recover the channel phase with the
//!    double-angle trick (doubling maps both clusters onto one), then pick
//!    the cluster that holds the **majority** of reads to resolve which of
//!    `θ` / `θ+π` is the true value. This keeps the *absolute* phase
//!    correct, which matters because the line intercept carries the
//!    orientation information.
//! 2. **Per-channel noise** — multiple reads per 200 ms dwell are averaged
//!    (circularly) to beat down thermal phase noise.
//! 3. **2π folding** — across channels the phase walks many turns; standard
//!    unwrapping restores a continuous line (channel spacing is 500 kHz, so
//!    the true inter-channel increment is ≪ π for any realistic geometry).

use rfp_geom::angle;

/// One raw read report from the reader.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RawRead {
    /// Channel index into the session's frequency plan.
    pub channel: usize,
    /// Centre frequency of that channel, Hz.
    pub frequency_hz: f64,
    /// Reported phase, wrapped into `[0, 2π)` (may contain a π jump).
    pub phase: f64,
    /// Reported RSSI, dBm.
    pub rssi_dbm: f64,
    /// Read timestamp, seconds since the start of the hop sequence.
    pub timestamp_s: f64,
}

/// Aggregated, corrected observation for one channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelObservation {
    /// Channel index.
    pub channel: usize,
    /// Centre frequency, Hz.
    pub frequency_hz: f64,
    /// Unwrapped phase (continuous across channels), radians.
    pub phase: f64,
    /// Mean RSSI over the channel's reads, dBm.
    pub rssi_dbm: f64,
    /// Number of raw reads aggregated.
    pub read_count: usize,
    /// Circular spread of the (π-corrected) reads, radians — a per-channel
    /// quality indicator.
    pub phase_spread: f64,
}

/// Configuration for [`preprocess_reads`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreprocessConfig {
    /// Whether to run π-jump correction (on for COTS-reader data).
    pub correct_pi_jumps: bool,
    /// Channels with fewer reads than this are dropped.
    pub min_reads_per_channel: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig { correct_pi_jumps: true, min_reads_per_channel: 1 }
    }
}

/// Errors from [`preprocess_reads`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreprocessError {
    /// No channel had enough reads.
    NoUsableChannels,
}

impl std::fmt::Display for PreprocessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PreprocessError::NoUsableChannels => {
                write!(f, "no channel had enough reads to aggregate")
            }
        }
    }
}

impl std::error::Error for PreprocessError {}

/// Runs the full pre-processing pipeline on one antenna's raw reads and
/// returns per-channel observations sorted by frequency, with phases
/// unwrapped across channels.
///
/// # Errors
///
/// Returns [`PreprocessError::NoUsableChannels`] when every channel has
/// fewer than `config.min_reads_per_channel` reads.
///
/// # Example
///
/// ```
/// use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
///
/// let reads = vec![
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0, rssi_dbm: -50.0, timestamp_s: 0.0 },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.0 + std::f64::consts::PI, rssi_dbm: -50.0, timestamp_s: 0.01 },
///     RawRead { channel: 0, frequency_hz: 902.75e6, phase: 1.02, rssi_dbm: -50.0, timestamp_s: 0.02 },
///     RawRead { channel: 1, frequency_hz: 903.25e6, phase: 1.06, rssi_dbm: -50.0, timestamp_s: 0.2 },
/// ];
/// let obs = preprocess_reads(&reads, &PreprocessConfig::default())?;
/// assert_eq!(obs.len(), 2);
/// // The π-jumped read was folded back onto the majority cluster:
/// assert!((obs[0].phase - 1.0).abs() < 0.05);
/// # Ok::<(), rfp_dsp::preprocess::PreprocessError>(())
/// ```
pub fn preprocess_reads(
    reads: &[RawRead],
    config: &PreprocessConfig,
) -> Result<Vec<ChannelObservation>, PreprocessError> {
    // Group by channel, preserving per-channel read order.
    let mut by_channel: std::collections::BTreeMap<usize, Vec<&RawRead>> =
        std::collections::BTreeMap::new();
    for r in reads {
        by_channel.entry(r.channel).or_default().push(r);
    }

    let mut observations = Vec::with_capacity(by_channel.len());
    let mut per_channel_reads: Vec<Vec<f64>> = Vec::with_capacity(by_channel.len());
    for (channel, reads) in by_channel {
        if reads.len() < config.min_reads_per_channel.max(1) {
            continue;
        }
        let phases: Vec<f64> = reads.iter().map(|r| r.phase).collect();
        let (phase, spread) = if config.correct_pi_jumps {
            channel_axis(&phases)
        } else {
            let mean = angle::circular_mean(phases.iter().copied()).unwrap_or(phases[0]);
            let spread = angle::circular_std(phases.iter().copied()).unwrap_or(0.0);
            (mean, spread)
        };
        let rssi = reads.iter().map(|r| r.rssi_dbm).sum::<f64>() / reads.len() as f64;
        observations.push(ChannelObservation {
            channel,
            frequency_hz: reads[0].frequency_hz,
            phase: angle::wrap_tau(phase),
            rssi_dbm: rssi,
            read_count: reads.len(),
            phase_spread: spread,
        });
        per_channel_reads.push(phases);
    }
    if observations.is_empty() {
        return Err(PreprocessError::NoUsableChannels);
    }

    // Sort ascending in frequency (keeping the raw reads aligned).
    let mut order: Vec<usize> = (0..observations.len()).collect();
    order.sort_by(|&a, &b| {
        observations[a]
            .frequency_hz
            .partial_cmp(&observations[b].frequency_hz)
            .expect("finite frequencies")
    });
    let mut sorted_obs: Vec<ChannelObservation> =
        order.iter().map(|&i| observations[i]).collect();
    let sorted_reads: Vec<&Vec<f64>> =
        order.iter().map(|&i| &per_channel_reads[i]).collect();

    let mut phases: Vec<f64> = sorted_obs.iter().map(|o| o.phase).collect();
    if config.correct_pi_jumps {
        // The per-channel axes are only known modulo π: unwrap them with
        // period π into a continuous curve, then resolve the single global
        // π ambiguity by a majority vote over *every* raw read (far more
        // robust than voting channel by channel).
        angle::unwrap_in_place_period(&mut phases, std::f64::consts::PI);
        let mut votes_axis = 0usize;
        let mut votes_total = 0usize;
        for (axis, reads) in phases.iter().zip(&sorted_reads) {
            for &p in reads.iter() {
                votes_total += 1;
                if angle::distance(p, *axis) <= std::f64::consts::FRAC_PI_2 {
                    votes_axis += 1;
                }
            }
        }
        if 2 * votes_axis < votes_total {
            for p in &mut phases {
                *p += std::f64::consts::PI;
            }
        }
    } else {
        angle::unwrap_in_place(&mut phases);
    }
    for (o, p) in sorted_obs.iter_mut().zip(phases) {
        o.phase = p;
    }
    Ok(sorted_obs)
}

/// Estimates a channel's phase *axis* (the true phase modulo π) from reads
/// that may each be π-jumped, plus the circular spread of the reads after
/// folding onto the axis.
///
/// The double-angle trick maps both antipodal read clusters onto one:
/// `circular_mean(2p) / 2` is insensitive to π jumps. Which of
/// `axis` / `axis + π` is the true phase is decided globally in
/// [`preprocess_reads`].
fn channel_axis(phases: &[f64]) -> (f64, f64) {
    debug_assert!(!phases.is_empty());
    let doubled_mean = angle::circular_mean(phases.iter().map(|&p| 2.0 * p))
        .unwrap_or(2.0 * phases[0]);
    let axis = doubled_mean / 2.0;
    // Fold every read onto the axis cluster and measure the spread there.
    let folded: Vec<f64> = phases
        .iter()
        .map(|&p| {
            if angle::distance(p, axis) <= std::f64::consts::FRAC_PI_2 {
                p
            } else {
                p + std::f64::consts::PI
            }
        })
        .collect();
    let spread = angle::circular_std(folded.iter().copied()).unwrap_or(0.0);
    (axis, spread)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn read(channel: usize, phase: f64) -> RawRead {
        RawRead {
            channel,
            frequency_hz: 902.75e6 + channel as f64 * 0.5e6,
            phase: angle::wrap_tau(phase),
            rssi_dbm: -55.0,
            timestamp_s: channel as f64 * 0.2,
        }
    }

    #[test]
    fn aggregates_per_channel() {
        let reads = vec![read(0, 1.0), read(0, 1.1), read(1, 1.2), read(1, 1.3)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].read_count, 2);
        assert!((obs[0].phase - 1.05).abs() < 1e-9);
        assert_eq!(obs[0].channel, 0);
        assert!((obs[0].rssi_dbm + 55.0).abs() < 1e-12);
    }

    #[test]
    fn pi_jump_minority_is_folded_back() {
        // 5 reads, 2 jumped by π: the majority cluster must win.
        let reads = vec![
            read(0, 0.5),
            read(0, 0.52),
            read(0, 0.5 + PI),
            read(0, 0.48),
            read(0, 0.51 + PI),
        ];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!((obs[0].phase - 0.5).abs() < 0.05, "phase={}", obs[0].phase);
        assert!(obs[0].phase_spread < 0.1);
    }

    #[test]
    fn pi_jump_near_wrap_boundary() {
        // True phase near 0; jumped reads near π. Wrapping must not confuse
        // the vote.
        let reads = vec![read(0, 0.02), read(0, -0.03), read(0, 0.01 + PI)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        assert!(
            angle::distance(obs[0].phase, 0.0) < 0.05,
            "phase={}",
            obs[0].phase
        );
    }

    #[test]
    fn unwraps_across_channels() {
        // Steep line: 1.1 rad per channel, wraps several times over 20 channels.
        let true_line = |c: usize| 0.3 + 1.1 * c as f64;
        let reads: Vec<RawRead> = (0..20).map(|c| read(c, true_line(c))).collect();
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        for w in obs.windows(2) {
            assert!(
                ((w[1].phase - w[0].phase) - 1.1).abs() < 1e-6,
                "increment {}",
                w[1].phase - w[0].phase
            );
        }
    }

    #[test]
    fn min_reads_filter_drops_thin_channels() {
        let reads = vec![read(0, 1.0), read(0, 1.0), read(1, 2.0)];
        let cfg = PreprocessConfig { min_reads_per_channel: 2, ..Default::default() };
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].channel, 0);
    }

    #[test]
    fn empty_input_errors() {
        assert_eq!(
            preprocess_reads(&[], &PreprocessConfig::default()).unwrap_err(),
            PreprocessError::NoUsableChannels
        );
    }

    #[test]
    fn correction_can_be_disabled() {
        let reads = vec![read(0, 0.5), read(0, 0.5 + PI)];
        let cfg = PreprocessConfig { correct_pi_jumps: false, ..Default::default() };
        // With correction off the two antipodal reads average to something
        // near the midpoint (circular mean undefined-ish); just check we get
        // an observation and do not crash.
        let obs = preprocess_reads(&reads, &cfg).unwrap();
        assert_eq!(obs[0].read_count, 2);
    }

    #[test]
    fn channels_sorted_by_frequency() {
        let reads = vec![read(5, 1.0), read(1, 0.5), read(3, 0.7)];
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        let freqs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        assert!(freqs.windows(2).all(|w| w[1] > w[0]));
    }
}
