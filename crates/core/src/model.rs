//! Per-antenna observation extraction: from raw reads to the fitted line
//! parameters `(kᵢ, bᵢ)` of the multi-frequency phase model (paper Eq. 6).
//!
//! This stage composes the pre-processing of `rfp-dsp` (π-jump correction,
//! circular averaging, unwrapping) with the robust line fit that implements
//! the paper's multipath suppression: channels whose phase deviates from
//! the consensus line are dropped before the slope/intercept are read off.

use crate::obs::counter_add;
use crate::obs::id::{
    FRONTEND_CHANNELS, FRONTEND_READS, FRONTEND_TRIG_LIBM_READS, FRONTEND_TRIG_POLY_READS,
    FRONTEND_TRIG_RECURRENCE_READS, FRONTEND_TRIG_TABLE_READS, FRONTEND_WINDOWS,
};
use rfp_dsp::preprocess::{preprocess_reads_with, ChannelObservation, PreprocessConfig, RawRead};
use rfp_dsp::robust::{robust_line_fit_with, RobustFitConfig};
use rfp_dsp::workspace::FrontEndWorkspace;
use rfp_geom::{angle, AntennaPose};

/// The fitted multi-frequency line of one antenna, plus diagnostics.
///
/// `slope` is `kᵢ = 4π dᵢ / c + k_t` (rad/Hz) and `intercept` is
/// `bᵢ = θ_orient(Aᵢ, α) + b_t` reduced modulo 2π — the unwrapping constant
/// makes the absolute intercept unobservable, so only its value on the
/// circle carries information.
#[derive(Debug, Clone)]
pub struct AntennaObservation {
    /// Pose of the antenna that produced this observation.
    pub pose: AntennaPose,
    /// Fitted line slope `kᵢ`, rad/Hz.
    pub slope: f64,
    /// Fitted line intercept `bᵢ` at f = 0, wrapped to `[0, 2π)`.
    pub intercept: f64,
    /// Residual standard deviation of the (inlier) line fit, radians.
    pub residual_std: f64,
    /// Residual standard deviation *before* outlier rejection, radians —
    /// the error detector's mobility indicator.
    pub raw_residual_std: f64,
    /// R² of the raw (pre-rejection) fit.
    pub raw_r_squared: f64,
    /// Fraction of channels kept as inliers by the multipath suppression.
    pub inlier_fraction: f64,
    /// Per-channel observations (all channels, sorted by frequency).
    pub channels: Vec<ChannelObservation>,
    /// Parallel to `channels`: whether each survived outlier rejection.
    pub channel_inliers: Vec<bool>,
    /// Mean RSSI over inlier channels, dBm.
    pub mean_rssi_dbm: f64,
    /// Intercept of the unwrapped fit (not reduced mod 2π); differs from
    /// `intercept` by a multiple of 2π. Kept private: only residual-curve
    /// reconstruction needs it.
    unwrapped_intercept: f64,
}

impl AntennaObservation {
    /// Unwrapped phase of channel `j`'s observation predicted by the fitted
    /// line.
    pub fn predicted_phase(&self, frequency_hz: f64) -> f64 {
        // The stored intercept is wrapped; reconstruct the unwrapped line
        // through the first inlier channel instead.
        self.slope * frequency_hz + self.unwrapped_intercept()
    }

    /// The intercept of the actual unwrapped fit (not reduced mod 2π) —
    /// useful for residual curves; differs from [`Self::intercept`] by a
    /// multiple of 2π.
    pub fn unwrapped_intercept(&self) -> f64 {
        self.unwrapped_intercept
    }

    /// Number of usable channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// An observation carrying only a fitted line `(slope, intercept)` —
    /// no channel detail, no RSSI (`mean_rssi_dbm` is `-∞`, which
    /// disables the solver's RSSI mode penalty). Intended for synthetic
    /// observations built straight from the forward model in tests and
    /// benches; real observations come from [`extract_observation`].
    pub fn from_line(pose: AntennaPose, slope: f64, intercept: f64) -> Self {
        let mut o = Self::new_empty(pose);
        o.slope = slope;
        o.intercept = angle::wrap_tau(intercept);
        o.unwrapped_intercept = intercept;
        o
    }

    pub(crate) fn new_empty(pose: AntennaPose) -> Self {
        AntennaObservation {
            pose,
            slope: 0.0,
            intercept: 0.0,
            residual_std: 0.0,
            raw_residual_std: 0.0,
            raw_r_squared: 0.0,
            inlier_fraction: 0.0,
            channels: Vec::new(),
            channel_inliers: Vec::new(),
            mean_rssi_dbm: f64::NEG_INFINITY,
            unwrapped_intercept: 0.0,
        }
    }
}

/// Errors from [`extract_observation`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// Pre-processing could not produce any usable channel.
    Preprocess(rfp_dsp::preprocess::PreprocessError),
    /// Too few channels survived to fit a line.
    TooFewChannels {
        /// Channels available after pre-processing.
        available: usize,
    },
    /// The line fit itself failed (degenerate input).
    Fit(rfp_dsp::linfit::FitError),
}

impl std::fmt::Display for ExtractError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtractError::Preprocess(e) => write!(f, "pre-processing failed: {e}"),
            ExtractError::TooFewChannels { available } => {
                write!(f, "only {available} channels available; need more to fit a line")
            }
            ExtractError::Fit(e) => write!(f, "line fit failed: {e}"),
        }
    }
}

impl std::error::Error for ExtractError {}

impl From<rfp_dsp::preprocess::PreprocessError> for ExtractError {
    fn from(e: rfp_dsp::preprocess::PreprocessError) -> Self {
        ExtractError::Preprocess(e)
    }
}

impl From<rfp_dsp::linfit::FitError> for ExtractError {
    fn from(e: rfp_dsp::linfit::FitError) -> Self {
        ExtractError::Fit(e)
    }
}

/// Configuration for observation extraction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ExtractConfig {
    /// Pre-processing options.
    pub preprocess: PreprocessConfig,
    /// Robust-fit (multipath suppression) options.
    pub robust: RobustFitConfig,
    /// When false, skip outlier rejection entirely (used by the Fig. 12
    /// "Multipath without suppression" arm).
    pub suppress_multipath: bool,
}

impl ExtractConfig {
    /// Paper defaults: suppression on.
    pub fn paper() -> Self {
        ExtractConfig {
            preprocess: PreprocessConfig::default(),
            robust: RobustFitConfig::default(),
            suppress_multipath: true,
        }
    }
}

/// Extracts one antenna's [`AntennaObservation`] from its raw reads.
///
/// # Errors
///
/// Returns [`ExtractError`] if pre-processing yields no channels or fewer
/// than 5 channels survive (a line through so few channels has useless
/// slope variance for ranging).
pub fn extract_observation(
    pose: AntennaPose,
    reads: &[RawRead],
    config: &ExtractConfig,
) -> Result<AntennaObservation, ExtractError> {
    let mut ws = FrontEndWorkspace::default();
    let mut obs = AntennaObservation::new_empty(pose);
    extract_observation_into(pose, reads, config, &mut ws, &mut obs)?;
    Ok(obs)
}

/// [`extract_observation`] against caller-owned scratch: the SoA front-end
/// columns live in `ws` and the output observation is rebuilt in place in
/// `out` (its `channels` / `channel_inliers` buffers are reused), so the
/// steady-state path performs no heap allocation.
///
/// On error `out` is left in an unspecified but valid state; callers should
/// only use it after an `Ok`.
///
/// # Errors
///
/// As [`extract_observation`].
pub fn extract_observation_into(
    pose: AntennaPose,
    reads: &[RawRead],
    config: &ExtractConfig,
    ws: &mut FrontEndWorkspace,
    out: &mut AntennaObservation,
) -> Result<(), ExtractError> {
    counter_add(FRONTEND_WINDOWS, 1);
    counter_add(FRONTEND_READS, reads.len() as u64);
    let preprocessed = preprocess_reads_with(ws, reads, &config.preprocess, &mut out.channels);
    // Per-backend trig tallies are valid even on error windows.
    let [table, poly, libm, recurrence] = ws.trig_hits();
    counter_add(FRONTEND_TRIG_TABLE_READS, table);
    counter_add(FRONTEND_TRIG_POLY_READS, poly);
    counter_add(FRONTEND_TRIG_LIBM_READS, libm);
    counter_add(FRONTEND_TRIG_RECURRENCE_READS, recurrence);
    preprocessed?;
    if out.channels.len() < 5 {
        return Err(ExtractError::TooFewChannels { available: out.channels.len() });
    }
    counter_add(FRONTEND_CHANNELS, out.channels.len() as u64);

    // Raw fit from the sums the front end already accumulated while
    // unwrapping — no second pass over the columns.
    let raw_fit = ws.raw_fit()?;

    let (fit, inlier_fraction) = if config.suppress_multipath {
        let n = out.channels.len();
        let (xs, ys, fit_ws) = ws.fit_columns();
        let summary = robust_line_fit_with(fit_ws, xs, ys, &config.robust)?;
        out.channel_inliers.clear();
        out.channel_inliers.extend_from_slice(ws.fit.inlier_mask());
        (summary.fit, summary.inlier_fraction(n))
    } else {
        out.channel_inliers.clear();
        out.channel_inliers.resize(out.channels.len(), true);
        (raw_fit, 1.0)
    };
    finish_observation(pose, &raw_fit, &fit, inlier_fraction, out);
    Ok(())
}

/// Shared tail of the batch and streaming extraction paths: fills the
/// fitted-line fields of `out` from the raw fit and the accepted (robust
/// or raw) fit. `out.channels` and `out.channel_inliers` must already be
/// populated — the inlier-mean RSSI is computed from them here.
pub(crate) fn finish_observation(
    pose: AntennaPose,
    raw_fit: &rfp_dsp::linfit::LineFit,
    fit: &rfp_dsp::linfit::LineFit,
    inlier_fraction: f64,
    out: &mut AntennaObservation,
) {
    let mut rssi_sum = 0.0;
    let mut rssi_n = 0usize;
    for (c, &keep) in out.channels.iter().zip(&out.channel_inliers) {
        if keep {
            rssi_sum += c.rssi_dbm;
            rssi_n += 1;
        }
    }

    out.pose = pose;
    out.slope = fit.slope;
    out.intercept = angle::wrap_tau(fit.intercept);
    out.residual_std = fit.residual_std;
    out.raw_residual_std = raw_fit.residual_std;
    out.raw_r_squared = raw_fit.r_squared;
    out.inlier_fraction = inlier_fraction;
    out.mean_rssi_dbm = rssi_sum / rssi_n.max(1) as f64;
    out.unwrapped_intercept = fit.intercept;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::Vec2;
    use rfp_phys::propagation;
    use rfp_sim::{Motion, MultipathEnvironment, NoiseModel, ReaderConfig, Scene, SimTag};

    fn clean_scene() -> Scene {
        Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal())
    }

    #[test]
    fn extracts_slope_matching_distance() {
        let scene = clean_scene();
        let tag =
            SimTag::nominal(1).with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.0));
        let survey = scene.survey(&tag, 1);
        let obs = extract_observation(
            scene.antenna_poses()[0],
            &survey.per_antenna[0],
            &ExtractConfig::paper(),
        )
        .unwrap();
        let d = scene.antenna_poses()[0].distance_to(tag.motion().position(0.0));
        let kt = tag.electrical().linearized(&scene.reader().plan).kt;
        let expect = propagation::slope_from_distance(d) + kt;
        assert!((obs.slope - expect).abs() < 2e-10, "slope {} want {expect}", obs.slope);
        assert_eq!(obs.channel_count(), 50);
        assert_eq!(obs.inlier_fraction, 1.0);
        assert!(obs.residual_std < 0.01);
    }

    #[test]
    fn intercept_is_wrapped() {
        let scene = clean_scene();
        let tag =
            SimTag::nominal(2).with_motion(Motion::planar_static(Vec2::new(0.1, 2.0), 0.9));
        let survey = scene.survey(&tag, 2);
        let obs = extract_observation(
            scene.antenna_poses()[1],
            &survey.per_antenna[1],
            &ExtractConfig::paper(),
        )
        .unwrap();
        assert!((0.0..std::f64::consts::TAU).contains(&obs.intercept));
        // Wrapped and unwrapped intercepts agree modulo 2π.
        let diff = obs.unwrapped_intercept() - obs.intercept;
        let turns = diff / std::f64::consts::TAU;
        assert!((turns - turns.round()).abs() < 1e-9);
    }

    #[test]
    fn multipath_channels_get_rejected() {
        let scene = clean_scene().with_environment(MultipathEnvironment::cluttered(3, 5));
        let tag =
            SimTag::nominal(3).with_motion(Motion::planar_static(Vec2::new(0.8, 1.2), 0.3));
        let survey = scene.survey(&tag, 3);
        let with = extract_observation(
            scene.antenna_poses()[0],
            &survey.per_antenna[0],
            &ExtractConfig::paper(),
        )
        .unwrap();
        let without = extract_observation(
            scene.antenna_poses()[0],
            &survey.per_antenna[0],
            &ExtractConfig { suppress_multipath: false, ..ExtractConfig::paper() },
        )
        .unwrap();
        assert!(with.residual_std <= without.residual_std + 1e-12);
        assert!(without.inlier_fraction == 1.0);
    }

    #[test]
    fn too_few_reads_error() {
        let pose = clean_scene().antenna_poses()[0];
        let reads: Vec<RawRead> = (0..3)
            .map(|c| RawRead {
                channel: c,
                frequency_hz: 902.75e6 + c as f64 * 0.5e6,
                phase: 1.0,
                rssi_dbm: -50.0,
                timestamp_s: 0.0,
                phase_code: None,
            })
            .collect();
        match extract_observation(pose, &reads, &ExtractConfig::paper()) {
            Err(ExtractError::TooFewChannels { available: 3 }) => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(
            extract_observation(pose, &[], &ExtractConfig::paper()),
            Err(ExtractError::Preprocess(_))
        ));
    }

    #[test]
    fn predicted_phase_consistent() {
        let scene = clean_scene();
        let tag =
            SimTag::nominal(4).with_motion(Motion::planar_static(Vec2::new(0.4, 1.8), 0.2));
        let survey = scene.survey(&tag, 4);
        let obs = extract_observation(
            scene.antenna_poses()[2],
            &survey.per_antenna[2],
            &ExtractConfig::paper(),
        )
        .unwrap();
        for c in &obs.channels {
            let pred = obs.predicted_phase(c.frequency_hz);
            assert!((pred - c.phase).abs() < 0.05, "channel {}", c.channel);
        }
    }
}
