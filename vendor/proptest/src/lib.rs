//! Offline API-compatible subset of the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `proptest` its test suites use: the [`proptest!`]
//! macro (`arg in strategy` parameters, optional
//! `#![proptest_config(...)]`), range / tuple / collection strategies, and
//! the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` family.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the assertion message and
//!   the case index; cases are deterministic per test name, so a failure
//!   reproduces exactly by re-running the test.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   own name (FNV-1a), so runs are reproducible without a persistence
//!   file and independent of execution order.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    pub use crate::strategy::collection::{btree_set, vec, BTreeSetStrategy, VecStrategy};
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical `bool` strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool()
        }
    }
}

pub mod prelude {
    //! One-line import mirroring `proptest::prelude::*`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The entry-point macro: a block of `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run($config, stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

/// Asserts a condition inside a property; on failure the current case
/// fails with the formatted message (no panic unwinding mid-case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Discards the current case (does not count toward the case budget) when
/// the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
