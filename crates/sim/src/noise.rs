//! Measurement noise model.
//!
//! The per-read corruption a COTS reader applies on top of the clean
//! physics: Gaussian phase noise, Gaussian RSSI noise, Bernoulli π jumps
//! (the ImpinJ demodulator resolves phase only modulo π) and random read
//! drops.
//!
//! The `paper_like` preset is calibrated so that, with the standard reader
//! configuration (50 channels × 8 reads), the per-antenna slope-ranging
//! error lands at the few-centimetre level that produces the paper's
//! ~7.6 cm mean localization error (see DESIGN.md §10).

use rand::Rng;

/// Per-read noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Standard deviation of the Gaussian phase noise per read at the
    /// reference RSSI ([`NoiseModel::REFERENCE_RSSI_DBM`]), radians. The
    /// effective per-read noise scales with signal strength (see
    /// [`NoiseModel::phase_std_at`]).
    pub phase_std_rad: f64,
    /// Standard deviation of the Gaussian RSSI noise per read, dB.
    pub rssi_std_db: f64,
    /// Probability that a read is reported shifted by exactly π.
    pub pi_jump_probability: f64,
    /// Probability that a scheduled read is lost entirely.
    pub drop_probability: f64,
}

impl NoiseModel {
    /// RSSI at which [`NoiseModel::phase_std_rad`] applies, dBm (a tag at
    /// ~mid working region).
    pub const REFERENCE_RSSI_DBM: f64 = -55.0;

    /// Phase noise at a given received power: the demodulator's phase
    /// jitter grows as SNR falls, `σ(rssi) = σ_ref · 10^((ref − rssi)/40)`
    /// (amplitude-ratio scaling), clamped to `[σ_ref/2, 4σ_ref]`. This is
    /// why the paper's near region senses slightly better than far
    /// (Figs. 9, 10): stronger line-of-sight → cleaner phase.
    pub fn phase_std_at(&self, rssi_dbm: f64) -> f64 {
        if self.phase_std_rad <= 0.0 {
            return 0.0;
        }
        let scale = 10f64.powf((Self::REFERENCE_RSSI_DBM - rssi_dbm) / 40.0);
        self.phase_std_rad * scale.clamp(0.5, 4.0)
    }

    /// Noise levels matching a well-installed ImpinJ R420 deployment.
    pub fn paper_like() -> Self {
        NoiseModel {
            phase_std_rad: 0.009,
            rssi_std_db: 1.0,
            pi_jump_probability: 0.15,
            drop_probability: 0.02,
        }
    }

    /// No noise at all — for model-validation tests and the Fig. 4–6
    /// empirical-study benches.
    pub fn clean() -> Self {
        NoiseModel {
            phase_std_rad: 0.0,
            rssi_std_db: 0.0,
            pi_jump_probability: 0.0,
            drop_probability: 0.0,
        }
    }

    /// Returns a copy with a different phase noise (for ablation sweeps).
    pub fn with_phase_std(&self, phase_std_rad: f64) -> Self {
        NoiseModel { phase_std_rad, ..*self }
    }

    /// Samples a Gaussian with the given std using Box–Muller.
    pub(crate) fn gaussian<R: Rng>(rng: &mut R, std: f64) -> f64 {
        if std <= 0.0 {
            return 0.0;
        }
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::paper_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clean_is_silent() {
        let n = NoiseModel::clean();
        assert_eq!(n.phase_std_rad, 0.0);
        assert_eq!(n.pi_jump_probability, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoiseModel::gaussian(&mut rng, 0.0), 0.0);
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let samples: Vec<f64> =
            (0..n).map(|_| NoiseModel::gaussian(&mut rng, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }

    #[test]
    fn paper_like_values_sane() {
        let n = NoiseModel::paper_like();
        assert!(n.phase_std_rad > 0.0 && n.phase_std_rad < 0.5);
        assert!(n.pi_jump_probability < 0.5, "majority vote must remain valid");
        assert_eq!(NoiseModel::default(), n);
    }

    #[test]
    fn with_phase_std_overrides_only_phase() {
        let n = NoiseModel::paper_like().with_phase_std(0.3);
        assert_eq!(n.phase_std_rad, 0.3);
        assert_eq!(n.rssi_std_db, NoiseModel::paper_like().rssi_std_db);
    }
}
#[cfg(test)]
mod snr_tests {
    use super::*;

    #[test]
    fn phase_noise_scales_with_rssi() {
        let n = NoiseModel::paper_like();
        let near = n.phase_std_at(-45.0);
        let reference = n.phase_std_at(NoiseModel::REFERENCE_RSSI_DBM);
        let far = n.phase_std_at(-70.0);
        assert!(near < reference && reference < far, "{near} {reference} {far}");
        assert!((reference - n.phase_std_rad).abs() < 1e-15);
        // Clamped at both ends.
        assert_eq!(n.phase_std_at(-10.0), n.phase_std_rad * 0.5);
        assert_eq!(n.phase_std_at(-120.0), n.phase_std_rad * 4.0);
        // Clean model stays silent everywhere.
        assert_eq!(NoiseModel::clean().phase_std_at(-80.0), 0.0);
    }
}
