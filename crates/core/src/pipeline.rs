//! The end-to-end RF-Prism pipeline (paper Fig. 2).
//!
//! [`RfPrism`] owns everything the sensing side legitimately knows: the
//! antenna poses (measured at deployment), the reader's channel plan, and
//! the algorithm configuration. One call to [`RfPrism::sense`] runs
//! pre-processing → per-antenna line fitting (with multipath suppression) →
//! error detection → the joint disentangling solve, and returns the tag's
//! position, orientation and material parameters simultaneously. The
//! solve runs on the dimension-generic lane core (`rfp_core::lm`,
//! [`LmCore<5>`](crate::LmCore) behind the [`solve_2d_seeded_warm`]
//! facade), so pipeline, batch and streaming all share one LM engine.

use crate::batch::BatchCache;
use crate::detector::{assess, DetectorConfig, MobilityVerdict};
use crate::material::MaterialFeatures;
use crate::obs;
use crate::model::{extract_observation_into, AntennaObservation, ExtractConfig, ExtractError};
use crate::solver::{
    solve_2d_seeded_warm, SolveError, SolveSeeds, SolverConfig, SolverWorkspace, TagEstimate2D,
    WarmStart,
};
use crate::DeviceCalibration;
use rfp_dsp::preprocess::RawRead;
use rfp_dsp::workspace::FrontEndWorkspace;
use rfp_geom::{AntennaPose, Region2, Vec2};
use rfp_phys::FrequencyPlan;

/// Algorithm configuration for the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RfPrismConfig {
    /// Pre-processing + robust fitting options.
    pub extract: ExtractConfig,
    /// Joint solver options.
    pub solver: SolverConfig,
    /// Error-detector thresholds.
    pub detector: DetectorConfig,
    /// When true (default), a `Moving` verdict aborts the solve and
    /// [`RfPrism::sense`] returns [`SenseError::TagMoving`] — the paper
    /// filters such windows out. Set false to solve anyway (used by the
    /// ablation that quantifies how much the detector saves).
    pub reject_moving: bool,
}

impl RfPrismConfig {
    /// Paper defaults.
    pub fn paper() -> Self {
        RfPrismConfig {
            extract: ExtractConfig::paper(),
            solver: SolverConfig::default(),
            detector: DetectorConfig::default(),
            reject_moving: true,
        }
    }

    /// Returns a copy using the given front-end trigonometry backend
    /// (builder style). The provider threads through every extraction
    /// this config drives — the 2-D/3-D pipelines, material-feature
    /// inputs and the batch engine's per-worker front ends. The default
    /// ([`rfp_dsp::TrigProvider::Table`]) is bit-identical to libm;
    /// [`rfp_dsp::TrigProvider::Polynomial`] suits continuous synthetic
    /// phases, [`rfp_dsp::TrigProvider::Libm`] is the oracle.
    pub fn with_trig(mut self, trig: rfp_dsp::TrigProvider) -> Self {
        self.extract.preprocess.trig = trig;
        self
    }
}

/// The result of one sensing pass.
#[derive(Debug, Clone)]
pub struct SensingResult {
    /// Disentangled tag state (position, orientation, `k_t`, `b_t`).
    pub estimate: TagEstimate2D,
    /// The per-antenna observations that produced it.
    pub observations: Vec<AntennaObservation>,
    /// Error-detector verdict for this window.
    pub verdict: MobilityVerdict,
}

impl SensingResult {
    /// Extracts the material feature vector, given the tag's one-time
    /// device calibration (paper §V-B).
    pub fn material_features(
        &self,
        calibration: &DeviceCalibration,
        channel_count: usize,
    ) -> MaterialFeatures {
        MaterialFeatures::extract(&self.observations, &self.estimate, calibration, channel_count)
    }
}

/// Errors from [`RfPrism::sense`].
#[derive(Debug, Clone, PartialEq)]
pub enum SenseError {
    /// The reads slice length differs from the configured antenna count.
    AntennaCountMismatch {
        /// Antennas the pipeline was built with.
        expected: usize,
        /// Read groups supplied.
        got: usize,
    },
    /// Too few antennas produced usable observations.
    TooFewObservations {
        /// Usable observations.
        usable: usize,
        /// First extraction error encountered, if any.
        first_error: Option<ExtractError>,
    },
    /// The error detector flagged tag motion during the hop round.
    TagMoving {
        /// Worst post-rejection residual std, radians.
        worst_residual_std: f64,
    },
    /// The joint solver failed.
    Solve(SolveError),
}

impl std::fmt::Display for SenseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SenseError::AntennaCountMismatch { expected, got } => {
                write!(f, "expected reads for {expected} antennas, got {got}")
            }
            SenseError::TooFewObservations { usable, .. } => {
                write!(f, "only {usable} usable antenna observations; need at least 3")
            }
            SenseError::TagMoving { worst_residual_std } => write!(
                f,
                "tag moved during the hop round (residual {worst_residual_std:.3} rad); window discarded"
            ),
            SenseError::Solve(e) => write!(f, "solver failed: {e}"),
        }
    }
}

impl std::error::Error for SenseError {}

impl From<SolveError> for SenseError {
    fn from(e: SolveError) -> Self {
        SenseError::Solve(e)
    }
}

/// Reusable scratch for a full sensing pass: the DSP front-end columns
/// ([`FrontEndWorkspace`]), the solver scratch ([`SolverWorkspace`]) and
/// free-lists of recycled [`AntennaObservation`]s and observation vectors.
///
/// One `SenseWorkspace` per worker thread makes the whole
/// raw-reads → estimate path allocation-free in steady state: feed results
/// back with [`SenseWorkspace::recycle`] once you are done with them and
/// every buffer — channel columns, inlier masks, observation vectors,
/// solver candidates — is reused on the next call. Reuse never changes
/// results; `tests/alloc_free.rs` pins both properties.
#[derive(Debug, Default)]
pub struct SenseWorkspace {
    pub(crate) solver: SolverWorkspace,
    pub(crate) frontend: FrontEndWorkspace,
    obs_free: Vec<AntennaObservation>,
    vec_free: Vec<Vec<AntennaObservation>>,
}

impl SenseWorkspace {
    /// Returns a result's buffers to the workspace pools so the next
    /// [`RfPrism::sense_reusing`] call can reuse them instead of
    /// allocating. Purely an optimization — dropping the result instead is
    /// always correct.
    pub fn recycle(&mut self, result: SensingResult) {
        self.recycle_observations(result.observations);
    }

    pub(crate) fn take_observations(&mut self) -> Vec<AntennaObservation> {
        let mut v = self.vec_free.pop().unwrap_or_default();
        v.clear();
        v
    }

    pub(crate) fn take_slot(&mut self, pose: AntennaPose) -> AntennaObservation {
        self.obs_free.pop().unwrap_or_else(|| AntennaObservation::new_empty(pose))
    }

    pub(crate) fn recycle_slot(&mut self, slot: AntennaObservation) {
        self.obs_free.push(slot);
    }

    pub(crate) fn recycle_observations(&mut self, mut v: Vec<AntennaObservation>) {
        self.obs_free.append(&mut v);
        self.vec_free.push(v);
    }
}

/// The RF-Prism sensing pipeline.
///
/// See the crate-level docs for a full example.
#[derive(Debug, Clone)]
pub struct RfPrism {
    poses: Vec<AntennaPose>,
    plan: FrequencyPlan,
    region: Region2,
    config: RfPrismConfig,
}

impl RfPrism {
    /// Creates a pipeline for antennas at `poses` hopping over `plan`.
    ///
    /// The multi-start search region defaults to the antennas' bounding box
    /// expanded by 3 m; narrow it with [`RfPrism::with_region`] when the
    /// working region is known (it always is in a real deployment — the
    /// paper measures it at installation time).
    ///
    /// # Panics
    ///
    /// Panics if fewer than 3 poses are supplied.
    pub fn new(poses: Vec<AntennaPose>, plan: FrequencyPlan) -> Self {
        assert!(poses.len() >= 3, "RF-Prism needs at least 3 antennas in 2-D");
        let xs: Vec<f64> = poses.iter().map(|p| p.position().x).collect();
        let ys: Vec<f64> = poses.iter().map(|p| p.position().y).collect();
        let mut min = Vec2::new(
            xs.iter().cloned().fold(f64::INFINITY, f64::min),
            ys.iter().cloned().fold(f64::INFINITY, f64::min),
        );
        let mut max = Vec2::new(
            xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        );
        let centroid = (min + max) / 2.0;
        // Degenerate (collinear) antenna layouts still need an area.
        min -= Vec2::new(0.1, 0.1);
        max += Vec2::new(0.1, 0.1);
        min -= Vec2::new(3.0, 3.0);
        max += Vec2::new(3.0, 3.0);
        // Distances are mirror-symmetric about the antenna plane, so a tag
        // behind the rack is indistinguishable from one in front — real
        // deployments break the tie by knowing which side the working
        // region is on. Clip the default region to the hemisphere the
        // antennas face (dominant axis of the mean boresight).
        let mean_dir: Vec2 = poses
            .iter()
            .fold(Vec2::ZERO, |acc, p| acc + p.boresight().xy());
        if mean_dir.norm() > 1e-6 {
            let margin = 0.05;
            if mean_dir.x.abs() >= mean_dir.y.abs() {
                if mean_dir.x > 0.0 {
                    min.x = centroid.x - margin;
                } else {
                    max.x = centroid.x + margin;
                }
            } else if mean_dir.y > 0.0 {
                min.y = centroid.y - margin;
            } else {
                max.y = centroid.y + margin;
            }
        }
        let region = Region2::new(min, max);
        RfPrism { poses, plan, region, config: RfPrismConfig::paper() }
    }

    /// Restricts the multi-start search region (builder style).
    pub fn with_region(mut self, region: Region2) -> Self {
        self.region = region;
        self
    }

    /// Overrides the algorithm configuration (builder style).
    pub fn with_config(mut self, config: RfPrismConfig) -> Self {
        self.config = config;
        self
    }

    /// The configured antenna poses.
    pub fn poses(&self) -> &[AntennaPose] {
        &self.poses
    }

    /// The configured channel plan.
    pub fn plan(&self) -> &FrequencyPlan {
        &self.plan
    }

    /// The multi-start search region.
    pub fn region(&self) -> Region2 {
        self.region
    }

    /// The algorithm configuration.
    pub fn config(&self) -> &RfPrismConfig {
        &self.config
    }

    /// Runs the full pipeline on one hop round of raw reads
    /// (`reads_per_antenna[i]` = antenna *i*'s reads).
    ///
    /// # Errors
    ///
    /// * [`SenseError::AntennaCountMismatch`] — wrong number of read groups;
    /// * [`SenseError::TooFewObservations`] — fewer than 3 antennas yielded
    ///   a fit (e.g. the tag was unreadable from some vantage points);
    /// * [`SenseError::TagMoving`] — the error detector rejected the window
    ///   (only when `reject_moving` is set);
    /// * [`SenseError::Solve`] — the joint solve failed.
    pub fn sense(&self, reads_per_antenna: &[Vec<RawRead>]) -> Result<SensingResult, SenseError> {
        let seeds = self.solve_seeds();
        let mut workspace = SenseWorkspace::default();
        self.sense_with(reads_per_antenna, &seeds, &mut workspace, None)
    }

    /// [`RfPrism::sense`] with a warm-start prior — typically the previous
    /// round's estimate (via [`WarmStart::from_estimate`]), optionally
    /// velocity-extrapolated by [`crate::TagTracker::extrapolate`]. The
    /// prior is refined first; when it passes the solver's validation gate
    /// the multi-start scan is skipped entirely, otherwise the solver falls
    /// back to the full (pruned) scan, so a stale prior can degrade speed
    /// but never accuracy.
    pub fn sense_warm(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
        warm: Option<&WarmStart>,
    ) -> Result<SensingResult, SenseError> {
        let seeds = self.solve_seeds();
        let mut workspace = SenseWorkspace::default();
        self.sense_with(reads_per_antenna, &seeds, &mut workspace, warm)
    }

    /// [`RfPrism::sense_warm`] against a prebuilt [`BatchCache`] and a
    /// reusable [`SenseWorkspace`] — the allocation-free steady-state entry
    /// point. Results are bit-identical to [`RfPrism::sense`] /
    /// [`RfPrism::sense_warm`]; pass results back via
    /// [`SenseWorkspace::recycle`] to keep the buffer pools primed.
    ///
    /// # Errors
    ///
    /// As [`RfPrism::sense`].
    pub fn sense_reusing(
        &self,
        cache: &BatchCache,
        reads_per_antenna: &[Vec<RawRead>],
        warm: Option<&WarmStart>,
        workspace: &mut SenseWorkspace,
    ) -> Result<SensingResult, SenseError> {
        self.sense_with(reads_per_antenna, cache.seeds(), workspace, warm)
    }

    /// The per-scene solver seeds for this pipeline's `(region, config)` —
    /// built once per batch by the batch engine and shared read-only across
    /// workers (see `crate::batch`). The pipeline knows its antenna poses,
    /// so the per-seed per-antenna geometry tables are precomputed here
    /// too; solves where extraction dropped an antenna fall back to direct
    /// evaluation with bit-identical results.
    pub(crate) fn solve_seeds(&self) -> SolveSeeds {
        SolveSeeds::for_scene(self.region, &self.config.solver, &self.poses)
    }

    /// [`RfPrism::sense`] against precomputed seeds and a reusable
    /// workspace; bit-identical results, no per-call allocation of the
    /// multi-start grid.
    pub(crate) fn sense_with(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
        seeds: &SolveSeeds,
        workspace: &mut SenseWorkspace,
        warm: Option<&WarmStart>,
    ) -> Result<SensingResult, SenseError> {
        let _sense_span = obs::span("sense");
        let _sense_timer = obs::time_histogram(obs::id::SENSE_LATENCY_US);
        obs::counter_add(obs::id::PIPELINE_WINDOWS_TOTAL, 1);
        if reads_per_antenna.len() != self.poses.len() {
            return Err(SenseError::AntennaCountMismatch {
                expected: self.poses.len(),
                got: reads_per_antenna.len(),
            });
        }
        let mut observations = workspace.take_observations();
        let mut first_error = None;
        {
            let _extract_span = obs::span("extract");
            for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
                let mut slot = workspace.take_slot(*pose);
                match extract_observation_into(
                    *pose,
                    reads,
                    &self.config.extract,
                    &mut workspace.frontend,
                    &mut slot,
                ) {
                    Ok(()) => observations.push(slot),
                    Err(e) => {
                        workspace.recycle_slot(slot);
                        obs::counter_add(obs::id::PIPELINE_EXTRACT_FAILURES, 1);
                        if first_error.is_none() {
                            first_error = Some(e);
                        }
                    }
                }
            }
        }
        if observations.len() < 3 {
            obs::counter_add(obs::id::PIPELINE_WINDOWS_TOO_FEW_OBS, 1);
            let usable = observations.len();
            workspace.recycle_observations(observations);
            return Err(SenseError::TooFewObservations { usable, first_error });
        }

        let verdict = assess(&observations, &self.config.detector);
        obs::verdict(&verdict);
        if self.config.reject_moving {
            if let MobilityVerdict::Moving { worst_residual_std } = verdict {
                obs::counter_add(obs::id::PIPELINE_WINDOWS_MOVING_REJECTED, 1);
                workspace.recycle_observations(observations);
                return Err(SenseError::TagMoving { worst_residual_std });
            }
        }

        let estimate = match solve_2d_seeded_warm(
            &observations,
            seeds,
            &self.config.solver,
            &mut workspace.solver,
            warm,
        ) {
            Ok(e) => e,
            Err(e) => {
                workspace.recycle_observations(observations);
                return Err(e.into());
            }
        };
        obs::counter_add(obs::id::PIPELINE_WINDOWS_OK, 1);
        Ok(SensingResult { estimate, observations, verdict })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::angle;
    use rfp_phys::Material;
    use rfp_sim::{Motion, MultipathEnvironment, NoiseModel, ReaderConfig, Scene, SimTag};

    fn prism_for(scene: &Scene) -> RfPrism {
        RfPrism::new(scene.antenna_poses(), scene.reader().plan)
            .with_region(scene.region())
    }

    #[test]
    fn senses_static_tag_accurately() {
        let scene = Scene::standard_2d();
        let truth = Vec2::new(0.4, 1.6);
        let alpha = 1.1;
        let tag = SimTag::with_seeded_diversity(10)
            .attached_to(Material::Wood)
            .with_motion(Motion::planar_static(truth, alpha));
        let survey = scene.survey(&tag, 31);
        let result = prism_for(&scene).sense(&survey.per_antenna).unwrap();
        let err_cm = result.estimate.position.distance(truth) * 100.0;
        assert!(err_cm < 30.0, "position error {err_cm} cm");
        let orient_err = angle::dipole_distance(result.estimate.orientation, alpha).to_degrees();
        assert!(orient_err < 30.0, "orientation error {orient_err}°");
        assert!(result.verdict.is_usable());
    }

    #[test]
    fn clean_conditions_give_millimetre_accuracy() {
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let truth = Vec2::new(1.1, 2.1);
        let tag = SimTag::nominal(1).with_motion(Motion::planar_static(truth, 0.3));
        let survey = scene.survey(&tag, 1);
        let result = prism_for(&scene).sense(&survey.per_antenna).unwrap();
        let err_mm = result.estimate.position.distance(truth) * 1000.0;
        // Only the arctangent curvature of the device phase remains.
        assert!(err_mm < 40.0, "position error {err_mm} mm");
    }

    #[test]
    fn moving_tag_rejected_by_default_allowed_when_configured() {
        let scene = Scene::standard_2d();
        let tag = SimTag::nominal(2).with_motion(Motion::planar_linear(
            Vec2::new(0.3, 1.0),
            Vec2::new(0.05, 0.05),
            0.0,
        ));
        let survey = scene.survey(&tag, 2);
        let prism = prism_for(&scene);
        assert!(matches!(
            prism.sense(&survey.per_antenna),
            Err(SenseError::TagMoving { .. })
        ));

        let permissive = prism
            .clone()
            .with_config(RfPrismConfig { reject_moving: false, ..RfPrismConfig::paper() });
        let r = permissive.sense(&survey.per_antenna).unwrap();
        assert!(!r.verdict.is_usable());
    }

    #[test]
    fn antenna_count_mismatch() {
        let scene = Scene::standard_2d();
        let prism = prism_for(&scene);
        assert!(matches!(
            prism.sense(&[Vec::new(), Vec::new()]),
            Err(SenseError::AntennaCountMismatch { expected: 3, got: 2 })
        ));
    }

    #[test]
    fn empty_reads_yield_too_few_observations() {
        let scene = Scene::standard_2d();
        let prism = prism_for(&scene);
        let err = prism
            .sense(&[Vec::new(), Vec::new(), Vec::new()])
            .unwrap_err();
        assert!(matches!(err, SenseError::TooFewObservations { usable: 0, .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn multipath_survey_still_senses() {
        let scene =
            Scene::standard_2d().with_environment(MultipathEnvironment::cluttered(3, 17));
        let truth = Vec2::new(0.7, 1.4);
        let tag = SimTag::with_seeded_diversity(11)
            .with_motion(Motion::planar_static(truth, 0.6));
        let survey = scene.survey(&tag, 3);
        let result = prism_for(&scene).sense(&survey.per_antenna).unwrap();
        let err_cm = result.estimate.position.distance(truth) * 100.0;
        assert!(err_cm < 60.0, "position error {err_cm} cm under multipath");
    }

    #[test]
    fn default_region_covers_standard_deployment() {
        let scene = Scene::standard_2d();
        // No with_region: the auto region must still contain the tag.
        let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan);
        assert!(prism.region().contains(Vec2::new(0.5, 1.5)));
        let tag = SimTag::nominal(4)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.2));
        let survey = scene.survey(&tag, 4);
        let result = prism.sense(&survey.per_antenna).unwrap();
        let err_cm = result.estimate.position.distance(Vec2::new(0.5, 1.5)) * 100.0;
        assert!(err_cm < 40.0, "auto-region error {err_cm} cm");
    }
}

impl RfPrism {
    /// Senses from several hop rounds jointly: per-antenna observations are
    /// extracted per round, rounds the error detector rejects are skipped,
    /// and the remaining line parameters are averaged (slopes
    /// arithmetically, intercepts circularly) before one joint solve.
    ///
    /// Phase noise averages down roughly as `1/√K` over `K` usable rounds;
    /// systematic errors (multipath bias) do not — see the
    /// `ablation_rounds` bench.
    ///
    /// # Errors
    ///
    /// As [`RfPrism::sense`]; additionally returns
    /// [`SenseError::TooFewObservations`] if *no* round was usable.
    pub fn sense_rounds(
        &self,
        rounds: &[Vec<Vec<rfp_dsp::preprocess::RawRead>>],
    ) -> Result<SensingResult, SenseError> {
        let seeds = self.solve_seeds();
        let mut workspace = SenseWorkspace::default();
        self.sense_rounds_with(rounds, &seeds, &mut workspace, None)
    }

    /// [`RfPrism::sense_rounds`] with a warm-start prior; see
    /// [`RfPrism::sense_warm`] for the warm-start contract.
    pub fn sense_rounds_warm(
        &self,
        rounds: &[Vec<Vec<rfp_dsp::preprocess::RawRead>>],
        warm: Option<&WarmStart>,
    ) -> Result<SensingResult, SenseError> {
        let seeds = self.solve_seeds();
        let mut workspace = SenseWorkspace::default();
        self.sense_rounds_with(rounds, &seeds, &mut workspace, warm)
    }

    /// [`RfPrism::sense_rounds`] against precomputed seeds and a reusable
    /// workspace; bit-identical results (see `crate::batch`).
    pub(crate) fn sense_rounds_with(
        &self,
        rounds: &[Vec<Vec<rfp_dsp::preprocess::RawRead>>],
        seeds: &SolveSeeds,
        workspace: &mut SenseWorkspace,
        warm: Option<&WarmStart>,
    ) -> Result<SensingResult, SenseError> {
        use rfp_geom::angle;
        let _sense_span = obs::span("sense_rounds");
        let _sense_timer = obs::time_histogram(obs::id::SENSE_LATENCY_US);
        obs::counter_add(obs::id::PIPELINE_WINDOWS_TOTAL, 1);
        let mut per_round: Vec<Vec<AntennaObservation>> = Vec::new();
        let mut last_moving: Option<f64> = None;
        for reads in rounds {
            if reads.len() != self.poses.len() {
                for v in per_round.drain(..) {
                    workspace.recycle_observations(v);
                }
                return Err(SenseError::AntennaCountMismatch {
                    expected: self.poses.len(),
                    got: reads.len(),
                });
            }
            let _extract_span = obs::span("extract");
            let mut observations = workspace.take_observations();
            let mut complete = true;
            for (pose, r) in self.poses.iter().zip(reads) {
                let mut slot = workspace.take_slot(*pose);
                match extract_observation_into(
                    *pose,
                    r,
                    &self.config.extract,
                    &mut workspace.frontend,
                    &mut slot,
                ) {
                    Ok(()) => observations.push(slot),
                    Err(_) => {
                        workspace.recycle_slot(slot);
                        obs::counter_add(obs::id::PIPELINE_EXTRACT_FAILURES, 1);
                        complete = false;
                        break;
                    }
                }
            }
            if !complete {
                obs::counter_add(obs::id::PIPELINE_ROUNDS_SKIPPED, 1);
                workspace.recycle_observations(observations);
                continue;
            }
            match assess(&observations, &self.config.detector) {
                MobilityVerdict::Moving { worst_residual_std } if self.config.reject_moving => {
                    obs::counter_add(obs::id::PIPELINE_ROUNDS_SKIPPED, 1);
                    last_moving = Some(worst_residual_std);
                    workspace.recycle_observations(observations);
                }
                _ => per_round.push(observations),
            }
        }
        if per_round.is_empty() {
            if let Some(worst_residual_std) = last_moving {
                obs::counter_add(obs::id::PIPELINE_WINDOWS_MOVING_REJECTED, 1);
                return Err(SenseError::TagMoving { worst_residual_std });
            }
            obs::counter_add(obs::id::PIPELINE_WINDOWS_TOO_FEW_OBS, 1);
            return Err(SenseError::TooFewObservations { usable: 0, first_error: None });
        }

        // Merge per antenna across rounds, in place in round 0's
        // observations (which then *become* the merged set — no clone).
        let k = per_round.len();
        for ai in 0..per_round[0].len() {
            let slope = per_round.iter().map(|r| r[ai].slope).sum::<f64>() / k as f64;
            let intercept = angle::wrap_tau(
                angle::circular_mean(per_round.iter().map(|r| r[ai].intercept))
                    .unwrap_or(per_round[0][ai].intercept),
            );
            let obs = &mut per_round[0][ai];
            obs.slope = slope;
            obs.intercept = intercept;
        }
        let merged = per_round.swap_remove(0);
        for v in per_round.drain(..) {
            workspace.recycle_observations(v);
        }
        let verdict = assess(&merged, &self.config.detector);
        obs::verdict(&verdict);
        let estimate = match solve_2d_seeded_warm(
            &merged,
            seeds,
            &self.config.solver,
            &mut workspace.solver,
            warm,
        ) {
            Ok(e) => e,
            Err(e) => {
                workspace.recycle_observations(merged);
                return Err(e.into());
            }
        };
        obs::counter_add(obs::id::PIPELINE_WINDOWS_OK, 1);
        Ok(SensingResult { estimate, observations: merged, verdict })
    }
}

#[cfg(test)]
mod multi_round_tests {
    use super::*;
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, Scene, SimTag};

    #[test]
    fn more_rounds_reduce_error() {
        let scene = Scene::standard_2d();
        let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
            .with_region(scene.region());
        let truth = Vec2::new(0.8, 1.9);
        let tag = SimTag::with_seeded_diversity(6)
            .with_motion(Motion::planar_static(truth, 0.6));
        let mut one_round = Vec::new();
        let mut five_rounds = Vec::new();
        for trial in 0..8u64 {
            let rounds: Vec<_> = (0..5)
                .map(|r| scene.survey(&tag, 10_000 + trial * 10 + r).per_antenna)
                .collect();
            let e1 = prism
                .sense_rounds(&rounds[..1])
                .unwrap()
                .estimate
                .position
                .distance(truth);
            let e5 = prism
                .sense_rounds(&rounds)
                .unwrap()
                .estimate
                .position
                .distance(truth);
            one_round.push(e1);
            five_rounds.push(e5);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&five_rounds) < mean(&one_round),
            "5 rounds {} m should beat 1 round {} m",
            mean(&five_rounds),
            mean(&one_round)
        );
    }

    #[test]
    fn moving_rounds_are_skipped() {
        let scene = Scene::standard_2d();
        let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
            .with_region(scene.region());
        let truth = Vec2::new(0.4, 1.3);
        let parked = SimTag::with_seeded_diversity(7)
            .with_motion(Motion::planar_static(truth, 0.2));
        let moving = SimTag::with_seeded_diversity(7).with_motion(Motion::planar_linear(
            truth,
            Vec2::new(0.05, 0.03),
            0.2,
        ));
        let rounds = vec![
            scene.survey(&moving, 1).per_antenna,
            scene.survey(&parked, 2).per_antenna,
            scene.survey(&moving, 3).per_antenna,
        ];
        let result = prism.sense_rounds(&rounds).unwrap();
        assert!(result.estimate.position.distance(truth) < 0.3);

        // All-moving input surfaces the detector verdict.
        let all_moving = vec![scene.survey(&moving, 4).per_antenna];
        assert!(matches!(
            prism.sense_rounds(&all_moving),
            Err(SenseError::TagMoving { .. })
        ));
        // Empty input errors cleanly.
        assert!(matches!(
            prism.sense_rounds(&[]),
            Err(SenseError::TooFewObservations { usable: 0, .. })
        ));
    }
}
