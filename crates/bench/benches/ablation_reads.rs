//! Ablation: reads per channel (intra-dwell averaging) vs accuracy.
//!
//! The R420 reads a lone tag dozens of times per 200 ms dwell; with many
//! tags in the field each gets only a few reads. This sweep quantifies how
//! the per-channel averaging budget drives sensing accuracy — the flip
//! side of the multi-tag sharing modelled in `rfp_sim::inventory`.

use rfp_bench::{loc, report};
use rfp_sim::{ReaderConfig, Scene};

fn main() {
    report::header("Ablation", "accuracy vs reads per channel (per antenna)");
    println!("{:>8} {:>14} {:>14}", "reads", "loc error", "orient error");
    let mut rows = Vec::new();
    for &reads in &[1usize, 2, 4, 8, 16, 32] {
        let scene = Scene::standard_2d()
            .with_reader(ReaderConfig::impinj_r420().with_reads_per_channel(reads));
        let specs: Vec<_> =
            loc::grid_orientation_specs(&scene, 2).into_iter().step_by(3).collect();
        let outcomes = loc::run_trials(&scene, &specs);
        let loc_cm = loc::mean_position_error_cm(&outcomes);
        let orient = loc::mean_orientation_error_deg(&outcomes);
        println!("{reads:>8} {:>14} {:>14}", report::cm(loc_cm), report::deg(orient));
        rows.push((reads, loc_cm));
    }
    println!();
    println!("with N tags in the field each tag gets roughly budget/N reads (see");
    println!("rfp_sim::inventory); 2–4 reads per channel is the multi-tag regime.");
    assert!(
        rows[0].1 > rows.last().unwrap().1,
        "1 read must be worse than 32: {rows:?}"
    );
}
