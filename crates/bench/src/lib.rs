//! Experiment harness reproducing the RF-Prism paper's evaluation.
//!
//! Every figure of §VI has a corresponding `[[bench]]` target (with
//! `harness = false`) under `benches/`; `cargo bench` runs them all and
//! prints paper-vs-measured rows. This library holds the shared machinery:
//!
//! * [`setup`] — the standard deployment, the paper's 25-point evaluation
//!   grid, tag construction and device calibration;
//! * [`loc`] — localization/orientation trial runner (Figs. 8, 9, 12,
//!   14–16);
//! * [`matid`] — material-identification dataset builder and classifier
//!   evaluation (Figs. 10, 11, 13, 17–20);
//! * [`report`] — consistent console formatting with explicit
//!   paper-reference columns.
//!
//! Absolute numbers come from the simulator substrate, not the authors'
//! testbed; EXPERIMENTS.md records how each measured value compares with
//! the paper's and why the shape is expected to (and does) hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod loc;
pub mod matid;
pub mod report;
pub mod setup;
