//! Property-based tests for the DSP primitives.

use proptest::prelude::*;
use rfp_dsp::linfit::{ols, theil_sen};
use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
use rfp_dsp::robust::{robust_line_fit, RobustFitConfig};
use rfp_dsp::stats;

proptest! {
    #[test]
    fn ols_recovers_exact_lines(
        slope in -100.0f64..100.0,
        intercept in -100.0f64..100.0,
        n in 3usize..80,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = ols(&xs, &ys).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    #[test]
    fn theil_sen_matches_ols_on_clean_lines(
        slope in -10.0f64..10.0,
        intercept in -10.0f64..10.0,
    ) {
        let xs: Vec<f64> = (0..25).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let a = ols(&xs, &ys).unwrap();
        let b = theil_sen(&xs, &ys).unwrap();
        prop_assert!((a.slope - b.slope).abs() < 1e-9);
        prop_assert!((a.intercept - b.intercept).abs() < 1e-9);
    }

    #[test]
    fn robust_fit_ignores_any_minority_of_outliers(
        slope in -1.0f64..1.0,
        outlier_shift in 1.0f64..50.0,
        positions in proptest::collection::btree_set(0usize..50, 1..12),
    ) {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| slope * x).collect();
        for &i in &positions {
            ys[i] += outlier_shift;
        }
        let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        prop_assert!(
            (r.fit.slope - slope).abs() < 1e-6,
            "slope {} vs {} with {} outliers",
            r.fit.slope, slope, positions.len()
        );
        for &i in &positions {
            prop_assert!(!r.inliers[i], "outlier {i} kept");
        }
    }

    #[test]
    fn percentile_monotone_and_bounded(
        values in proptest::collection::vec(-1e3f64..1e3, 1..60),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = stats::percentile(&values, lo).unwrap();
        let b = stats::percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-12);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-12 && b <= max + 1e-12);
    }

    #[test]
    fn mad_bounded_by_range(values in proptest::collection::vec(-1e3f64..1e3, 1..60)) {
        let m = stats::mad(&values).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= 0.0);
        prop_assert!(m <= (max - min) + 1e-12);
    }

    #[test]
    fn preprocess_output_sorted_and_complete(
        n_channels in 5usize..40,
        reads_per in 1usize..6,
        base in 0.0f64..6.0,
        slope_per_channel in -0.4f64..0.4,
    ) {
        let mut reads = Vec::new();
        for ch in 0..n_channels {
            for r in 0..reads_per {
                reads.push(RawRead {
                    channel: ch,
                    frequency_hz: 902.75e6 + ch as f64 * 0.5e6,
                    phase: rfp_geom::angle::wrap_tau(base + slope_per_channel * ch as f64),
                    rssi_dbm: -50.0,
                    timestamp_s: (ch * reads_per + r) as f64 * 0.01,
                    phase_code: None,
                });
            }
        }
        let obs = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        prop_assert_eq!(obs.len(), n_channels);
        for w in obs.windows(2) {
            prop_assert!(w[1].frequency_hz > w[0].frequency_hz);
            // Unwrapped: adjacent increments equal the true slope.
            prop_assert!(
                ((w[1].phase - w[0].phase) - slope_per_channel).abs() < 1e-6
            );
        }
        prop_assert!(obs.iter().all(|o| o.read_count == reads_per));
    }

    #[test]
    fn preprocess_invariant_to_read_order(
        seed_perm in proptest::collection::vec(0usize..1000, 30..60),
    ) {
        // Build reads, then process them in a permuted order: the output
        // must be identical (grouping is by channel, not arrival).
        let mut reads = Vec::new();
        for ch in 0..10usize {
            for r in 0..3usize {
                reads.push(RawRead {
                    channel: ch,
                    frequency_hz: 902.75e6 + ch as f64 * 0.5e6,
                    phase: rfp_geom::angle::wrap_tau(1.0 + 0.2 * ch as f64 + 0.001 * r as f64),
                    rssi_dbm: -50.0,
                    timestamp_s: 0.0,
                    phase_code: None,
                });
            }
        }
        let a = preprocess_reads(&reads, &PreprocessConfig::default()).unwrap();
        // Permute deterministically from the seed.
        let mut shuffled = reads.clone();
        for (i, &s) in seed_perm.iter().enumerate() {
            let j = s % shuffled.len();
            let i = i % shuffled.len();
            shuffled.swap(i, j);
        }
        let b = preprocess_reads(&shuffled, &PreprocessConfig::default()).unwrap();
        for (oa, ob) in a.iter().zip(&b) {
            prop_assert_eq!(oa.channel, ob.channel);
            prop_assert!((oa.phase - ob.phase).abs() < 1e-9);
        }
    }
}
