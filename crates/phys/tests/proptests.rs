//! Property-based tests for the physical forward models.

use proptest::prelude::*;
use rfp_geom::{AntennaPose, Vec3};
use rfp_phys::polarization::{orientation_phase, projection_magnitude};
use rfp_phys::{propagation, FrequencyPlan, Material, TagElectrical};

proptest! {
    #[test]
    fn slope_distance_round_trip(d in 0.01f64..50.0) {
        let k = propagation::slope_from_distance(d);
        prop_assert!((propagation::distance_from_slope(k) - d).abs() < 1e-9);
        prop_assert!(k > 0.0);
    }

    #[test]
    fn propagation_phase_additive_in_distance(
        d1 in 0.1f64..10.0, d2 in 0.1f64..10.0, f in 800e6f64..1000e6,
    ) {
        let p = propagation::phase(d1 + d2, f);
        prop_assert!((p - propagation::phase(d1, f) - propagation::phase(d2, f)).abs() < 1e-6);
    }

    #[test]
    fn path_loss_monotone(d1 in 0.1f64..10.0, extra in 0.01f64..10.0) {
        let f = 915e6;
        prop_assert!(
            propagation::free_space_path_loss_db(d1 + extra, f)
                > propagation::free_space_path_loss_db(d1, f)
        );
    }

    #[test]
    fn orientation_phase_is_scale_invariant_and_pi_symmetric(
        wx in -1.0f64..1.0, wy in -1.0f64..1.0, wz in -1.0f64..1.0,
        scale in 0.1f64..10.0,
        roll in -3.0f64..3.0,
    ) {
        let w = Vec3::new(wx, wy, wz);
        prop_assume!(w.norm() > 1e-3);
        let pose = AntennaPose::looking_at(Vec3::ZERO, Vec3::new(0.3, 2.0, -0.4), roll);
        prop_assume!(projection_magnitude(&pose, w.normalized()) > 1e-3);
        let th = orientation_phase(&pose, w);
        prop_assert!((orientation_phase(&pose, w * scale) - th).abs() < 1e-9);
        prop_assert!(
            rfp_geom::angle::distance(orientation_phase(&pose, -w), th) < 1e-9
        );
    }

    #[test]
    fn roll_shifts_orientation_phase_by_minus_two_roll(
        wx in -1.0f64..1.0, wz in -1.0f64..1.0,
        roll in -1.5f64..1.5,
    ) {
        let w = Vec3::new(wx, 0.0, wz);
        prop_assume!(w.norm() > 1e-2);
        let p0 = AntennaPose::looking_at(Vec3::ZERO, Vec3::Y, 0.0);
        let pr = p0.with_roll(roll);
        let d = rfp_geom::angle::difference(
            orientation_phase(&pr, w),
            orientation_phase(&p0, w),
        );
        prop_assert!(rfp_geom::angle::distance(d, -2.0 * roll) < 1e-9);
    }

    #[test]
    fn device_phase_linearization_residual_small(
        material_idx in 0usize..8,
        delta_f0 in -3e6f64..3e6,
        q_scale in 0.85f64..1.15,
    ) {
        let plan = FrequencyPlan::fcc_us();
        let tag = TagElectrical::with_manufacturing(delta_f0, q_scale, 0.0)
            .with_material(Material::from_class_index(material_idx));
        let lin = tag.linearized(&plan);
        // Eq. (5) of the paper: the device phase is near-linear in f.
        prop_assert!(lin.rms_residual < 0.08, "residual {}", lin.rms_residual);
        // The fit must actually describe the curve.
        for &f in plan.frequencies_hz().iter().step_by(7) {
            let err = (tag.device_phase(f) - (lin.kt * f + lin.bt)).abs();
            prop_assert!(err < 0.2, "pointwise error {err}");
        }
    }

    #[test]
    fn amplitude_factor_in_unit_interval(
        material_idx in 0usize..8,
        f in 902e6f64..928e6,
        delta_f0 in -3e6f64..3e6,
    ) {
        let tag = TagElectrical::with_manufacturing(delta_f0, 1.0, 0.0)
            .with_material(Material::from_class_index(material_idx));
        let a = tag.amplitude_factor(f);
        prop_assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn rssi_monotone_decreasing_in_distance(
        d in 0.1f64..5.0, extra in 0.05f64..5.0, proj in 0.05f64..1.0,
    ) {
        use rfp_phys::rssi::rssi_dbm;
        let t = TagElectrical::nominal();
        let f = 915e6;
        prop_assert!(rssi_dbm(d + extra, f, &t, proj) < rssi_dbm(d, f, &t, proj));
    }
}
