//! RF-Prism: versatile RFID-based sensing through phase disentangling.
//!
//! This crate is the paper's primary contribution — the pipeline of Fig. 2:
//!
//! ```text
//! raw reads ──► pre-processing ──► per-antenna line fits (kᵢ, bᵢ)
//!               (rfp-dsp)          [model]
//!                                      │
//!                       multipath suppression + error detection
//!                          [detector]  │
//!                                      ▼
//!                        joint disentangling solver  [solver]
//!                 kᵢ = 4π·dist(Aᵢ, x)/c + k_t
//!                 bᵢ = θ_orient(Aᵢ, α) + b_t   (mod 2π)
//!                                      │
//!            ┌─────────────────────────┼─────────────────────────┐
//!            ▼                         ▼                         ▼
//!      localization (x, y)      orientation (α)         material (k_t, b_t,
//!                                                       θ_material(f₁..fₙ))
//!                                                       [material]
//! ```
//!
//! The multi-frequency model (paper Eq. 6) turns each antenna's 50-channel
//! observation into a line whose slope mixes distance with the material
//! term and whose intercept mixes orientation with the material term; with
//! N ≥ 3 antennas the 2N fitted parameters over-determine the 5 unknowns
//! `(x, y, α, k_t, b_t)` and a multi-start Levenberg–Marquardt solve
//! disentangles them in one shot — no per-deployment calibration, no known
//! orientation, no antenna arrays.
//!
//! # Quick start
//!
//! ```
//! use rfp_core::RfPrism;
//! use rfp_geom::Vec2;
//! use rfp_sim::{Motion, Scene, SimTag};
//!
//! // Simulated stand-in for the paper's testbed.
//! let scene = Scene::standard_2d();
//! let tag = SimTag::with_seeded_diversity(5)
//!     .with_motion(Motion::planar_static(Vec2::new(0.3, 1.4), 0.4));
//! let survey = scene.survey(&tag, 1);
//!
//! // The sensing side sees only poses, the channel plan and raw reads.
//! let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan);
//! let result = prism.sense(&survey.per_antenna)?;
//! let err_cm = result.estimate.position.distance(Vec2::new(0.3, 1.4)) * 100.0;
//! assert!(err_cm < 40.0, "localization error {err_cm} cm");
//! # Ok::<(), rfp_core::SenseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna_cal;
pub mod batch;
pub mod calibration;
pub mod detector;
pub mod inventory;
pub mod lm;
pub mod material;
pub mod model;
pub mod obs;
pub mod pipeline;
pub mod pipeline3d;
pub mod reference;
pub mod solver;
pub mod solver3d;
pub mod streaming;
pub mod tracking;

pub use antenna_cal::AntennaCalibration;
pub use batch::{BatchCache, BatchCache3D, TagReads, TagRounds};
pub use calibration::{CalibrationDb, DeviceCalibration};
pub use detector::{DetectorConfig, MobilityVerdict};
pub use inventory::{InventorySensor, ItemOutcome, ItemReport};
pub use lm::{LaneMode, LaneStats, LmCore, ResidualModel, StepSolver, StepStats};
pub use material::{MaterialFeatures, MaterialIdentifier};
pub use model::AntennaObservation;
pub use pipeline::{RfPrism, RfPrismConfig, SenseError, SenseWorkspace, SensingResult};
pub use pipeline3d::{
    RfPrism3D, RfPrism3DConfig, Sense3DError, Sense3DWorkspace, Sensing3DResult,
};
pub use solver::{
    JacobianMode, PruneStats, SolveStats, SolverConfig, TagEstimate2D, WarmGate, WarmStart,
};
pub use solver3d::{TagEstimate3D, WarmStart3D};
pub use streaming::StreamingSession;
pub use tracking::{TagTracker, TrackerConfig};
