//! Material identification from the disentangled parameters (paper §V-B).
//!
//! After disentangling, `k_t` and `b_t` are determined by the target
//! material *and* the reader-tag hardware pair; the hardware part is
//! removed with the tag's one-time [`DeviceCalibration`]. To further
//! mitigate frequency-selective fading the per-channel residual
//! `θ_material(f) = θ_device(f) − θ_device0(f)` joins the feature vector
//! (paper Eq. 9), giving `F = (k_t, b_t, θ_material(f₁..f₅₀))` — 52
//! dimensions with the full FCC plan.
//!
//! [`MaterialIdentifier`] wraps feature standardization plus one of the
//! paper's three classifiers (KNN / SVM / Decision Tree, Fig. 13) or the
//! future-work MLP, and maps predicted class indices back to [`Material`].
//!
//! The front-end trig backend (`rfp_dsp::TrigProvider`, selected via
//! `ExtractConfig::preprocess.trig` or `RfPrismConfig::with_trig`) rides
//! upstream of this module: material features only see the resulting
//! [`AntennaObservation`]s. The default `Table` backend is bit-identical
//! to libm, so feature vectors — and therefore trained classifiers — are
//! unchanged by the faster path (pinned by a test below).

use crate::calibration::DeviceCalibration;
use crate::model::AntennaObservation;
use crate::solver::TagEstimate2D;
use rfp_geom::angle;
use rfp_ml::dataset::Dataset;
use rfp_ml::forest::{ForestConfig, RandomForest};
use rfp_ml::knn::KnnClassifier;
use rfp_ml::mlp::{MlpClassifier, MlpConfig};
use rfp_ml::scaler::StandardScaler;
use rfp_ml::svm::{SvmClassifier, SvmConfig};
use rfp_ml::tree::{DecisionTree, TreeConfig};
use rfp_ml::Classifier;
use rfp_phys::polarization::{orientation_phase, planar_dipole};
use rfp_phys::{propagation, Material};

/// The material feature vector of one sensing pass (paper Eq. 9).
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialFeatures {
    /// Calibrated material slope `k_t − k_t0`, rad/Hz.
    pub kt_material: f64,
    /// Calibrated material intercept `wrap(b_t − b_t0)`, radians in
    /// `(-π, π]`.
    pub bt_material: f64,
    /// Per-channel *line-removed* material response, radians, indexed by
    /// channel (see [`MaterialFeatures::extract`]); channels missing from
    /// the sensing pass hold `0.0`.
    pub theta_material: Vec<f64>,
}

impl MaterialFeatures {
    /// Extracts features from a solved sensing pass.
    ///
    /// For every antenna and inlier channel, the estimated propagation and
    /// orientation phases plus the calibrated `θ_device0(f)` (unwrapped
    /// across channels) are subtracted from the measured unwrapped phase.
    /// The remaining per-channel curves are averaged across antennas and
    /// then **de-lined**: a straight line over frequency is fitted and
    /// removed, leaving the curvature of the material response.
    ///
    /// De-lining matters: a residual position error `δd` leaks the phase
    /// `4π·δd·f/c` — a *line* in frequency with ~38 rad per metre of error,
    /// which would drown the material signature in the raw per-channel
    /// values. The line component of the material response is already
    /// carried by `(k_t, b_t)` from the joint solve, so the per-channel
    /// features keep only the position-error-free curvature (the
    /// frequency-selective part the paper adds them for).
    ///
    /// `channel_count` fixes the feature dimensionality (the classifier
    /// needs constant-length vectors even if some channels were dropped).
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty or `channel_count` is zero.
    pub fn extract(
        observations: &[AntennaObservation],
        estimate: &TagEstimate2D,
        calibration: &DeviceCalibration,
        channel_count: usize,
    ) -> Self {
        assert!(!observations.is_empty(), "need at least one observation");
        assert!(channel_count > 0, "channel_count must be positive");
        let _span = crate::obs::span("material_features");
        crate::obs::counter_add(crate::obs::id::MATERIAL_FEATURES_EXTRACTED, 1);

        let kt_material = estimate.kt - calibration.kt0();
        let bt_material = angle::wrap_pi(estimate.bt - calibration.bt0());

        // Unwrap the stored (mod 2π) calibration curve across channels: the
        // device response is smooth, ~0.02 rad between adjacent channels.
        // The unwrapped curve lands in a dense per-channel column (indexed
        // directly below — calibration channels come out of `iter()` in
        // ascending order, which the unwrap needs).
        let cal_samples: Vec<(usize, f64, f64)> = calibration.iter().collect();
        let mut cal_phases: Vec<f64> = cal_samples.iter().map(|&(_, _, v)| v).collect();
        angle::unwrap_in_place(&mut cal_phases);
        let mut device0 = vec![f64::NAN; channel_count];
        for (&(ch, _, _), &v) in cal_samples.iter().zip(&cal_phases) {
            if ch < channel_count {
                device0[ch] = v;
            }
        }

        let w = planar_dipole(estimate.orientation);
        let mut acc = vec![0.0f64; channel_count];
        let mut counts = vec![0usize; channel_count];
        let mut freqs = vec![0.0f64; channel_count];
        let mut curve = Vec::new();
        for obs in observations {
            let d = obs.pose.position().distance(estimate.position.with_z(0.0));
            let k_prop = propagation::slope_from_distance(d);
            let theta_orient = orientation_phase(&obs.pose, w);
            // This antenna's continuous material curve (arbitrary constant
            // offset: unwrap constants, orientation error).
            curve.clear();
            for (c, &inlier) in obs.channels.iter().zip(&obs.channel_inliers) {
                if !inlier || c.channel >= channel_count {
                    continue;
                }
                let dev0 = device0[c.channel];
                if dev0.is_nan() {
                    continue;
                }
                let v = c.phase - k_prop * c.frequency_hz - theta_orient - dev0;
                curve.push((c.channel, c.frequency_hz, v));
            }
            if curve.is_empty() {
                continue;
            }
            // Remove this antenna's arbitrary constant before accumulating.
            let mean = curve.iter().map(|&(_, _, v)| v).sum::<f64>() / curve.len() as f64;
            for &(ch, f, v) in &curve {
                acc[ch] += v - mean;
                counts[ch] += 1;
                freqs[ch] = f;
            }
        }

        // Channel-wise average, then de-line over frequency.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut averaged = vec![f64::NAN; channel_count];
        for ch in 0..channel_count {
            if counts[ch] > 0 {
                let v = acc[ch] / counts[ch] as f64;
                averaged[ch] = v;
                xs.push(freqs[ch]);
                ys.push(v);
            }
        }
        let theta_material: Vec<f64> = match rfp_dsp::linfit::ols(&xs, &ys) {
            Ok(fit) => (0..channel_count)
                .map(|ch| {
                    if counts[ch] > 0 {
                        averaged[ch] - fit.predict(freqs[ch])
                    } else {
                        0.0
                    }
                })
                .collect(),
            Err(_) => vec![0.0; channel_count],
        };

        MaterialFeatures { kt_material, bt_material, theta_material }
    }

    /// Flattens to the classifier input `(k_t, b_t, θ_material(f₁..fₙ))`.
    ///
    /// `k_t` is expressed in rad/MHz (×1e6) so its numeric range is not
    /// absurdly far from the angular features before standardization.
    pub fn to_vector(&self) -> Vec<f64> {
        let mut v = Vec::with_capacity(2 + self.theta_material.len());
        v.push(self.kt_material * 1.0e6);
        v.push(self.bt_material);
        v.extend_from_slice(&self.theta_material);
        v
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        2 + self.theta_material.len()
    }
}

/// Which classifier backs a [`MaterialIdentifier`] (paper Fig. 13 + the
/// §VII MLP extension).
#[derive(Debug, Clone, PartialEq)]
pub enum ClassifierKind {
    /// K-Nearest-Neighbour with `k` neighbours.
    Knn {
        /// Number of neighbours.
        k: usize,
    },
    /// One-vs-one SVM.
    Svm(SvmConfig),
    /// CART decision tree — the paper's best performer.
    DecisionTree(TreeConfig),
    /// Random forest (extension: bagged CART).
    RandomForest(ForestConfig),
    /// Multi-layer perceptron (future-work extension).
    Mlp(MlpConfig),
}

impl ClassifierKind {
    /// The paper's deployed choice: a decision tree with default
    /// hyper-parameters.
    pub fn paper_default() -> Self {
        ClassifierKind::DecisionTree(TreeConfig::default())
    }
}

enum AnyClassifier {
    Knn(KnnClassifier),
    Svm(SvmClassifier),
    Tree(DecisionTree),
    Forest(RandomForest),
    Mlp(MlpClassifier),
}

impl Classifier for AnyClassifier {
    fn predict(&self, features: &[f64]) -> usize {
        match self {
            AnyClassifier::Knn(c) => c.predict(features),
            AnyClassifier::Svm(c) => c.predict(features),
            AnyClassifier::Tree(c) => c.predict(features),
            AnyClassifier::Forest(c) => c.predict(features),
            AnyClassifier::Mlp(c) => c.predict(features),
        }
    }
}

/// A trained material classifier: standardization + classifier + class
/// mapping to [`Material`].
pub struct MaterialIdentifier {
    scaler: StandardScaler,
    classifier: AnyClassifier,
}

impl std::fmt::Debug for MaterialIdentifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self.classifier {
            AnyClassifier::Knn(_) => "knn",
            AnyClassifier::Svm(_) => "svm",
            AnyClassifier::Tree(_) => "decision-tree",
            AnyClassifier::Forest(_) => "random-forest",
            AnyClassifier::Mlp(_) => "mlp",
        };
        write!(f, "MaterialIdentifier({kind})")
    }
}

impl MaterialIdentifier {
    /// Trains on a dataset whose labels are [`Material::CLASSES`] indices.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty (classifier-specific requirements —
    /// e.g. the SVM needing two classes — also apply).
    pub fn train(train: &Dataset, kind: &ClassifierKind) -> Self {
        let scaler = StandardScaler::fit(train);
        let scaled = scaler.transform_dataset(train);
        let classifier = match kind {
            ClassifierKind::Knn { k } => AnyClassifier::Knn(KnnClassifier::fit(&scaled, *k)),
            ClassifierKind::Svm(cfg) => AnyClassifier::Svm(SvmClassifier::fit(&scaled, cfg)),
            ClassifierKind::DecisionTree(cfg) => {
                AnyClassifier::Tree(DecisionTree::fit(&scaled, cfg))
            }
            ClassifierKind::RandomForest(cfg) => {
                AnyClassifier::Forest(RandomForest::fit(&scaled, cfg))
            }
            ClassifierKind::Mlp(cfg) => AnyClassifier::Mlp(MlpClassifier::fit(&scaled, cfg)),
        };
        MaterialIdentifier { scaler, classifier }
    }

    /// Predicts a class index for a raw (unscaled) feature vector.
    pub fn predict_index(&self, features: &[f64]) -> usize {
        self.classifier.predict(&self.scaler.transform(features))
    }

    /// Identifies the material for a sensing pass's features.
    pub fn identify(&self, features: &MaterialFeatures) -> Material {
        Material::from_class_index(self.predict_index(&features.to_vector()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use crate::solver::{solve_2d, SolverConfig};
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn clean_scene() -> Scene {
        Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal())
    }

    fn observations_for(
        scene: &Scene,
        tag: &SimTag,
        seed: u64,
    ) -> Vec<AntennaObservation> {
        let survey = scene.survey(tag, seed);
        scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect()
    }

    /// Full loop: calibrate bare tag, attach material, sense, extract
    /// features — `k_t` material term must match the physics.
    #[test]
    fn features_recover_material_slope() {
        let scene = clean_scene();
        let calib_pos = Vec2::new(0.5, 1.0);
        let bare = SimTag::with_seeded_diversity(7)
            .with_motion(Motion::planar_static(calib_pos, 0.0));
        let calib = crate::calibration::DeviceCalibration::from_observations(
            &observations_for(&scene, &bare, 1),
            calib_pos,
            0.0,
        );

        let loaded = bare
            .attached_to(Material::Glass)
            .with_motion(Motion::planar_static(Vec2::new(0.8, 1.8), 0.7));
        let obs = observations_for(&scene, &loaded, 2);
        let est = solve_2d(&obs, scene.region(), &SolverConfig::default()).unwrap();
        let feats = MaterialFeatures::extract(&obs, &est, &calib, 50);

        let plan = &scene.reader().plan;
        let kt_truth = loaded.electrical().linearized(plan).kt
            - bare.electrical().linearized(plan).kt;
        assert!(
            (feats.kt_material - kt_truth).abs() < 2e-9,
            "kt_material {} vs truth {kt_truth}",
            feats.kt_material
        );
        assert_eq!(feats.dim(), 52);
        assert!(feats.theta_material.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn free_space_features_are_near_zero() {
        let scene = clean_scene();
        let calib_pos = Vec2::new(0.5, 1.0);
        let bare = SimTag::with_seeded_diversity(8)
            .with_motion(Motion::planar_static(calib_pos, 0.0));
        let calib = crate::calibration::DeviceCalibration::from_observations(
            &observations_for(&scene, &bare, 3),
            calib_pos,
            0.0,
        );
        // Sense the *same bare tag* somewhere else: material features ≈ 0.
        let moved = bare.with_motion(Motion::planar_static(Vec2::new(1.2, 2.0), 1.0));
        let obs = observations_for(&scene, &moved, 4);
        let est = solve_2d(&obs, scene.region(), &SolverConfig::default()).unwrap();
        let feats = MaterialFeatures::extract(&obs, &est, &calib, 50);
        assert!(feats.kt_material.abs() < 2e-9, "kt {}", feats.kt_material);
        let mean_theta: f64 = feats.theta_material.iter().map(|t| t.abs()).sum::<f64>()
            / feats.theta_material.len() as f64;
        assert!(mean_theta < 0.3, "mean |θ_material| {mean_theta}");
    }

    /// Quantized (R420) surveys carry phase codes, so the table backend
    /// kicks in — and must leave the material feature vector bitwise
    /// unchanged relative to the libm oracle all the way through
    /// calibration, solving and de-lining.
    #[test]
    fn features_are_invariant_across_trig_backends() {
        let scene = Scene::standard_2d().with_noise(NoiseModel::clean());
        let calib_pos = Vec2::new(0.5, 1.0);
        let bare = SimTag::with_seeded_diversity(7)
            .with_motion(Motion::planar_static(calib_pos, 0.0));
        let loaded = bare
            .attached_to(Material::Glass)
            .with_motion(Motion::planar_static(Vec2::new(0.8, 1.8), 0.7));

        let features_with = |trig: rfp_dsp::TrigProvider| {
            let mut config = ExtractConfig::paper();
            config.preprocess.trig = trig;
            let obs_for = |tag: &SimTag, seed: u64| -> Vec<AntennaObservation> {
                let survey = scene.survey(tag, seed);
                scene
                    .antenna_poses()
                    .iter()
                    .zip(&survey.per_antenna)
                    .map(|(&p, r)| extract_observation(p, r, &config).unwrap())
                    .collect()
            };
            let calib = crate::calibration::DeviceCalibration::from_observations(
                &obs_for(&bare, 1),
                calib_pos,
                0.0,
            );
            let obs = obs_for(&loaded, 2);
            let est = solve_2d(&obs, scene.region(), &SolverConfig::default()).unwrap();
            MaterialFeatures::extract(&obs, &est, &calib, 50)
        };

        let table = features_with(rfp_dsp::TrigProvider::Table);
        let libm = features_with(rfp_dsp::TrigProvider::Libm);
        assert_eq!(table, libm, "table backend must not perturb features");
    }

    #[test]
    fn to_vector_layout() {
        let f = MaterialFeatures {
            kt_material: 2.0e-8,
            bt_material: -0.5,
            theta_material: vec![0.1, 0.2],
        };
        let v = f.to_vector();
        assert_eq!(v.len(), 4);
        assert!((v[0] - 0.02).abs() < 1e-12); // rad/MHz scaling
        assert_eq!(v[1], -0.5);
        assert_eq!(&v[2..], &[0.1, 0.2]);
    }

    #[test]
    fn identifier_trains_and_predicts_each_kind() {
        // Tiny synthetic two-class problem in 3-D feature space.
        let mut ds = Dataset::new(8);
        for i in 0..30 {
            let x = i as f64 / 30.0;
            ds.push(vec![x, 1.0, 0.0], 0); // "wood"
            ds.push(vec![x + 5.0, -1.0, 0.5], 3); // "metal"
        }
        for kind in [
            ClassifierKind::Knn { k: 3 },
            ClassifierKind::Svm(SvmConfig::default()),
            ClassifierKind::paper_default(),
            ClassifierKind::RandomForest(ForestConfig { trees: 9, ..Default::default() }),
            ClassifierKind::Mlp(MlpConfig { epochs: 50, ..Default::default() }),
        ] {
            let id = MaterialIdentifier::train(&ds, &kind);
            assert_eq!(
                id.identify(&MaterialFeatures {
                    kt_material: 0.1e-6,
                    bt_material: 1.0,
                    theta_material: vec![0.0],
                }),
                Material::Wood,
                "{kind:?}"
            );
            assert_eq!(
                id.identify(&MaterialFeatures {
                    kt_material: 5.2e-6,
                    bt_material: -1.0,
                    theta_material: vec![0.5],
                }),
                Material::Metal,
                "{kind:?}"
            );
        }
    }
}
