//! The survey-log format: record a round, replay it later.
//!
//! ```text
//! # rf-prism survey log v1
//! plan <start_hz> <spacing_hz> <count>
//! antenna <index> <px> <py> <pz> <bx> <by> <bz> <roll>
//! tag <id> [<truth_x> <truth_y> <alpha_rad> <material_label>]
//! read <tag_id> <antenna> <channel> <freq_hz> <phase> <rssi_dbm> <t_s>
//! ```
//!
//! Everything after `#` on a line is a comment. Lines may appear in any
//! order except that `read` lines must follow the `antenna`/`plan` lines
//! they reference.

use rfp_dsp::preprocess::RawRead;
use rfp_geom::{AntennaPose, Vec2, Vec3};
use rfp_phys::{FrequencyPlan, Material};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Optional ground truth recorded alongside a tag (simulation only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TagTruth {
    /// True planar position.
    pub position: Vec2,
    /// True orientation, radians.
    pub alpha: f64,
    /// True attached material.
    pub material: Material,
}

/// One tag's reads, grouped per antenna.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TagRecord {
    /// `reads[antenna_index]` in time order.
    pub per_antenna: Vec<Vec<RawRead>>,
    /// Ground truth, when recorded.
    pub truth: Option<TagTruth>,
}

/// A parsed (or to-be-written) survey log.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveyLog {
    /// The channel plan of the round.
    pub plan: FrequencyPlan,
    /// Antenna poses, by index.
    pub poses: Vec<AntennaPose>,
    /// Per-tag records, keyed by tag id.
    pub tags: BTreeMap<u64, TagRecord>,
}

/// Parse errors with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// Unknown directive.
    UnknownDirective {
        /// Line number.
        line: usize,
    },
    /// Wrong field count or a number failed to parse.
    Malformed {
        /// Line number.
        line: usize,
    },
    /// A `read` referenced an antenna that was never declared.
    UnknownAntenna {
        /// Line number.
        line: usize,
    },
    /// No `plan` line was found.
    MissingPlan,
    /// No `antenna` lines were found.
    MissingAntennas,
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::UnknownDirective { line } => write!(f, "unknown directive at line {line}"),
            LogError::Malformed { line } => write!(f, "malformed record at line {line}"),
            LogError::UnknownAntenna { line } => {
                write!(f, "read references undeclared antenna at line {line}")
            }
            LogError::MissingPlan => write!(f, "log has no `plan` line"),
            LogError::MissingAntennas => write!(f, "log has no `antenna` lines"),
        }
    }
}

impl std::error::Error for LogError {}

impl SurveyLog {
    /// An empty log for the given deployment.
    pub fn new(plan: FrequencyPlan, poses: Vec<AntennaPose>) -> Self {
        SurveyLog { plan, poses, tags: BTreeMap::new() }
    }

    /// Adds one tag's survey (reads grouped per antenna) with optional
    /// ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the antenna grouping does not match the declared poses.
    pub fn add_tag(&mut self, id: u64, per_antenna: Vec<Vec<RawRead>>, truth: Option<TagTruth>) {
        assert_eq!(per_antenna.len(), self.poses.len(), "one read group per antenna");
        self.tags.insert(id, TagRecord { per_antenna, truth });
    }

    /// Serializes to the text format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# rf-prism survey log v1\n");
        let _ = writeln!(
            out,
            "plan {:e} {:e} {}",
            self.plan.start_hz(),
            self.plan.spacing_hz(),
            self.plan.channel_count()
        );
        for (i, pose) in self.poses.iter().enumerate() {
            let p = pose.position();
            let b = pose.boresight();
            let _ = writeln!(
                out,
                "antenna {i} {:e} {:e} {:e} {:e} {:e} {:e} {:e}",
                p.x,
                p.y,
                p.z,
                b.x,
                b.y,
                b.z,
                pose.roll()
            );
        }
        for (id, record) in &self.tags {
            match record.truth {
                Some(t) => {
                    let _ = writeln!(
                        out,
                        "tag {id} {:e} {:e} {:e} {}",
                        t.position.x,
                        t.position.y,
                        t.alpha,
                        t.material.label()
                    );
                }
                None => {
                    let _ = writeln!(out, "tag {id}");
                }
            }
            for (ai, reads) in record.per_antenna.iter().enumerate() {
                for r in reads {
                    let _ = writeln!(
                        out,
                        "read {id} {ai} {} {:e} {:e} {:e} {:e}",
                        r.channel, r.frequency_hz, r.phase, r.rssi_dbm, r.timestamp_s
                    );
                }
            }
        }
        out
    }

    /// Parses the text format.
    ///
    /// # Errors
    ///
    /// Any [`LogError`] on structural problems.
    pub fn from_text(text: &str) -> Result<Self, LogError> {
        let mut plan: Option<FrequencyPlan> = None;
        let mut poses: BTreeMap<usize, AntennaPose> = BTreeMap::new();
        let mut tags: BTreeMap<u64, TagRecord> = BTreeMap::new();

        for (ln0, raw_line) in text.lines().enumerate() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let ln = ln0 + 1;
            let mut parts = line.split_whitespace();
            let malformed = LogError::Malformed { line: ln };
            match parts.next() {
                Some("plan") => {
                    let nums: Vec<f64> =
                        parts.by_ref().take(3).filter_map(|v| v.parse().ok()).collect();
                    if nums.len() != 3 {
                        return Err(malformed);
                    }
                    plan = Some(FrequencyPlan::new(nums[0], nums[1], nums[2] as usize));
                }
                Some("antenna") => {
                    let nums: Vec<f64> =
                        parts.by_ref().take(8).filter_map(|v| v.parse().ok()).collect();
                    if nums.len() != 8 {
                        return Err(malformed);
                    }
                    let pose = AntennaPose::with_boresight(
                        Vec3::new(nums[1], nums[2], nums[3]),
                        Vec3::new(nums[4], nums[5], nums[6]).normalized(),
                        nums[7],
                    );
                    poses.insert(nums[0] as usize, pose);
                }
                Some("tag") => {
                    let id: u64 =
                        parts.next().and_then(|v| v.parse().ok()).ok_or(malformed.clone())?;
                    let rest: Vec<&str> = parts.collect();
                    let truth = if rest.is_empty() {
                        None
                    } else if rest.len() == 4 {
                        let x: f64 = rest[0].parse().map_err(|_| malformed.clone())?;
                        let y: f64 = rest[1].parse().map_err(|_| malformed.clone())?;
                        let alpha: f64 = rest[2].parse().map_err(|_| malformed.clone())?;
                        let material = Material::CLASSES
                            .iter()
                            .copied()
                            .find(|m| m.label() == rest[3])
                            .ok_or(malformed.clone())?;
                        Some(TagTruth { position: Vec2::new(x, y), alpha, material })
                    } else {
                        return Err(malformed);
                    };
                    tags.entry(id).or_default().truth = truth;
                }
                Some("read") => {
                    let id: u64 =
                        parts.next().and_then(|v| v.parse().ok()).ok_or(malformed.clone())?;
                    let ai: usize =
                        parts.next().and_then(|v| v.parse().ok()).ok_or(malformed.clone())?;
                    if !poses.contains_key(&ai) {
                        return Err(LogError::UnknownAntenna { line: ln });
                    }
                    let channel: usize =
                        parts.next().and_then(|v| v.parse().ok()).ok_or(malformed.clone())?;
                    let nums: Vec<f64> =
                        parts.by_ref().take(4).filter_map(|v| v.parse().ok()).collect();
                    if nums.len() != 4 {
                        return Err(malformed);
                    }
                    let record = tags.entry(id).or_default();
                    if record.per_antenna.len() <= ai {
                        record.per_antenna.resize(ai + 1, Vec::new());
                    }
                    record.per_antenna[ai].push(RawRead {
                        channel,
                        frequency_hz: nums[0],
                        phase: nums[1],
                        rssi_dbm: nums[2],
                        timestamp_s: nums[3],
                        // The text format stores phases with exact f64
                        // round-trip ({:e}), so quantized phases land
                        // back on the grid and recover their code.
                        phase_code: rfp_dsp::trig::code_for_phase(nums[1]),
                    });
                }
                Some(_) => return Err(LogError::UnknownDirective { line: ln }),
                None => {}
            }
        }

        let plan = plan.ok_or(LogError::MissingPlan)?;
        if poses.is_empty() {
            return Err(LogError::MissingAntennas);
        }
        let n_ant = poses.keys().max().unwrap() + 1;
        let poses: Vec<AntennaPose> = (0..n_ant)
            .map(|i| poses.get(&i).copied().ok_or(LogError::MissingAntennas))
            .collect::<Result<_, _>>()?;
        // Normalize every tag's grouping to the full antenna count.
        for record in tags.values_mut() {
            record.per_antenna.resize(n_ant, Vec::new());
        }
        Ok(SurveyLog { plan, poses, tags })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_sim::{Motion, Scene, SimTag};

    fn sample_log() -> SurveyLog {
        let scene = Scene::standard_2d();
        let mut log = SurveyLog::new(scene.reader().plan, scene.antenna_poses());
        for (i, &(x, y)) in [(0.2, 1.1), (0.9, 1.8)].iter().enumerate() {
            let tag = SimTag::with_seeded_diversity(i as u64 + 1)
                .attached_to(Material::Glass)
                .with_motion(Motion::planar_static(Vec2::new(x, y), 0.4));
            let survey = scene.survey(&tag, 10 + i as u64);
            log.add_tag(
                tag.id(),
                survey.per_antenna,
                Some(TagTruth {
                    position: Vec2::new(x, y),
                    alpha: 0.4,
                    material: Material::Glass,
                }),
            );
        }
        log
    }

    #[test]
    fn round_trips_exactly() {
        let log = sample_log();
        let text = log.to_text();
        let parsed = SurveyLog::from_text(&text).expect("own format");
        assert_eq!(parsed.plan, log.plan);
        assert_eq!(parsed.tags.len(), log.tags.len());
        for ((ia, ra), (ib, rb)) in parsed.tags.iter().zip(&log.tags) {
            assert_eq!(ia, ib);
            assert_eq!(ra.truth, rb.truth);
            assert_eq!(ra.per_antenna, rb.per_antenna);
        }
        // Poses round-trip through position/boresight/roll.
        for (a, b) in parsed.poses.iter().zip(&log.poses) {
            assert!(a.position().distance(b.position()) < 1e-12);
            assert!(a.boresight().distance(b.boresight()) < 1e-12);
            assert!(a.u().distance(b.u()) < 1e-9);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let log = sample_log();
        let mut text = String::from("# leading comment\n\n");
        text.push_str(&log.to_text());
        text.push_str("\n# trailing\n");
        assert!(SurveyLog::from_text(&text).is_ok());
    }

    #[test]
    fn error_cases() {
        assert_eq!(SurveyLog::from_text("").unwrap_err(), LogError::MissingPlan);
        assert_eq!(
            SurveyLog::from_text("plan 902.75e6 0.5e6 50\n").unwrap_err(),
            LogError::MissingAntennas
        );
        assert!(matches!(
            SurveyLog::from_text("bogus 1 2 3\n").unwrap_err(),
            LogError::UnknownDirective { line: 1 }
        ));
        assert!(matches!(
            SurveyLog::from_text("plan 9e8 5e5 50\nantenna 0 0 0 0 0 1 0 0\nread 1 7 0 9e8 1 -50 0\n")
                .unwrap_err(),
            LogError::UnknownAntenna { line: 3 }
        ));
        assert!(matches!(
            SurveyLog::from_text("plan 9e8\n").unwrap_err(),
            LogError::Malformed { line: 1 }
        ));
    }

    #[test]
    fn tag_without_truth() {
        let text = "plan 902.75e6 5e5 50\nantenna 0 0 0 0 0 1 0 0\ntag 9\n";
        let log = SurveyLog::from_text(text).unwrap();
        assert!(log.tags[&9].truth.is_none());
    }
}
