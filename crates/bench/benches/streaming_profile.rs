//! Streaming-advance profile: what one sliding-window advance costs
//! through the incremental engine versus a full batch recompute of the
//! same window (DESIGN.md §8).
//!
//! A `StreamingSession` holds per-(antenna, channel) running accumulators
//! — circular-statistic phasor sums, fused unwrap+OLS moment sums and the
//! robust-refit state — that **update** as reads arrive and **downdate**
//! as reads expire, so advancing the window by one reader dwell (the
//! cadence at which new channel data lands) costs O(new + expired reads)
//! plus the warm solve, instead of re-running the whole front end over
//! every retained read. The baseline is the production batch path
//! (`RfPrism::sense_reusing`) over the same retained `DEPTH`-round
//! window, warm-started the same way — what a batch engine must pay to
//! emit an estimate at the same cadence — so the ratio isolates exactly
//! what the incremental accumulators save.
//!
//! Two scenario rows: the paper's standard quantized reader (`Table` trig
//! backend — phasors resolved by exact code lookups at push time) and an
//! ideal continuous-phase reader driven through the `Recurrence` backend
//! (phasors advanced by complex rotation with periodic renormalization).
//!
//! Built with `--features obs` the bench also measures the cost of
//! *continuous telemetry*: the same steady-state advance loop with the
//! probes inert (no recorder) versus recording (latency histograms,
//! counters and the journal all live), reported as `obs_overhead_p50`.
//!
//! Writes a `BENCH_streaming.json` snapshot at the repo root (override
//! with `STREAMING_PROFILE_OUT`); `scripts/bench_gate` regenerates it
//! with `STREAMING_PROFILE_QUICK=1` and enforces the standard row's ≥4×
//! advance speedup, <5% refit-fallback rate, and (when present) the ≤5%
//! telemetry overhead.

use rfp_bench::report;
use rfp_core::{RfPrism, RfPrismConfig, SenseWorkspace, WarmStart};
use rfp_geom::Vec2;
use rfp_obs::JsonValue;
use rfp_sim::{stream_rounds, Motion, Scene, SimTag, StreamRound};
use std::hint::black_box;
use std::time::Instant;

/// `STREAMING_PROFILE_QUICK=1` trims the rounds for the CI perf gate.
fn quick_mode() -> bool {
    std::env::var("STREAMING_PROFILE_QUICK")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    sorted[((sorted.len() as f64 * q) as usize).min(sorted.len() - 1)]
}

/// One scenario row: a reader/trig-backend pairing measured over the same
/// replayed stream through both engines.
struct Row {
    backend: &'static str,
    advance_p50: f64,
    advance_p90: f64,
    batch_p50: f64,
    speedup: f64,
    fallback_rate: f64,
    retained_reads: usize,
}

impl Row {
    fn json(&self) -> JsonValue {
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        JsonValue::obj(vec![
            ("backend", JsonValue::Str(self.backend.into())),
            ("advance_p50_us", JsonValue::Num(round2(self.advance_p50))),
            ("advance_p90_us", JsonValue::Num(round2(self.advance_p90))),
            ("batch_recompute_p50_us", JsonValue::Num(round2(self.batch_p50))),
            ("advance_speedup_p50", JsonValue::Num(round2(self.speedup))),
            ("fallback_rate", JsonValue::Num((self.fallback_rate * 1e4).round() / 1e4)),
            ("retained_reads", JsonValue::Num(self.retained_reads as f64)),
        ])
    }
}

/// The standard-window scenario keeps this many hop rounds of history:
/// the window always spans `DEPTH` rounds of retained reads, which is
/// what the batch baseline must recompute on every advance (`O(window)`).
const DEPTH: usize = 4;

/// Streaming advances per hop round: one per reader dwell, the cadence
/// at which new channel data actually lands. Each advance pushes/expires
/// only that dwell's reads (`k ≈ reads-per-dwell × antennas`), so the
/// incremental engine pays `O(k)` where the batch engine pays the full
/// `DEPTH`-round recompute to emit an estimate at the same rate.
const ADVANCES_PER_ROUND: usize = 50;

/// Measures what live telemetry costs the hot path: the same steady-state
/// advance loop with the probes **inert** (obs compiled in but no
/// recorder installed — one thread-local load and a branch per probe)
/// versus **recording** (a recorder installed: histograms timing every
/// advance, counters draining per window, the journal ticking).
///
/// The true overhead (well under a microsecond) is far smaller than this
/// container's run-to-run scheduler/thermal drift on a ~40 µs advance, so
/// a plain ratio of two independently-measured p50s is too noisy to gate
/// at 5% — even whole alternating passes leave the paired samples minutes
/// apart. Instead two sessions replay the stream **in lockstep**: every
/// dwell slice times the identical pushes-plus-advance once with the
/// probes inert and once under a persistent recorder, microseconds apart,
/// with the order flipping each slice so cache-warming asymmetry cancels.
/// The gated overhead is `median(on_i − off_i) / p50_off`; the pooled
/// per-regime percentiles are reported alongside for context. Returns
/// `(p50_off, p50_on, p90_off, p90_on, overhead_p50)`.
#[cfg(feature = "obs")]
fn profile_obs_overhead(
    scene: &Scene,
    config: RfPrismConfig,
    rounds: &[StreamRound],
    warmup: usize,
) -> (f64, f64, f64, f64, f64) {
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
        .with_config(config);
    let antennas = scene.antenna_poses().len();
    let span = DEPTH as f64 * scene.reader().round_duration_s();

    // One timed dwell slice: drain reads up to `end_t` into the session,
    // advance, recycle — the same kernel `profile_stream` times, so
    // whatever recorder is (or is not) installed is what gets measured.
    let slice_kernel = |session: &mut rfp_core::StreamingSession,
                        cursors: &mut [usize],
                        round: &StreamRound,
                        end_t: f64,
                        last: bool| {
        let t0 = Instant::now();
        for (antenna, reads) in round.per_antenna.iter().enumerate() {
            let cursor = &mut cursors[antenna];
            while *cursor < reads.len() && (reads[*cursor].timestamp_s < end_t || last) {
                session.push(antenna, &reads[*cursor]);
                *cursor += 1;
            }
        }
        let result = session.advance(black_box(end_t));
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        if let Ok(result) = result {
            black_box(&result.estimate);
            session.recycle(result);
        }
        dt
    };

    let mut sess_off = prism.sense_streaming(span);
    let mut sess_on = prism.sense_streaming(span);
    let mut rec = rfp_obs::Recorder::new(rfp_core::obs::METRICS);
    let mut cursors_off = vec![0usize; antennas];
    let mut cursors_on = vec![0usize; antennas];
    let mut off: Vec<f64> = Vec::new();
    let mut on: Vec<f64> = Vec::new();
    let mut diffs: Vec<f64> = Vec::new();
    for (i, round) in rounds.iter().enumerate() {
        let dwell_s = (round.end_time_s - round.start_time_s) / ADVANCES_PER_ROUND as f64;
        cursors_off.iter_mut().for_each(|c| *c = 0);
        cursors_on.iter_mut().for_each(|c| *c = 0);
        for slice in 0..ADVANCES_PER_ROUND {
            let end_t = round.start_time_s + (slice + 1) as f64 * dwell_s;
            let last = slice + 1 == ADVANCES_PER_ROUND;
            let mut run_on = |rec: rfp_obs::Recorder| {
                rfp_obs::recorder::observe_with(rec, || {
                    slice_kernel(&mut sess_on, &mut cursors_on, round, end_t, last)
                })
            };
            let (dt_off, dt_on) = if slice % 2 == 0 {
                let dt_off = slice_kernel(&mut sess_off, &mut cursors_off, round, end_t, last);
                let (dt_on, r) = run_on(rec);
                rec = r;
                (dt_off, dt_on)
            } else {
                let (dt_on, r) = run_on(rec);
                rec = r;
                (slice_kernel(&mut sess_off, &mut cursors_off, round, end_t, last), dt_on)
            };
            if i >= warmup {
                off.push(dt_off);
                on.push(dt_on);
                diffs.push(dt_on - dt_off);
            }
        }
    }
    off.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    on.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    diffs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let p50_off = percentile(&off, 0.5);
    (
        p50_off,
        percentile(&on, 0.5),
        percentile(&off, 0.9),
        percentile(&on, 0.9),
        percentile(&diffs, 0.5) / p50_off,
    )
}

/// Replays `rounds` through a streaming session (one timed sample per
/// dwell advance) and through the warm batch path on the same retained
/// windows, both in steady state after `warmup` rounds.
fn profile_stream(
    backend: &'static str,
    scene: &Scene,
    config: RfPrismConfig,
    rounds: &[StreamRound],
    warmup: usize,
) -> Row {
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region())
        .with_config(config);
    let antennas = scene.antenna_poses().len();
    let span = DEPTH as f64 * scene.reader().round_duration_s();

    // Streaming engine: after each dwell lands, push its reads, advance,
    // recycle. The push loop is part of the timed advance — it IS the
    // O(new reads) update work the incremental engine pays.
    let mut session = prism.sense_streaming(span);
    let mut advance_us: Vec<f64> = Vec::with_capacity(rounds.len() * ADVANCES_PER_ROUND);
    let mut fallbacks = 0u64;
    let mut measured = 0usize;
    let mut cursors = vec![0usize; antennas];
    for (i, round) in rounds.iter().enumerate() {
        let dwell_s =
            (round.end_time_s - round.start_time_s) / ADVANCES_PER_ROUND as f64;
        cursors.iter_mut().for_each(|c| *c = 0);
        for slice in 0..ADVANCES_PER_ROUND {
            let end_t = round.start_time_s + (slice + 1) as f64 * dwell_s;
            let t0 = Instant::now();
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                let cursor = &mut cursors[antenna];
                while *cursor < reads.len()
                    && (reads[*cursor].timestamp_s < end_t
                        || slice + 1 == ADVANCES_PER_ROUND)
                {
                    session.push(antenna, &reads[*cursor]);
                    *cursor += 1;
                }
            }
            let result = session.advance(black_box(end_t));
            let dt = t0.elapsed().as_secs_f64() * 1e6;
            match result {
                Ok(result) => {
                    black_box(&result.estimate);
                    session.recycle(result);
                }
                // The very first round starts from an empty window; until
                // enough channels have been dwelt on there is nothing to
                // fit yet.
                Err(e) => assert_eq!(i, 0, "unusable window: {e}"),
            }
            if i >= warmup {
                advance_us.push(dt);
                fallbacks += session.last_advance_fallbacks();
                measured += 1;
            }
        }
    }
    let retained = session.retained_reads();

    // Batch baseline: full front-end recompute over the same retained
    // `DEPTH`-round window, warm-started identically (the solve cost
    // cancels; the front end is the contrast). Assembling the window is
    // done outside the timer — the baseline is charged only for the
    // recompute itself, not for buffer management.
    let cache = prism.batch_cache();
    let mut ws = SenseWorkspace::default();
    let mut warm: Option<WarmStart> = None;
    let mut batch_us: Vec<f64> = Vec::with_capacity(rounds.len());
    let mut window: Vec<Vec<rfp_dsp::preprocess::RawRead>> = vec![Vec::new(); antennas];
    for (i, _) in rounds.iter().enumerate() {
        for (antenna, buf) in window.iter_mut().enumerate() {
            buf.clear();
            for round in &rounds[i.saturating_sub(DEPTH - 1)..=i] {
                buf.extend_from_slice(&round.per_antenna[antenna]);
            }
        }
        let t0 = Instant::now();
        let result = prism
            .sense_reusing(&cache, black_box(&window), warm.as_ref(), &mut ws)
            .expect("usable window");
        let dt = t0.elapsed().as_secs_f64() * 1e6;
        warm = Some(WarmStart::from_estimate(&result.estimate));
        ws.recycle(result);
        if i >= warmup {
            batch_us.push(dt);
        }
    }

    advance_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    batch_us.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let advance_p50 = percentile(&advance_us, 0.5);
    let batch_p50 = percentile(&batch_us, 0.5);
    Row {
        backend,
        advance_p50,
        advance_p90: percentile(&advance_us, 0.9),
        batch_p50,
        speedup: batch_p50 / advance_p50,
        // Fallbacks are per antenna window, advances per dwell.
        fallback_rate: fallbacks as f64 / (measured * antennas) as f64,
        retained_reads: retained,
    }
}

fn main() {
    report::header(
        "streaming_profile",
        "incremental sliding-window advance vs full batch recompute per hop round",
    );
    if quick_mode() {
        println!("(quick mode: reduced rounds)");
    }
    let (warmup, measured) = if quick_mode() { (10, 120) } else { (25, 600) };
    let n_rounds = warmup + measured;
    let tag = SimTag::with_seeded_diversity(3)
        .with_motion(Motion::planar_static(Vec2::new(0.4, 1.5), 0.9));

    let mut rows: Vec<Row> = Vec::new();

    // Standard scenario: the paper's quantized R420 reader; push-time
    // phasors come from the exact phase-code tables.
    let scene = Scene::standard_2d();
    let rounds = stream_rounds(&scene, &tag, n_rounds, 31);
    rows.push(profile_stream("table", &scene, RfPrismConfig::paper(), &rounds, warmup));

    // Telemetry overhead on the standard scenario: obs probes inert vs a
    // live recorder, same binary, same stream (feature-gated — without
    // `--features obs` there are no probes to measure).
    #[cfg(feature = "obs")]
    let obs_overhead = {
        let (p50_off, p50_on, p90_off, p90_on, overhead_p50) =
            profile_obs_overhead(&scene, RfPrismConfig::paper(), &rounds, warmup);
        println!(
            "  obs        advance p50 {p50_off:>7.2} → {p50_on:>7.2} with recorder \
             ({:+.1}% p50 paired, {:+.1}% p90 pooled)",
            overhead_p50 * 100.0,
            (p90_on / p90_off - 1.0) * 100.0,
        );
        let round4 = |x: f64| (x * 1e4).round() / 1e4;
        let round2 = |x: f64| (x * 100.0).round() / 100.0;
        Some((
            round4(overhead_p50),
            JsonValue::obj(vec![
                ("advance_p50_us_off", JsonValue::Num(round2(p50_off))),
                ("advance_p50_us_on", JsonValue::Num(round2(p50_on))),
                ("advance_p90_us_off", JsonValue::Num(round2(p90_off))),
                ("advance_p90_us_on", JsonValue::Num(round2(p90_on))),
                ("overhead_p50", JsonValue::Num(round4(overhead_p50))),
                ("overhead_p90", JsonValue::Num(round4(p90_on / p90_off - 1.0))),
            ]),
        ))
    };

    // Continuous-phase scenario: ideal reader, phasor-recurrence backend
    // (complex rotation with periodic renormalization, no per-read libm).
    let scene = Scene::standard_2d().with_reader(rfp_sim::ReaderConfig::ideal());
    let rounds = stream_rounds(&scene, &tag, n_rounds, 31);
    let config = RfPrismConfig::paper().with_trig(rfp_dsp::TrigProvider::Recurrence);
    rows.push(profile_stream("recurrence", &scene, config, &rounds, warmup));

    for row in &rows {
        println!(
            "  {:<10} advance p50 {:>7.2} p90 {:>7.2}   batch p50 {:>7.2}   speedup ×{:.2}   \
             fallback rate {:.2}%   ({} retained reads)",
            row.backend,
            row.advance_p50,
            row.advance_p90,
            row.batch_p50,
            row.speedup,
            row.fallback_rate * 100.0,
            row.retained_reads,
        );
    }

    let standard = &rows[0];
    let mut fields = vec![
        (
            "units",
            JsonValue::obj(vec![(
                "latency",
                JsonValue::Str("microseconds per whole-tag window advance (p50/p90)".into()),
            )]),
        ),
        // Gate metrics: the standard (quantized-reader) row's
        // amortized advance must stay ≥4× under the batch recompute
        // and its refit-fallback rate under 5%.
        ("advance_speedup_p50", JsonValue::Num((standard.speedup * 100.0).round() / 100.0)),
        (
            "fallback_rate",
            JsonValue::Num((standard.fallback_rate * 1e4).round() / 1e4),
        ),
    ];
    // Third gate metric, present only when the probes are compiled in:
    // recording telemetry must cost ≤5% advance p50 over inert probes.
    #[cfg(feature = "obs")]
    if let Some((overhead_p50, detail)) = obs_overhead {
        fields.push(("obs_overhead_p50", JsonValue::Num(overhead_p50)));
        fields.push(("obs", detail));
    }
    fields.push(("rows", JsonValue::Arr(rows.iter().map(Row::json).collect())));
    let value = rfp_obs::report::snapshot("streaming_profile", fields);
    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streaming.json");
    let path =
        std::env::var("STREAMING_PROFILE_OUT").unwrap_or_else(|_| default_path.to_string());
    match rfp_obs::report::write_json(std::path::Path::new(&path), &value) {
        Ok(()) => println!("\nsnapshot written to {path}"),
        Err(e) => println!("\ncould not write {path}: {e}"),
    }
}
