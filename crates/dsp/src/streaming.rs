//! Incremental sliding-window front end: per-channel accumulators that
//! **update** on read arrival and **downdate** on expiry, so advancing a
//! window by `k` reads costs `O(k + C)` (`C` = live channels) instead of
//! re-running the `O(window)` batch front end.
//!
//! # How it stays equivalent to the batch path
//!
//! Every per-channel quantity the batch front end derives —
//! circular-statistic accumulators, fold sums, spread, the unwrap and the
//! global π majority vote — is either maintained incrementally or
//! recomputed lazily from the channel's retained reads when its membership
//! changed ("dirty"). Per-channel sums accumulate in arrival order, which
//! is exactly the per-channel summation order of the batch pass, so a
//! channel that has only ever been *appended to* since its last exact
//! rebuild is **bit-identical** to the batch recompute. Downdating
//! (subtracting an expired read's contribution) is not exactly invertible
//! in floating point: a downdated ("drifted") channel's sums sit within a
//! few ulps (≲1e-12) of the batch values.
//!
//! That residual drift is contained by three mechanisms:
//!
//! 1. **Exact rebuilds** — an emptied channel resets to the exact zero
//!    state; a channel accumulates at most
//!    [`StreamingConfig::max_drift_ops`] update/downdate operations while
//!    drifted before its sums are re-accumulated from the retained reads
//!    (bit-identical to batch again); and a drifted channel whose circular
//!    resultant falls below [`StreamingConfig::conditioning_floor`]
//!    (accumulator cancellation — the axis would amplify the drift) is
//!    rebuilt immediately.
//! 2. **Decision margins** — every discrete decision downstream of a
//!    drifted sum (π-fold classification, unwrap jump selection, the
//!    majority-vote comparisons, the robust fit's inlier rejections via
//!    [`crate::robust::robust_line_fit_with_sensitivity`]) is checked against
//!    [`StreamingConfig::decision_margin`]. A decision that clears its
//!    boundary by more than the margin is guaranteed to agree with the
//!    batch decision (the drift is orders of magnitude smaller); one that
//!    does not triggers
//! 3. **Full-recompute fallback** — the retained reads are concatenated
//!    per channel and fed through the ordinary batch
//!    [`preprocess_reads_with`], which is bit-identical to a batch call on
//!    the same reads (per-channel orders are preserved; every
//!    cross-channel step of the front end is order-invariant). Fallbacks
//!    are tallied in [`StreamingStats::refit_fallbacks`].
//!
//! Net: when no fallback fires, emitted phases differ from the batch
//! recompute by the contained accumulator drift (≤1e-9 end to end) with
//! *identical* robust inlier masks; channels never downdated since their
//! last rebuild — and the entire fallback path — are bit-identical. The
//! `streaming_equivalence` property suite in `rfp-core` pins both claims
//! against random arrival/expiry schedules.

use std::collections::VecDeque;
use std::f64::consts::{FRAC_PI_2, PI};

use crate::linfit::{FitError, LineFit};
use crate::preprocess::{
    preprocess_reads_with, wrapped_distance, ChannelObservation, PreprocessConfig,
    PreprocessError, RawRead,
};
use crate::robust::{robust_line_fit_seeded, RobustFitConfig, RobustSummary};
use crate::trig::{self, hit, PhasorRecurrence, TrigProvider};
use crate::workspace::FrontEndWorkspace;
use rfp_geom::angle;

/// Configuration for a [`StreamingWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Batch front-end options mirrored by the incremental path (π-jump
    /// correction, minimum reads per channel, trig backend). The fallback
    /// path runs the batch front end with exactly this configuration.
    pub preprocess: PreprocessConfig,
    /// Robust-fit (multipath suppression) options for the per-window line
    /// fit.
    pub robust: RobustFitConfig,
    /// When false, skip outlier rejection (raw OLS fit only).
    pub suppress_multipath: bool,
    /// Maximum update/downdate operations a channel absorbs *while
    /// drifted* before its sums are rebuilt exactly from the retained
    /// reads. Bounds the accumulated downdating drift to
    /// `max_drift_ops` ulp-scale errors (≈`64 · 4.4e-14 ≈ 3e-12` per sum).
    pub max_drift_ops: u32,
    /// Minimum mean circular resultant `r̄ = |Σ phasor| / n` a drifted
    /// channel may have before its sums are rebuilt exactly: below this,
    /// cancellation has eaten the accumulator's significand and the axis
    /// `atan2` would amplify the downdating drift unboundedly.
    pub conditioning_floor: f64,
    /// Margin (radians) by which every discrete decision downstream of a
    /// drifted accumulator must clear its boundary; decisions inside the
    /// margin trigger the full-recompute fallback. Must dwarf the
    /// contained drift (≲1e-9) while staying far below real decision
    /// gaps; the default is 1e-6.
    pub decision_margin: f64,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            preprocess: PreprocessConfig::default(),
            robust: RobustFitConfig::default(),
            suppress_multipath: true,
            max_drift_ops: 64,
            conditioning_floor: 0.01,
            decision_margin: 1e-6,
        }
    }
}

/// Per-advance work tallies of a [`StreamingWindow`], feeding the
/// `streaming.*` observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Reads pushed into the window (accumulator updates).
    pub updates: u64,
    /// Reads expired out of the window (accumulator downdates).
    pub downdates: u64,
    /// Full batch recomputes taken because downdating would have lost
    /// precision (decision-margin hazard, robust-mask flip).
    pub refit_fallbacks: u64,
    /// Update/downdate operations absorbed by *drifted* channels — the
    /// pressure against [`StreamingConfig::max_drift_ops`]; a high rate
    /// means channels churn while carrying downdating drift.
    pub drift_ops: u64,
    /// Exact per-channel sum re-accumulations (drift budget exhausted,
    /// conditioning floor crossed, or post-fallback resync).
    pub rebuilds: u64,
}

/// Errors from [`StreamingWindow::extract_into`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamingError {
    /// No channel holds enough reads to aggregate.
    Preprocess(PreprocessError),
    /// The per-window line fit failed (degenerate input).
    Fit(FitError),
}

impl std::fmt::Display for StreamingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingError::Preprocess(e) => write!(f, "streaming pre-processing failed: {e}"),
            StreamingError::Fit(e) => write!(f, "streaming line fit failed: {e}"),
        }
    }
}

impl std::error::Error for StreamingError {}

/// Result of one [`StreamingWindow::extract_into`] advance.
#[derive(Debug, Clone, Copy)]
pub struct StreamExtract {
    /// Whether this advance took the full-recompute fallback path.
    pub fallback: bool,
    /// Raw (pre-rejection) line fit over the window's channels.
    pub raw_fit: LineFit,
    /// Robust (multipath-suppressed) fit summary; `None` when
    /// [`StreamingConfig::suppress_multipath`] is off. The matching
    /// per-channel inlier mask is [`StreamingWindow::inlier_mask`].
    pub robust: Option<RobustSummary>,
}

/// One retained read plus the phasors the trig backend computed for it at
/// push time, so no per-read trigonometry runs on the incremental extract
/// path. `acc` is the pass-1 phasor (doubled angle in π-jump mode);
/// `base`/`shift` are the fold-pass phasors for the unshifted and
/// π-shifted classification (π-jump mode only).
#[derive(Debug, Clone, Copy)]
struct StoredRead {
    read: RawRead,
    acc_sin: f64,
    acc_cos: f64,
    base_sin: f64,
    base_cos: f64,
    shift_sin: f64,
    shift_cos: f64,
    /// Fold classification against the channel's cached fold axis:
    /// `true` when this read contributed its base phasor, `false` the
    /// π-shifted one. Lets expiry downdate the fold sums in O(1).
    fold_base: bool,
    /// Majority-vote classification against the channel's cached vote
    /// axis (`true` = counted toward the axis side).
    vote_in: bool,
}

/// Incremental per-channel state: the retained reads plus running sums
/// and lazily recomputed derived quantities.
#[derive(Debug, Default)]
struct ChannelState {
    chan: usize,
    fifo: VecDeque<StoredRead>,
    count: usize,
    sum_rssi: f64,
    acc_sin: f64,
    acc_cos: f64,
    /// Sums have been downdated since the last exact rebuild.
    drifted: bool,
    /// Update/downdate operations absorbed while drifted.
    drift_ops: u32,
    /// Membership changed since the derived state below was computed.
    dirty: bool,
    axis: f64,
    spread: f64,
    /// Every fold decision cleared the margin when the fold state was
    /// last refreshed.
    fold_margin_ok: bool,
    /// Incremental fold-pass sums: selected (base or π-shifted) phasors
    /// accumulated in FIFO order against `fold_axis`. Valid only while
    /// `fold_cache_valid`; pushes add the classified phasor, expiries
    /// subtract it via the read's stored [`StoredRead::fold_base`] bit.
    fold_sin: f64,
    fold_cos: f64,
    /// The axis every retained read's fold bit was classified against.
    fold_axis: f64,
    /// Lower bound on `min |wrapped_distance(p, fold_axis) − π/2|` over
    /// the retained reads: while the current axis sits closer to
    /// `fold_axis` than this, no fold selection can have flipped and the
    /// cached sums are exactly the sums a fresh classification would
    /// produce.
    fold_min_margin: f64,
    fold_cache_valid: bool,
    /// Incremental majority-vote tally against `vote_axis`, maintained
    /// the same way (integer counts, so downdating is exact).
    votes_axis: usize,
    vote_axis: f64,
    vote_min_margin: f64,
    vote_margin_ok: bool,
    vote_cache_valid: bool,
}

impl ChannelState {
    fn new(chan: usize) -> Self {
        ChannelState { chan, ..Default::default() }
    }

    /// Exact zero state for an emptied channel (un-drifts it).
    fn reset_exact(&mut self) {
        self.count = 0;
        self.sum_rssi = 0.0;
        self.acc_sin = 0.0;
        self.acc_cos = 0.0;
        self.drifted = false;
        self.drift_ops = 0;
        self.dirty = true;
        self.fold_sin = 0.0;
        self.fold_cos = 0.0;
        self.fold_cache_valid = false;
        self.votes_axis = 0;
        self.vote_cache_valid = false;
    }
}

/// An incrementally maintained sliding window over one antenna's read
/// stream. Push reads in nondecreasing timestamp order with
/// [`push`](Self::push), expire old ones with
/// [`expire_before`](Self::expire_before), and extract the per-channel
/// observations plus the fitted line with
/// [`extract_into`](Self::extract_into) — the incremental analogue of
/// [`preprocess_reads_with`] followed by the robust line fit, equivalent
/// to the batch recompute per the module docs.
#[derive(Debug, Default)]
pub struct StreamingWindow {
    config: StreamingConfig,
    /// channel id → index into `channels` (`u32::MAX` = never seen).
    slot_of: Vec<u32>,
    channels: Vec<ChannelState>,
    /// Kept channel indices sorted by (frequency, channel id).
    order: Vec<usize>,
    /// Unwrap scratch in sorted order.
    phase_col: Vec<f64>,
    /// Batch workspace: runs the fallback path and hosts the fit columns
    /// + scratch for both paths.
    ws: FrontEndWorkspace,
    /// Fallback gather scratch.
    scratch_reads: Vec<RawRead>,
    /// Persistent phasor recurrences for [`TrigProvider::Recurrence`]:
    /// pass-1 (doubled/plain) angle and fold-pass base angle.
    acc_rec: PhasorRecurrence,
    base_rec: PhasorRecurrence,
    /// Robust inlier mask of the previous advance (mask-flip guard).
    last_mask: Vec<bool>,
    had_mask: bool,
    /// Incrementally maintained Theil–Sen pairwise-slope state.
    slope_cache: SlopeCache,
    /// Work tallies since the last [`take_stats`](Self::take_stats).
    stats: StreamingStats,
    /// Per-backend trig evaluation tallies
    /// (`[table, poly, libm, recurrence]`).
    trig_hits: [u64; 4],
}

/// Incrementally maintained Theil–Sen pairwise-slope state over the
/// emitted fit columns.
///
/// Unchanged channels re-emit bitwise-identical unwrapped phases across
/// advances (the unwrap corrects each channel's own wrapped value by an
/// integer number of periods), so in steady state only the few freshly
/// dwelt or expired channels move — refreshing just their pairs replaces
/// the O(n²) pairwise division sweep with an O(changed·n) touch-up.
/// Each changed column still touches `n - 1` pair slopes, so any fully
/// *sorted* representation of the multiset (merge, splice, or re-select)
/// would pay O(n²) per advance regardless; instead the cache tracks only
/// a **rank band** around the median: the multiset's member values inside
/// a fixed slope interval chosen to cover the median rank(s) with
/// [`BAND_PAD`] ranks of slack on each side, plus the exact count of
/// valid slopes below the interval. While the abscissae are unchanged the
/// median *ranks* are fixed, so each query is a coverage check plus a
/// small select inside the band — and every pair refresh adjusts the
/// below-count or band membership in O(1). The band partitions the
/// multiset by value, so the in-band selection reads out exactly the
/// order statistics [`theil_sen_with`](crate::linfit::theil_sen_with)
/// computes, keeping the slope bit-identical to the batch enumeration;
/// when churn walks the median rank out of the band (or bloats it), the
/// band is re-derived from the slope matrix by quickselect — the same
/// cost the batch path pays every advance.
#[derive(Debug, Default)]
struct SlopeCache {
    /// Bitwise snapshot of the previous advance's fit columns.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Flat upper-triangular pairwise slopes in the `(i, j > i)`
    /// lexicographic order the batch enumeration uses; NaN marks the
    /// `dx == 0` pairs the batch enumeration skips entirely.
    slopes: Vec<f64>,
    /// Band interval (inclusive on both ends). Values strictly below
    /// `band_lo` are counted in `below`; values in `[band_lo, band_hi]`
    /// live in `members`; values above are only implied.
    band_lo: f64,
    band_hi: f64,
    /// Number of valid slopes strictly below `band_lo`.
    below: usize,
    /// The band's member values, unordered (a value sub-multiset).
    members: Vec<f64>,
    /// Number of valid (non-NaN) slopes in the multiset; depends only on
    /// the abscissae, so it is constant between full rebuilds.
    valid_count: usize,
    /// Band re-derivation scratch.
    scratch: Vec<f64>,
    /// Column indices whose emitted value changed since last advance,
    /// plus the same set as a flag bitmap (each changed pair is touched
    /// exactly once).
    changed: Vec<usize>,
    changed_flag: Vec<bool>,
    valid: bool,
}

/// Ranks of slack the band keeps on each side of the median ranks when
/// (re-)derived. Larger pads survive more churn between re-derivations
/// but make every in-band select proportionally larger.
const BAND_PAD: usize = 48;

/// Member-count ceiling past which the band is re-derived even while it
/// still covers the median: values migrating *into* the interval grow
/// `members` without bound otherwise (the interval is fixed between
/// re-derivations).
const BAND_BLOAT_LIMIT: usize = 384;


/// One pairwise Theil–Sen slope, NaN when the abscissae coincide.
fn pair_slope(xs: &[f64], ys: &[f64], i: usize, j: usize) -> f64 {
    let dx = xs[j] - xs[i];
    if dx.abs() > 0.0 {
        (ys[j] - ys[i]) / dx
    } else {
        f64::NAN
    }
}

impl SlopeCache {
    /// The median pairwise slope over `(xs, ys)` — bitwise the slope
    /// [`theil_sen_with`](crate::linfit::theil_sen_with) computes —
    /// recomputing only pairs that touch a column whose value changed
    /// since the previous call. Falls back to a full rebuild when the
    /// abscissae changed (channel membership / order) or most columns
    /// moved (e.g. a global π vote flip).
    fn median_slope(&mut self, xs: &[f64], ys: &[f64]) -> Result<f64, FitError> {
        if xs.len() != ys.len() {
            return Err(FitError::LengthMismatch);
        }
        let n = xs.len();
        if n < 2 {
            return Err(FitError::TooFewPoints);
        }
        let same_xs = self.valid
            && self.xs.len() == n
            && self.xs.iter().zip(xs).all(|(a, b)| a.to_bits() == b.to_bits());
        let mut incremental = false;
        if same_xs {
            self.changed.clear();
            for (i, (y, prev)) in ys.iter().zip(&self.ys).enumerate() {
                if y.to_bits() != prev.to_bits() {
                    self.changed.push(i);
                }
            }
            incremental = 2 * self.changed.len() <= n;
        }
        let mut band_fresh = false;
        if incremental {
            self.changed_flag.clear();
            self.changed_flag.resize(n, false);
            for &i in &self.changed {
                self.changed_flag[i] = true;
            }
            for c in 0..self.changed.len() {
                let i = self.changed[c];
                self.ys[i] = ys[i];
                for j in 0..n {
                    // Pairs between two changed columns are refreshed once,
                    // when the smaller index is being processed.
                    if j == i || (self.changed_flag[j] && j < i) {
                        continue;
                    }
                    let (a, b) = if i < j { (i, j) } else { (j, i) };
                    let idx = a * (2 * n - a - 1) / 2 + (b - a - 1);
                    let old = self.slopes[idx];
                    let new = pair_slope(xs, ys, a, b);
                    self.slopes[idx] = new;
                    // Pair validity depends only on the (unchanged)
                    // abscissae, so old and new are NaN together and
                    // `valid_count` is preserved; NaN fails both interval
                    // compares, so invalid pairs fall through as no-ops.
                    debug_assert_eq!(old.is_nan(), new.is_nan());
                    if old < self.band_lo {
                        self.below -= 1;
                    } else if old <= self.band_hi {
                        let pos = self
                            .members
                            .iter()
                            .position(|&v| v == old)
                            .expect("band member missing");
                        self.members.swap_remove(pos);
                    }
                    if new < self.band_lo {
                        self.below += 1;
                    } else if new <= self.band_hi {
                        self.members.push(new);
                    }
                }
            }
        } else {
            self.xs.clear();
            self.xs.extend_from_slice(xs);
            self.ys.clear();
            self.ys.extend_from_slice(ys);
            self.slopes.clear();
            self.slopes.reserve(n * (n - 1) / 2);
            for i in 0..n {
                for j in (i + 1)..n {
                    self.slopes.push(pair_slope(xs, ys, i, j));
                }
            }
            self.valid_count = self.slopes.iter().filter(|v| !v.is_nan()).count();
            self.valid = true;
            if self.valid_count > 0 {
                self.rebuild_band();
                band_fresh = true;
            }
        }
        let m = self.valid_count;
        if m == 0 {
            return Err(FitError::DegenerateX);
        }
        // Ranks of the order statistics the batch median takes: for odd
        // counts the middle element, for even counts the two middle ones.
        let (r0, r1) = ((m - 1) / 2, m / 2);
        // Re-derive the band when churn walked the median rank outside it
        // or grew it past the bloat ceiling. Coverage is guaranteed after
        // a re-derivation (`below ≤ lo_rank ≤ r0` and the inclusive upper
        // edge keeps every tie of the padded upper rank in the band).
        if !band_fresh
            && (self.below > r0
                || r1 >= self.below + self.members.len()
                || self.members.len() > BAND_BLOAT_LIMIT)
        {
            self.rebuild_band();
        }
        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("finite slopes");
        let k1 = r1 - self.below;
        let median = if m % 2 == 1 {
            let (_, v, _) = self.members.select_nth_unstable_by(k1, cmp);
            *v
        } else {
            // Mirror `stats::median_in_place`: select the upper middle,
            // then the lower middle is the max of the left partition
            // (k1 ≥ 1 because rank r0 = r1 - 1 also sits at or after
            // `below`). Equal selected values are bit-identical — the
            // multiset holds no -0.0 (ascending abscissae make tied-y
            // slopes exactly +0.0).
            let (left, v, _) = self.members.select_nth_unstable_by(k1, cmp);
            let low = *left.iter().max_by(|a, b| cmp(a, b)).expect("k1 >= 1");
            (low + *v) / 2.0
        };
        Ok(median)
    }

    /// Re-derive the band interval, below-count, and member sub-multiset
    /// from the slope matrix: quickselect the padded rank endpoints, then
    /// one partition pass. Requires `valid_count > 0`.
    fn rebuild_band(&mut self) {
        let m = self.valid_count;
        let (r0, r1) = ((m - 1) / 2, m / 2);
        let lo_rank = r0.saturating_sub(BAND_PAD);
        let hi_rank = (r1 + BAND_PAD).min(m - 1);
        self.scratch.clear();
        self.scratch.extend(self.slopes.iter().copied().filter(|v| !v.is_nan()));
        debug_assert_eq!(self.scratch.len(), m);
        let cmp = |a: &f64, b: &f64| a.partial_cmp(b).expect("finite slopes");
        let (_, v_lo, upper) = self.scratch.select_nth_unstable_by(lo_rank, cmp);
        self.band_lo = *v_lo;
        self.band_hi = if hi_rank > lo_rank {
            let (_, v_hi, _) = upper.select_nth_unstable_by(hi_rank - lo_rank - 1, cmp);
            *v_hi
        } else {
            self.band_lo
        };
        let (band_lo, band_hi) = (self.band_lo, self.band_hi);
        self.below = 0;
        self.members.clear();
        for &v in &self.slopes {
            if v < band_lo {
                self.below += 1;
            } else if v <= band_hi {
                self.members.push(v);
            }
        }
    }
}

impl StreamingWindow {
    /// An empty window with the given configuration.
    pub fn new(config: StreamingConfig) -> Self {
        StreamingWindow { config, ..Default::default() }
    }

    /// The window's configuration.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Total reads currently retained.
    pub fn read_count(&self) -> usize {
        self.channels.iter().map(|c| c.count).sum()
    }

    /// Work tallies since the last [`take_stats`](Self::take_stats).
    pub fn stats(&self) -> StreamingStats {
        self.stats
    }

    /// Returns and resets the work tallies.
    pub fn take_stats(&mut self) -> StreamingStats {
        std::mem::take(&mut self.stats)
    }

    /// Returns and resets the per-backend trig evaluation tallies
    /// (`[table, poly, libm, recurrence]`), counting every phasor
    /// evaluated at push time plus any fallback recompute's work.
    pub fn take_trig_hits(&mut self) -> [u64; 4] {
        std::mem::take(&mut self.trig_hits)
    }

    /// Robust inlier mask of the most recent successful
    /// [`extract_into`](Self::extract_into) (parallel to its emitted
    /// channels, sorted by frequency).
    pub fn inlier_mask(&self) -> &[bool] {
        self.ws.fit.inlier_mask()
    }

    /// Pushes one read into the window, updating its channel's running
    /// sums in O(1). Reads must arrive in nondecreasing timestamp order
    /// (the order a reader stream delivers them), which keeps every
    /// per-channel sum in the batch summation order.
    pub fn push(&mut self, read: &RawRead) {
        let doubled = self.config.preprocess.correct_pi_jumps;
        let mut stored = self.compute_phasors(read, doubled);
        let s = self.slot(read.channel);
        let ch = &mut self.channels[s];
        // Classify against the cached axes now so the fold sums and vote
        // tally stay current without revisiting the FIFO at extract time.
        // The additions land in FIFO (= batch) order, so an append-only
        // channel's fold sums remain bit-identical to a fresh pass as
        // long as no selection has flipped (checked at extract via the
        // cached minimum margins).
        if doubled && ch.fold_cache_valid {
            let dist = wrapped_distance(read.phase, ch.fold_axis);
            let m = (dist - FRAC_PI_2).abs();
            if m < ch.fold_min_margin {
                ch.fold_min_margin = m;
            }
            stored.fold_base = dist <= FRAC_PI_2;
            if stored.fold_base {
                ch.fold_sin += stored.base_sin;
                ch.fold_cos += stored.base_cos;
            } else {
                ch.fold_sin += stored.shift_sin;
                ch.fold_cos += stored.shift_cos;
            }
        }
        if doubled && ch.vote_cache_valid {
            let dist = wrapped_distance(read.phase, ch.vote_axis);
            let m = (dist - FRAC_PI_2).abs();
            if m < ch.vote_min_margin {
                ch.vote_min_margin = m;
            }
            stored.vote_in = dist <= FRAC_PI_2;
            if stored.vote_in {
                ch.votes_axis += 1;
            }
        }
        ch.fifo.push_back(stored);
        ch.count += 1;
        ch.sum_rssi += read.rssi_dbm;
        ch.acc_sin += stored.acc_sin;
        ch.acc_cos += stored.acc_cos;
        if ch.drifted {
            ch.drift_ops += 1;
            self.stats.drift_ops += 1;
        }
        ch.dirty = true;
        self.stats.updates += 1;
    }

    /// Expires every retained read with `timestamp_s < cutoff_s`,
    /// downdating its channel's sums, and returns the number removed.
    /// Emptied channels reset to the exact zero state; channels that
    /// exceed the drift-operation budget are rebuilt exactly from their
    /// retained reads.
    pub fn expire_before(&mut self, cutoff_s: f64) -> usize {
        let mut removed = 0usize;
        for ch in &mut self.channels {
            let mut changed = false;
            while let Some(front) = ch.fifo.front() {
                if front.read.timestamp_s >= cutoff_s {
                    break;
                }
                let sr = ch.fifo.pop_front().expect("front exists");
                ch.count -= 1;
                ch.sum_rssi -= sr.read.rssi_dbm;
                ch.acc_sin -= sr.acc_sin;
                ch.acc_cos -= sr.acc_cos;
                if ch.fold_cache_valid {
                    if sr.fold_base {
                        ch.fold_sin -= sr.base_sin;
                        ch.fold_cos -= sr.base_cos;
                    } else {
                        ch.fold_sin -= sr.shift_sin;
                        ch.fold_cos -= sr.shift_cos;
                    }
                }
                if ch.vote_cache_valid && sr.vote_in {
                    ch.votes_axis -= 1;
                }
                ch.drifted = true;
                ch.drift_ops += 1;
                self.stats.drift_ops += 1;
                changed = true;
                removed += 1;
            }
            if changed {
                ch.dirty = true;
                if ch.fifo.is_empty() {
                    ch.reset_exact();
                } else if ch.drift_ops >= self.config.max_drift_ops {
                    Self::rebuild_channel(ch);
                    self.stats.rebuilds += 1;
                }
            }
        }
        self.stats.downdates += removed as u64;
        removed
    }

    /// Runs the window's front end: per-channel aggregation (incremental
    /// where possible), cross-channel unwrap, π majority vote, and the
    /// raw + robust line fits. `out` is cleared and refilled with the
    /// per-channel observations (sorted by frequency), exactly as the
    /// batch [`preprocess_reads_with`] fills it. In steady state (all
    /// buffer capacities reached, no fallback) the call performs zero
    /// heap allocations.
    ///
    /// # Errors
    ///
    /// [`StreamingError::Preprocess`] when no channel holds enough reads;
    /// [`StreamingError::Fit`] when the line fit is degenerate.
    pub fn extract_into(
        &mut self,
        out: &mut Vec<ChannelObservation>,
    ) -> Result<StreamExtract, StreamingError> {
        let margin = self.config.decision_margin;
        let min_reads = self.config.preprocess.min_reads_per_channel.max(1);
        let pi_mode = self.config.preprocess.correct_pi_jumps;

        // Conditioning pass: a drifted channel whose resultant has
        // cancelled away is rebuilt exactly before its axis is read off.
        for ch in &mut self.channels {
            if ch.count == 0 || !ch.drifted {
                continue;
            }
            let r = (ch.acc_sin * ch.acc_sin + ch.acc_cos * ch.acc_cos).sqrt()
                / ch.count as f64;
            if r < self.config.conditioning_floor {
                Self::rebuild_channel(ch);
                self.stats.rebuilds += 1;
            }
        }
        let any_drifted = self.channels.iter().any(|c| c.count > 0 && c.drifted);
        let mut hazard = false;

        // Per-channel stage: recompute axis / fold / spread for channels
        // whose membership changed, reuse the cache otherwise. The
        // expressions replicate the batch per-slot pass verbatim, and the
        // per-channel fold sums accumulate in FIFO (= batch) order.
        let mut kept = 0usize;
        for ch in &mut self.channels {
            let keep = ch.count >= min_reads;
            if ch.count == 0 || !keep {
                continue;
            }
            kept += 1;
            if ch.dirty {
                let (sin, cos) = (ch.acc_sin, ch.acc_cos);
                let n = ch.count as f64;
                let r = (sin * sin + cos * cos).sqrt() / n;
                let first_phase = ch.fifo.front().expect("non-empty").read.phase;
                if pi_mode {
                    let doubled_mean =
                        if r < 1e-12 { 2.0 * first_phase } else { sin.atan2(cos) };
                    ch.axis = doubled_mean / 2.0;
                    // Reuse the incremental fold sums when no selection
                    // can have flipped: the axis moved less (on the
                    // circle) than the closest retained read ever came to
                    // the fold boundary. Selections then match a fresh
                    // classification exactly, and because pushes appended
                    // phasors in FIFO order, the cached sums are the very
                    // float sequence the batch pass would compute. A
                    // drifted channel whose fold resultant has cancelled
                    // is reclassified instead (exact re-summation), like
                    // the conditioning rebuild of the first-pass sums.
                    let shift = wrapped_distance(ch.axis, ch.fold_axis);
                    let fr_cached = ((ch.fold_sin * ch.fold_sin + ch.fold_cos * ch.fold_cos)
                        .sqrt()
                        / n)
                        .min(1.0);
                    let reuse = ch.fold_cache_valid
                        && shift < ch.fold_min_margin
                        && !(ch.drifted && fr_cached < self.config.conditioning_floor);
                    if reuse {
                        ch.fold_margin_ok = ch.fold_min_margin - shift > margin;
                        ch.spread = (-2.0 * fr_cached.max(1e-300).ln()).sqrt();
                    } else {
                        let mut fold_sin = 0.0;
                        let mut fold_cos = 0.0;
                        let mut min_m = f64::INFINITY;
                        let mut margin_ok = true;
                        for sr in &mut ch.fifo {
                            let dist = wrapped_distance(sr.read.phase, ch.axis);
                            let m = (dist - FRAC_PI_2).abs();
                            if m < min_m {
                                min_m = m;
                            }
                            if m < margin {
                                margin_ok = false;
                            }
                            sr.fold_base = dist <= FRAC_PI_2;
                            if sr.fold_base {
                                fold_sin += sr.base_sin;
                                fold_cos += sr.base_cos;
                            } else {
                                fold_sin += sr.shift_sin;
                                fold_cos += sr.shift_cos;
                            }
                        }
                        ch.fold_sin = fold_sin;
                        ch.fold_cos = fold_cos;
                        ch.fold_axis = ch.axis;
                        ch.fold_min_margin = min_m;
                        ch.fold_cache_valid = true;
                        ch.fold_margin_ok = margin_ok;
                        let fr =
                            ((fold_sin * fold_sin + fold_cos * fold_cos).sqrt() / n).min(1.0);
                        ch.spread = (-2.0 * fr.max(1e-300).ln()).sqrt();
                    }
                } else {
                    ch.axis = if r < 1e-12 { first_phase } else { sin.atan2(cos) };
                    ch.spread = (-2.0 * r.clamp(1e-300, 1.0).ln()).sqrt();
                    ch.fold_margin_ok = true;
                }
                ch.dirty = false;
            }
            if ch.drifted && !ch.fold_margin_ok {
                hazard = true;
            }
        }
        if kept == 0 {
            return Err(StreamingError::Preprocess(PreprocessError::NoUsableChannels));
        }

        // Kept channels sorted ascending by (frequency, channel id) — the
        // batch slot ordering.
        self.order.clear();
        self.order.extend(
            self.channels
                .iter()
                .enumerate()
                .filter(|(_, c)| c.count >= min_reads && c.count > 0)
                .map(|(i, _)| i),
        );
        {
            let channels = &self.channels;
            self.order.sort_unstable_by(|&a, &b| {
                let fa = channels[a].fifo.front().expect("kept").read.frequency_hz;
                let fb = channels[b].fifo.front().expect("kept").read.frequency_hz;
                fa.partial_cmp(&fb)
                    .expect("finite frequencies")
                    .then_with(|| channels[a].chan.cmp(&channels[b].chan))
            });
        }

        // Cross-channel unwrap. The jump decisions flip only when a
        // consecutive difference sits at the half-period boundary, so a
        // post-hoc scan bounds them: under drift, any |d| within the
        // margin of the boundary is a hazard.
        self.phase_col.clear();
        for &s in &self.order {
            self.phase_col.push(angle::wrap_tau(self.channels[s].axis));
        }
        let half = if pi_mode {
            angle::unwrap_in_place_period(&mut self.phase_col, PI);
            FRAC_PI_2
        } else {
            angle::unwrap_in_place(&mut self.phase_col);
            PI
        };
        if any_drifted {
            for k in 1..self.phase_col.len() {
                let d = self.phase_col[k] - self.phase_col[k - 1];
                if d.abs() > half - margin {
                    hazard = true;
                }
            }
        }

        // Global π majority vote over every retained read. The
        // per-channel tallies are maintained incrementally (pushes count
        // the new read against the cached vote axis, expiries subtract
        // the stored bit — counts are integers, so downdating is exact);
        // a channel is recounted only when the unwrapped axis moved
        // further than the closest read ever came to the vote boundary,
        // i.e. only when a vote could actually have flipped.
        if pi_mode {
            let mut votes_axis = 0usize;
            let mut votes_total = 0usize;
            for (k, &s) in self.order.iter().enumerate() {
                let unwrapped = self.phase_col[k];
                let ch = &mut self.channels[s];
                let shift = wrapped_distance(unwrapped, ch.vote_axis);
                if ch.vote_cache_valid && shift < ch.vote_min_margin {
                    ch.vote_margin_ok = ch.vote_min_margin - shift > margin;
                } else {
                    let mut va = 0usize;
                    let mut min_m = f64::INFINITY;
                    let mut margin_ok = true;
                    for sr in &mut ch.fifo {
                        let dist = wrapped_distance(sr.read.phase, unwrapped);
                        let m = (dist - FRAC_PI_2).abs();
                        if m < min_m {
                            min_m = m;
                        }
                        if m < margin {
                            margin_ok = false;
                        }
                        sr.vote_in = dist <= FRAC_PI_2;
                        if sr.vote_in {
                            va += 1;
                        }
                    }
                    ch.votes_axis = va;
                    ch.vote_margin_ok = margin_ok;
                    ch.vote_axis = unwrapped;
                    ch.vote_min_margin = min_m;
                    ch.vote_cache_valid = true;
                }
                votes_total += ch.count;
                votes_axis += ch.votes_axis;
                if any_drifted && !ch.vote_margin_ok {
                    hazard = true;
                }
            }
            if 2 * votes_axis < votes_total {
                for p in &mut self.phase_col {
                    *p += PI;
                }
            }
        }

        // Emit the observations and feed the fused unwrap+OLS sums + fit
        // columns, as the batch emit loop does.
        self.ws.reset_channels();
        out.clear();
        for (k, &s) in self.order.iter().enumerate() {
            let ch = &self.channels[s];
            let freq = ch.fifo.front().expect("kept").read.frequency_hz;
            let phase = self.phase_col[k];
            out.push(ChannelObservation {
                channel: ch.chan,
                frequency_hz: freq,
                phase,
                rssi_dbm: ch.sum_rssi / ch.count as f64,
                read_count: ch.count,
                phase_spread: ch.spread,
            });
            self.ws.emit(freq, phase);
        }

        // Fit stage; the robust sensitivity probe and the mask-flip guard
        // only arm while any channel is drifted (otherwise the columns are
        // bit-identical to batch and need no guard).
        let mut fallback = hazard;
        let mut fit = None;
        if !fallback {
            match self.fit_stage(any_drifted, margin).map_err(StreamingError::Fit)? {
                Some(result) => fit = Some(result),
                None => fallback = true,
            }
        }
        if fallback {
            self.stats.refit_fallbacks += 1;
            self.run_fallback(out)?;
            fit = Some(
                self.fit_stage(false, 0.0)
                    .map_err(StreamingError::Fit)?
                    .expect("unguarded fit cannot signal a hazard"),
            );
        }
        let (raw_fit, robust) = fit.expect("fit stage ran");
        Ok(StreamExtract { fallback, raw_fit, robust })
    }

    /// Raw + robust fits over the workspace's current fit columns.
    /// Returns `Ok(None)` when `guard` is set and a robust decision sat
    /// within the margin or the inlier mask flipped relative to the
    /// previous advance (caller must fall back).
    #[allow(clippy::type_complexity)]
    fn fit_stage(
        &mut self,
        guard: bool,
        margin: f64,
    ) -> Result<Option<(LineFit, Option<RobustSummary>)>, FitError> {
        let raw_fit = self.ws.raw_fit()?;
        if !self.config.suppress_multipath {
            return Ok(Some((raw_fit, None)));
        }
        let robust_cfg = self.config.robust;
        let probe = if guard { margin } else { 0.0 };
        let (xs, ys, fit_ws) = self.ws.fit_columns();
        // Seed slope from the incrementally maintained pairwise multiset —
        // bit-identical to the O(n²) enumeration inside the unseeded fit.
        let slope = self.slope_cache.median_slope(xs, ys)?;
        let (summary, sensitive) =
            robust_line_fit_seeded(fit_ws, xs, ys, &robust_cfg, probe, slope)?;
        if guard {
            if sensitive {
                return Ok(None);
            }
            if self.had_mask && self.ws.fit.inlier_mask() != &self.last_mask[..] {
                return Ok(None);
            }
        }
        self.last_mask.clear();
        self.last_mask.extend_from_slice(self.ws.fit.inlier_mask());
        self.had_mask = true;
        Ok(Some((raw_fit, Some(summary))))
    }

    /// Full batch recompute over the retained reads (concatenated per
    /// channel — bit-identical output to a batch call in arrival order),
    /// then exact rebuilds of every drifted channel so subsequent
    /// advances resume on the incremental path.
    fn run_fallback(
        &mut self,
        out: &mut Vec<ChannelObservation>,
    ) -> Result<(), StreamingError> {
        self.scratch_reads.clear();
        for ch in &self.channels {
            for sr in &ch.fifo {
                self.scratch_reads.push(sr.read);
            }
        }
        let res = preprocess_reads_with(
            &mut self.ws,
            &self.scratch_reads,
            &self.config.preprocess,
            out,
        );
        let fallback_hits = self.ws.trig_hits();
        for (total, h) in self.trig_hits.iter_mut().zip(fallback_hits) {
            *total += h;
        }
        res.map_err(StreamingError::Preprocess)?;
        for ch in &mut self.channels {
            if ch.count > 0 && ch.drifted {
                Self::rebuild_channel(ch);
                self.stats.rebuilds += 1;
            }
        }
        Ok(())
    }

    /// Re-accumulates a channel's sums from its retained reads in FIFO
    /// (= batch) order, restoring bit-identity with the batch recompute
    /// and clearing the drift state. The fold sums and vote tally are
    /// re-summed in the same pass from the stored classification bits
    /// (the selections themselves are unchanged — they depend only on the
    /// cached axes), so those caches survive the rebuild drift-free.
    fn rebuild_channel(ch: &mut ChannelState) {
        ch.sum_rssi = 0.0;
        ch.acc_sin = 0.0;
        ch.acc_cos = 0.0;
        ch.fold_sin = 0.0;
        ch.fold_cos = 0.0;
        let mut va = 0usize;
        for sr in &ch.fifo {
            ch.sum_rssi += sr.read.rssi_dbm;
            ch.acc_sin += sr.acc_sin;
            ch.acc_cos += sr.acc_cos;
            if ch.fold_cache_valid {
                if sr.fold_base {
                    ch.fold_sin += sr.base_sin;
                    ch.fold_cos += sr.base_cos;
                } else {
                    ch.fold_sin += sr.shift_sin;
                    ch.fold_cos += sr.shift_cos;
                }
            }
            if sr.vote_in {
                va += 1;
            }
        }
        if ch.vote_cache_valid {
            ch.votes_axis = va;
        }
        ch.count = ch.fifo.len();
        ch.drifted = false;
        ch.drift_ops = 0;
        ch.dirty = true;
    }

    /// Index of `channel`'s state, allocating one on first sight (slots
    /// persist for the window's lifetime, so steady state allocates
    /// nothing).
    fn slot(&mut self, channel: usize) -> usize {
        if channel >= self.slot_of.len() {
            self.slot_of.resize(channel + 1, u32::MAX);
        }
        let s = self.slot_of[channel];
        if s != u32::MAX {
            return s as usize;
        }
        let slot = self.channels.len();
        self.slot_of[channel] = slot as u32;
        self.channels.push(ChannelState::new(channel));
        slot
    }

    /// Computes the stored phasors for one read with the configured
    /// backend, replicating the batch per-read expressions bit for bit
    /// (stateless backends) or within the recurrence error bound.
    fn compute_phasors(&mut self, read: &RawRead, doubled: bool) -> StoredRead {
        // `1.0 · p` is exactly `p`: one scaled expression serves both
        // modes, as in the batch passes.
        let scale = if doubled { 2.0 } else { 1.0 };
        let p = read.phase;
        let mut stored = StoredRead {
            read: *read,
            acc_sin: 0.0,
            acc_cos: 0.0,
            base_sin: 0.0,
            base_cos: 0.0,
            shift_sin: 0.0,
            shift_cos: 0.0,
            fold_base: false,
            vote_in: false,
        };
        match self.config.preprocess.trig {
            TrigProvider::Table => match read.phase_code {
                Some(code) => {
                    self.trig_hits[hit::TABLE] += if doubled { 3 } else { 1 };
                    (stored.acc_sin, stored.acc_cos) = if doubled {
                        trig::table_double_sin_cos(code)
                    } else {
                        trig::table_sin_cos(code)
                    };
                    if doubled {
                        (stored.base_sin, stored.base_cos) = trig::table_sin_cos(code);
                        (stored.shift_sin, stored.shift_cos) = trig::table_shift_sin_cos(code);
                    }
                }
                None => {
                    self.trig_hits[hit::LIBM] += if doubled { 3 } else { 1 };
                    let x = scale * p;
                    (stored.acc_sin, stored.acc_cos) = (x.sin(), x.cos());
                    if doubled {
                        (stored.base_sin, stored.base_cos) = (p.sin(), p.cos());
                        let folded = p + PI;
                        (stored.shift_sin, stored.shift_cos) = (folded.sin(), folded.cos());
                    }
                }
            },
            TrigProvider::Libm => {
                self.trig_hits[hit::LIBM] += if doubled { 3 } else { 1 };
                let x = scale * p;
                (stored.acc_sin, stored.acc_cos) = (x.sin(), x.cos());
                if doubled {
                    (stored.base_sin, stored.base_cos) = (p.sin(), p.cos());
                    let folded = p + PI;
                    (stored.shift_sin, stored.shift_cos) = (folded.sin(), folded.cos());
                }
            }
            TrigProvider::Polynomial => {
                self.trig_hits[hit::POLY] += if doubled { 3 } else { 1 };
                (stored.acc_sin, stored.acc_cos) = trig::poly_sin_cos(scale * p);
                if doubled {
                    (stored.base_sin, stored.base_cos) = trig::poly_sin_cos(p);
                    (stored.shift_sin, stored.shift_cos) = trig::poly_sin_cos(p + PI);
                }
            }
            TrigProvider::Recurrence => {
                // Two persistent rotation chains — the doubled-angle
                // accumulator phasor and the fold-pass base phasor; the
                // π-shifted phasor is the exact negation of the base.
                self.trig_hits[hit::RECURRENCE] += if doubled { 2 } else { 1 };
                (stored.acc_sin, stored.acc_cos) = self.acc_rec.advance(scale * p);
                if doubled {
                    (stored.base_sin, stored.base_cos) = self.base_rec.advance(p);
                    (stored.shift_sin, stored.shift_cos) =
                        (-stored.base_sin, -stored.base_cos);
                }
            }
        }
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::robust::robust_line_fit_with;

    fn read(channel: usize, phase: f64, t: f64) -> RawRead {
        RawRead {
            channel,
            frequency_hz: 902.75e6 + channel as f64 * 0.5e6,
            phase: angle::wrap_tau(phase),
            rssi_dbm: -55.0 - 0.1 * channel as f64,
            timestamp_s: t,
            phase_code: None,
        }
    }

    /// Dwell-structured stream: `rounds` sweeps over `chans` channels,
    /// `per` reads per dwell, with π jumps sprinkled in.
    fn stream(rounds: usize, chans: usize, per: usize) -> Vec<RawRead> {
        let mut reads = Vec::new();
        for round in 0..rounds {
            for c in 0..chans {
                for k in 0..per {
                    let t = (round * chans + c) as f64 * 0.2
                        + 0.2 * (k as f64 + 0.5) / per as f64;
                    let p = 0.3
                        + 1.1 * c as f64
                        + 0.01 * k as f64
                        + 0.002 * round as f64
                        + if (round + c * 7 + k) % 3 == 0 { PI } else { 0.0 };
                    reads.push(read(c, p, t));
                }
            }
        }
        reads
    }

    fn batch_oracle(
        reads: &[RawRead],
        cfg: &StreamingConfig,
    ) -> (Vec<ChannelObservation>, Vec<bool>, RobustSummary) {
        let mut ws = FrontEndWorkspace::default();
        let mut out = Vec::new();
        preprocess_reads_with(&mut ws, reads, &cfg.preprocess, &mut out).unwrap();
        let (xs, ys, fit_ws) = ws.fit_columns();
        let summary = robust_line_fit_with(fit_ws, xs, ys, &cfg.robust).unwrap();
        let mask = ws.fit.inlier_mask().to_vec();
        (out, mask, summary)
    }

    /// A freshly filled window (no downdates yet) must be bit-identical
    /// to the batch front end on the same reads.
    #[test]
    fn append_only_window_is_bit_identical_to_batch() {
        let reads = stream(1, 12, 8);
        let cfg = StreamingConfig {
            preprocess: PreprocessConfig { trig: TrigProvider::Libm, ..Default::default() },
            ..Default::default()
        };
        let mut win = StreamingWindow::new(cfg);
        for r in &reads {
            win.push(r);
        }
        let mut out = Vec::new();
        let extract = win.extract_into(&mut out).unwrap();
        assert!(!extract.fallback);
        let (batch, mask, summary) = batch_oracle(&reads, &cfg);
        assert_eq!(out.len(), batch.len());
        for (s, b) in out.iter().zip(&batch) {
            assert_eq!(s.channel, b.channel);
            assert_eq!(s.phase.to_bits(), b.phase.to_bits());
            assert_eq!(s.phase_spread.to_bits(), b.phase_spread.to_bits());
            assert_eq!(s.rssi_dbm.to_bits(), b.rssi_dbm.to_bits());
            assert_eq!(s.read_count, b.read_count);
        }
        assert_eq!(win.inlier_mask(), &mask[..]);
        let robust = extract.robust.unwrap();
        assert_eq!(robust.fit.slope.to_bits(), summary.fit.slope.to_bits());
        assert_eq!(robust.fit.intercept.to_bits(), summary.fit.intercept.to_bits());
    }

    /// Sliding the window dwell by dwell stays within the drift bound of
    /// the batch recompute on the retained read set, with identical
    /// robust inlier masks.
    #[test]
    fn sliding_window_tracks_batch_recompute() {
        let chans = 12;
        let per = 8;
        let reads = stream(4, chans, per);
        let round_len = chans * per;
        let span = chans as f64 * 0.2;
        let cfg = StreamingConfig {
            preprocess: PreprocessConfig { trig: TrigProvider::Libm, ..Default::default() },
            ..Default::default()
        };
        let mut win = StreamingWindow::new(cfg);
        for r in &reads[..round_len] {
            win.push(r);
        }
        let mut out = Vec::new();
        let mut advances = 0usize;
        let mut fallbacks = 0usize;
        let mut next = round_len;
        while next + per <= reads.len() {
            for r in &reads[next..next + per] {
                win.push(r);
            }
            let now = reads[next + per - 1].timestamp_s;
            win.expire_before(now - span);
            let extract = win.extract_into(&mut out).unwrap();
            advances += 1;
            if extract.fallback {
                fallbacks += 1;
            }
            // Oracle: batch on exactly the retained reads, in arrival
            // order.
            let cutoff = now - span;
            let retained: Vec<RawRead> = reads[..next + per]
                .iter()
                .filter(|r| r.timestamp_s >= cutoff)
                .copied()
                .collect();
            assert_eq!(retained.len(), win.read_count());
            let (batch, mask, _) = batch_oracle(&retained, &cfg);
            assert_eq!(out.len(), batch.len());
            for (s, b) in out.iter().zip(&batch) {
                assert_eq!(s.channel, b.channel);
                assert!(
                    (s.phase - b.phase).abs() < 1e-9,
                    "phase {} vs {}",
                    s.phase,
                    b.phase
                );
                assert!((s.phase_spread - b.phase_spread).abs() < 1e-9);
                assert!((s.rssi_dbm - b.rssi_dbm).abs() < 1e-9);
                assert_eq!(s.read_count, b.read_count);
            }
            assert_eq!(win.inlier_mask(), &mask[..]);
            next += per;
        }
        assert!(advances >= 30, "exercised {advances} advances");
        let stats = win.take_stats();
        assert_eq!(stats.updates as usize, reads.len());
        assert!(stats.downdates > 0);
        assert_eq!(stats.refit_fallbacks as usize, fallbacks);
        // A sliding window keeps channels drifted, so drift ops accrue;
        // they can never exceed the update+downdate op count.
        assert!(stats.drift_ops > 0);
        assert!(stats.drift_ops <= stats.updates + stats.downdates);
    }

    /// An impossible decision margin forces the fallback on a downdated
    /// window, and the fallback output is bit-identical to batch.
    #[test]
    fn hazard_fallback_is_bit_identical_to_batch() {
        let chans = 10;
        let per = 6;
        let reads = stream(2, chans, per);
        let cfg = StreamingConfig {
            preprocess: PreprocessConfig { trig: TrigProvider::Libm, ..Default::default() },
            // Every fold decision sits "within margin" → guaranteed
            // fallback whenever the window has drifted.
            decision_margin: 10.0,
            ..Default::default()
        };
        let mut win = StreamingWindow::new(cfg);
        let round_len = chans * per;
        for r in &reads[..round_len] {
            win.push(r);
        }
        // Expire half of the first dwell to force a partial downdate.
        for r in &reads[round_len..round_len + per] {
            win.push(r);
        }
        let cutoff = reads[per / 2].timestamp_s;
        assert!(win.expire_before(cutoff) > 0);
        let mut out = Vec::new();
        let extract = win.extract_into(&mut out).unwrap();
        assert!(extract.fallback);
        assert_eq!(win.stats().refit_fallbacks, 1);
        let retained: Vec<RawRead> = reads[..round_len + per]
            .iter()
            .filter(|r| r.timestamp_s >= cutoff)
            .copied()
            .collect();
        let (batch, mask, _) = batch_oracle(&retained, &cfg);
        assert_eq!(out.len(), batch.len());
        for (s, b) in out.iter().zip(&batch) {
            assert_eq!(s.phase.to_bits(), b.phase.to_bits());
            assert_eq!(s.phase_spread.to_bits(), b.phase_spread.to_bits());
        }
        assert_eq!(win.inlier_mask(), &mask[..]);
        // The fallback rebuilt the drifted channels: the next advance is
        // incremental again even though the margin is still impossible
        // (no drift → guards disarmed).
        let extract = win.extract_into(&mut out).unwrap();
        assert!(!extract.fallback);
    }

    /// Emptied channels reset exactly; an empty window errors like batch.
    #[test]
    fn empty_window_errors() {
        let cfg = StreamingConfig::default();
        let mut win = StreamingWindow::new(cfg);
        let mut out = Vec::new();
        assert!(matches!(
            win.extract_into(&mut out),
            Err(StreamingError::Preprocess(PreprocessError::NoUsableChannels))
        ));
        for r in &stream(1, 3, 4) {
            win.push(r);
        }
        assert!(win.extract_into(&mut out).is_ok());
        win.expire_before(f64::INFINITY);
        assert_eq!(win.read_count(), 0);
        assert!(matches!(
            win.extract_into(&mut out),
            Err(StreamingError::Preprocess(PreprocessError::NoUsableChannels))
        ));
    }

    /// The quantized (table) and recurrence backends ride the same
    /// incremental machinery: table stays bit-identical to a libm batch
    /// on coded reads; the recurrence stays within its error bound.
    #[test]
    fn alternate_backends_stay_equivalent() {
        let chans = 10;
        let per = 6;
        let mut reads = stream(3, chans, per);
        let span = chans as f64 * 0.2;
        // Table variant: quantize phases and attach codes.
        let lsb = crate::trig::PHASE_LSB_RAD;
        for r in &mut reads {
            let snapped = angle::wrap_tau((r.phase / lsb).round() * lsb);
            r.phase = snapped;
            r.phase_code = crate::trig::code_for_phase(snapped);
        }
        for trig in [TrigProvider::Table, TrigProvider::Recurrence] {
            let cfg = StreamingConfig {
                preprocess: PreprocessConfig { trig, ..Default::default() },
                ..Default::default()
            };
            let mut win = StreamingWindow::new(cfg);
            let round_len = chans * per;
            for r in &reads[..round_len] {
                win.push(r);
            }
            let mut out = Vec::new();
            let mut next = round_len;
            while next + per <= reads.len() {
                for r in &reads[next..next + per] {
                    win.push(r);
                }
                let now = reads[next + per - 1].timestamp_s;
                let cutoff = now - span;
                win.expire_before(cutoff);
                win.extract_into(&mut out).unwrap();
                let retained: Vec<RawRead> = reads[..next + per]
                    .iter()
                    .filter(|r| r.timestamp_s >= cutoff)
                    .copied()
                    .collect();
                let libm_cfg = StreamingConfig {
                    preprocess: PreprocessConfig {
                        trig: TrigProvider::Libm,
                        ..Default::default()
                    },
                    ..Default::default()
                };
                let (batch, _, _) = batch_oracle(&retained, &libm_cfg);
                assert_eq!(out.len(), batch.len());
                for (s, b) in out.iter().zip(&batch) {
                    assert!(
                        (s.phase - b.phase).abs() < 1e-9,
                        "{trig:?}: {} vs {}",
                        s.phase,
                        b.phase
                    );
                    assert!((s.phase_spread - b.phase_spread).abs() < 1e-6, "{trig:?}");
                }
                next += per;
            }
            let hits = win.take_trig_hits();
            match trig {
                TrigProvider::Table => assert!(hits[hit::TABLE] > 0),
                TrigProvider::Recurrence => assert!(hits[hit::RECURRENCE] > 0),
                _ => unreachable!(),
            }
        }
    }
}
