//! `rfp-obs` — the RF-Prism instrumentation layer.
//!
//! Three pieces, composable but independent:
//!
//! 1. **Spans** ([`span!`] / [`recorder::span`], backed by
//!    [`span::SpanTree`]): nested, named stage timings recorded into a
//!    thread-local buffer with monotonic clocks. Repeated entries of the
//!    same stage aggregate, so the buffer stays bounded regardless of how
//!    many windows or tags a run processes.
//! 2. **Metrics** ([`Registry`] over a `&'static [MetricDef]` table):
//!    named counters, gauges and fixed-bucket histograms, addressed by
//!    index so the hot path never hashes or allocates.
//! 3. **Sinks** ([`RunReport`]): a human-readable summary table, a
//!    versioned JSON run report (schema pinned by round-trip tests, reused
//!    by the bench snapshot writers), and a Prometheus-style exposition.
//!
//! The crate is std-only with zero dependencies, so anything in the
//! workspace can depend on it. Instrumented crates gate their dependency
//! behind a feature (`rfp-core`'s `obs`) and compile probes down to
//! nothing when it is off; when it is on but no recorder is installed,
//! every probe is one thread-local load and a branch.
//!
//! ```
//! use rfp_obs::{MetricDef, RunReport, recorder};
//!
//! static METRICS: &[MetricDef] = &[
//!     MetricDef::counter("demo.items", "items processed"),
//! ];
//!
//! let (answer, rec) = recorder::observe(METRICS, || {
//!     let _stage = rfp_obs::span!("work");
//!     recorder::counter_add(0, 5);
//!     42
//! });
//! assert_eq!(answer, 42);
//! let report = RunReport::from_recorder("demo", &rec);
//! assert_eq!(report.counters[0], ("demo.items".to_string(), 5));
//! assert!(report.to_json().to_pretty().contains("\"schema_version\": 2"));
//! ```
//!
//! For *continuous* (rather than end-of-run) telemetry there are three
//! more pieces: windowed snapshots ([`Registry::snapshot`] /
//! [`snapshot::MetricsSnapshot::delta_since`]) feeding periodic
//! [`TelemetryFrame`] JSONL records, a bounded structured event ring
//! ([`Journal`]) for postmortems, and a [`HealthEvaluator`] folding
//! thresholds over snapshot deltas into health verdicts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod snapshot;
pub mod span;

pub use health::{GaugeRule, Health, HealthEvaluator, HealthReason, HealthReport, RateRule, StallRule};
pub use journal::{Journal, JournalEvent};
pub use json::{JsonError, JsonValue};
pub use metrics::{Histogram, MetricDef, MetricKind, Registry};
pub use recorder::{Recorder, SpanGuard, TimerGuard};
pub use report::{HistogramEntry, RunReport, SpanEntry, TelemetryFrame, MIN_SCHEMA_VERSION, SCHEMA_VERSION};
pub use snapshot::{HistogramState, MetricsSnapshot};
pub use span::{SpanNode, SpanTree};
