//! Fig. 9: orientation error by distance region (near / medium / far) and
//! by attached material.
//!
//! Paper: 8.59° / 10.40° / 10.50° near/medium/far, overall 9.83°; metal
//! and the conductive liquids slightly worse.

use rfp_bench::{loc, report, setup};
use rfp_phys::Material;
use rfp_sim::Scene;

fn main() {
    let scene = Scene::standard_2d();

    report::header("Fig. 9 (left)", "orientation error vs distance region");
    let specs = loc::grid_orientation_specs(&scene, 5);
    let outcomes = loc::run_trials(&scene, &specs);
    let paper = ["8.59°", "10.40°", "10.50°"];
    let mut region_means = Vec::new();
    for (r, paper_row) in paper.iter().enumerate() {
        let subset: Vec<_> =
            outcomes.iter().copied().filter(|o| o.region == r).collect();
        let mean = loc::mean_orientation_error_deg(&subset);
        report::row(setup::REGION_NAMES[r], paper_row, &report::deg(mean));
        region_means.push(mean);
    }
    let overall = loc::mean_orientation_error_deg(&outcomes);
    report::row("overall", "9.83°", &report::deg(overall));

    report::header("Fig. 9 (right)", "orientation error vs attached material");
    let specs = loc::grid_material_specs(&scene, 4);
    // The material sweep uses α = 0; rotate a copy of the specs through the
    // full orientation set so orientation error is meaningful.
    let mut rotated = Vec::new();
    for (i, s) in specs.iter().enumerate() {
        let mut s = *s;
        s.alpha = setup::evaluation_orientations()[i % 6];
        rotated.push(s);
    }
    let outcomes_m = loc::run_trials(&scene, &rotated);
    for m in Material::CLASSES {
        let subset = loc::filter(&outcomes_m, |s| s.material == m);
        report::row(
            m.label(),
            "≈ 8–13°",
            &report::deg(loc::mean_orientation_error_deg(&subset)),
        );
    }
    report::row("overall", "9.83°", &report::deg(loc::mean_orientation_error_deg(&outcomes_m)));

    assert!(overall < 25.0, "overall orientation error {overall}°");
    assert!(
        region_means[0] <= region_means[2] + 3.0,
        "near region should not be clearly worse than far"
    );
}
