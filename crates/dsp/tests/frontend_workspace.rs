//! Property suite pinning the workspace front-end kernels to the frozen
//! pre-rework implementations in [`rfp_dsp::reference`].
//!
//! The public allocating APIs (`preprocess_reads`, `theil_sen`,
//! `huber_line_fit`, …) delegate to the workspace kernels, so comparing
//! them against the reference module exercises the optimized paths while
//! using a genuinely independent oracle. Everything except the robust fit
//! is required to be **bit-identical** (same summation order, same
//! order-statistic selection); the robust fit's incremental
//! downdated-sums refit is algebraically equal but re-associates the
//! sums, so it gets a tight tolerance with an exactly-equal inlier mask.

use proptest::prelude::*;
use rfp_dsp::linfit::{ols, theil_sen, weighted_ols};
use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
use rfp_dsp::reference;
use rfp_dsp::robust::{huber_line_fit, robust_line_fit, RobustFitConfig};
use rfp_dsp::FrontEndWorkspace;

/// Read sets covering the degenerate shapes the front end must survive:
/// sparse channels (below `min_reads`), single-read channels, repeated
/// identical phases (zero spread), and channel indices far above the
/// dense-slot range.
fn arb_reads() -> impl Strategy<Value = Vec<RawRead>> {
    proptest::collection::vec(
        (0usize..30, 0.0f64..std::f64::consts::TAU, -80.0f64..-30.0, 0u8..2),
        0..120,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .enumerate()
            .map(|(i, (mut ch, phase, rssi, sparse))| {
                if sparse == 1 {
                    // A few channels land way outside the dense range.
                    ch += 900;
                }
                RawRead {
                    channel: ch,
                    frequency_hz: 902.75e6 + ch as f64 * 0.5e6,
                    phase,
                    rssi_dbm: rssi,
                    timestamp_s: i as f64 * 0.01,
                }
            })
            .collect()
    })
}

/// Arbitrary fit data with occasional duplicate x values (zero-dx slope
/// pairs) and occasional exactly-repeated y values.
fn arb_fit_data() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0i32..40, -50.0f64..50.0), 2..60).prop_map(|pts| {
        let xs: Vec<f64> = pts.iter().map(|&(xi, _)| xi as f64 * 0.37).collect();
        let ys: Vec<f64> = pts.iter().map(|&(_, y)| y).collect();
        (xs, ys)
    })
}

proptest! {
    #[test]
    fn preprocess_matches_reference_exactly(
        reads in arb_reads(),
        pi_jumps in proptest::bool::ANY,
        min_reads in 0usize..3,
    ) {
        let config =
            PreprocessConfig { correct_pi_jumps: pi_jumps, min_reads_per_channel: min_reads };
        let expected = reference::preprocess_reads(&reads, &config);
        let actual = preprocess_reads(&reads, &config);
        // Bit-identical including the error case: `==` on f64 fields.
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn workspace_carries_no_state_between_calls(
        first in arb_reads(),
        second in arb_reads(),
    ) {
        let config = PreprocessConfig::default();
        let mut reused = FrontEndWorkspace::default();
        let mut out = Vec::new();
        let _ = rfp_dsp::preprocess_reads_with(&mut reused, &first, &config, &mut out);
        let reused_result =
            rfp_dsp::preprocess_reads_with(&mut reused, &second, &config, &mut out)
                .map(|()| out.clone());

        let mut fresh = FrontEndWorkspace::default();
        let mut fresh_out = Vec::new();
        let fresh_result =
            rfp_dsp::preprocess_reads_with(&mut fresh, &second, &config, &mut fresh_out)
                .map(|()| fresh_out.clone());
        prop_assert_eq!(reused_result, fresh_result);
    }

    #[test]
    fn ols_matches_reference_exactly(data in arb_fit_data()) {
        let (xs, ys) = data;
        prop_assert_eq!(ols(&xs, &ys), reference::ols(&xs, &ys));
    }

    #[test]
    fn weighted_ols_matches_reference_exactly(
        data in arb_fit_data(),
        wseed in 0u64..1000,
    ) {
        let (xs, ys) = data;
        let weights: Vec<f64> = (0..xs.len())
            .map(|i| ((i as u64 * 2654435761 + wseed) % 7) as f64)
            .collect();
        prop_assert_eq!(
            weighted_ols(&xs, &ys, &weights),
            reference::weighted_ols(&xs, &ys, &weights)
        );
    }

    #[test]
    fn theil_sen_matches_reference_exactly(data in arb_fit_data()) {
        let (xs, ys) = data;
        prop_assert_eq!(theil_sen(&xs, &ys), reference::theil_sen(&xs, &ys));
    }

    #[test]
    fn huber_matches_reference_exactly(
        data in arb_fit_data(),
        delta in 0.1f64..5.0,
        iterations in 1usize..6,
    ) {
        let (xs, ys) = data;
        prop_assert_eq!(
            huber_line_fit(&xs, &ys, delta, iterations),
            reference::huber_line_fit(&xs, &ys, delta, iterations)
        );
    }

    #[test]
    fn robust_matches_reference_with_identical_inliers(data in arb_fit_data()) {
        let (xs, ys) = data;
        let config = RobustFitConfig::default();
        let expected = reference::robust_line_fit(&xs, &ys, &config);
        let actual = robust_line_fit(&xs, &ys, &config);
        match (actual, expected) {
            (Ok(a), Ok(e)) => {
                // The incremental downdated refit re-associates the OLS
                // sums, so the fit is equal only to rounding.
                prop_assert!((a.fit.slope - e.fit.slope).abs()
                    <= 1e-9 * (1.0 + e.fit.slope.abs()));
                prop_assert!((a.fit.intercept - e.fit.intercept).abs()
                    <= 1e-9 * (1.0 + e.fit.intercept.abs()));
                prop_assert_eq!(a.inliers, e.inliers);
                prop_assert_eq!(a.iterations, e.iterations);
            }
            (a, e) => prop_assert_eq!(a.is_err(), e.is_err()),
        }
    }
}
