//! Fig. 5: θ_orient vs frequency — rotating the tag shifts the intercept of
//! the phase line but leaves the slope untouched (0° / 30° / 45°).

use rfp_bench::report;
use rfp_core::model::{extract_observation, ExtractConfig};
use rfp_geom::{angle, Vec2};
use rfp_sim::{Motion, Scene, SimTag};

fn main() {
    report::header("Fig. 5", "phase vs frequency at tag orientations 0° / 30° / 45°");
    let scene = Scene::standard_2d();
    let antenna = scene.antenna_poses()[1];
    let pos = Vec2::new(0.5, 1.5);

    let mut slopes = Vec::new();
    let mut intercepts = Vec::new();
    println!("{:>8} {:>14} {:>14}", "α (deg)", "slope (rad/Hz)", "intercept (rad)");
    for &deg in &[0.0f64, 30.0, 45.0] {
        let tag = SimTag::with_seeded_diversity(1)
            .with_motion(Motion::planar_static(pos, deg.to_radians()));
        let survey = scene.survey(&tag, 5);
        let obs =
            extract_observation(antenna, &survey.per_antenna[1], &ExtractConfig::paper())
                .expect("survey usable");
        println!("{deg:>8.0} {:>14.4e} {:>14.4}", obs.slope, obs.intercept);
        slopes.push(obs.slope);
        intercepts.push(obs.intercept);
    }

    // Paper: "the slopes of the line obtained at different tag orientation
    // are identical" while the intercept shifts.
    let slope_spread = slopes.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - slopes.iter().cloned().fold(f64::INFINITY, f64::min);
    let shift_30 = angle::distance(intercepts[1], intercepts[0]);
    let shift_45 = angle::distance(intercepts[2], intercepts[0]);
    println!();
    report::row("slope spread across α", "≈ 0", &format!("{slope_spread:.2e} rad/Hz"));
    report::row("intercept shift @30°", "visible", &format!("{shift_30:.3} rad"));
    report::row("intercept shift @45°", "larger", &format!("{shift_45:.3} rad"));
    assert!(slope_spread < 2e-9, "orientation must not move the slope");
    assert!(shift_30 > 0.2 && shift_45 > shift_30, "intercept must shift with α");
}
