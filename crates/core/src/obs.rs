//! Instrumentation probes for the sensing pipeline (feature `obs`).
//!
//! Every hook the pipeline, solvers, detector and batch engine use lives
//! here, in two interchangeable implementations:
//!
//! * with the `obs` feature **on**, probes forward to the thread-local
//!   recorder in [`rfp_obs`] — spans aggregate into a stage tree, counters
//!   and histograms land in a [`rfp_obs::Registry`] over the [`METRICS`]
//!   descriptor table, and a caller (the CLI, a bench, a test) collects
//!   everything via `rfp_obs::recorder::observe`;
//! * with the feature **off** (the default), every probe is an empty
//!   `#[inline(always)]` function and [`active`] is a `const false`, so
//!   guarded snapshot code folds away and the solver hot path compiles to
//!   exactly the uninstrumented build.
//!
//! Either way, probes never affect results: they only read solver state
//! (work counters, verdicts) and the monotonic clock. The batch-vs-
//! sequential bit-identity suite runs with the feature on and off to pin
//! this down.
//!
//! Metrics are addressed by the compile-time indices in [`id`]; the
//! recording hot path does no hashing and no allocation.

/// Indices into [`METRICS`] — the stable metric addresses
/// the probes use. The table test pins each index to its metric name.
pub mod id {
    /// `solver2d.solves` — completed 2-D joint solves.
    pub const SOLVER2D_SOLVES: usize = 0;
    /// `solver2d.iterations` — LM iterations across all 2-D starts.
    pub const SOLVER2D_ITERATIONS: usize = 1;
    /// `solver2d.residual_evals` — residual-vector evaluations (2-D).
    pub const SOLVER2D_RESIDUAL_EVALS: usize = 2;
    /// `solver2d.jacobian_evals` — Jacobian evaluations (2-D).
    pub const SOLVER2D_JACOBIAN_EVALS: usize = 3;
    /// `solver3d.solves` — completed 3-D joint solves.
    pub const SOLVER3D_SOLVES: usize = 4;
    /// `solver3d.iterations` — LM iterations across all 3-D starts.
    pub const SOLVER3D_ITERATIONS: usize = 5;
    /// `solver3d.residual_evals` — residual-vector evaluations (3-D).
    pub const SOLVER3D_RESIDUAL_EVALS: usize = 6;
    /// `solver3d.jacobian_evals` — Jacobian evaluations (3-D).
    pub const SOLVER3D_JACOBIAN_EVALS: usize = 7;
    /// `pipeline.windows_total` — sensing windows attempted (2-D and 3-D).
    pub const PIPELINE_WINDOWS_TOTAL: usize = 8;
    /// `pipeline.windows_ok` — windows that produced an estimate.
    pub const PIPELINE_WINDOWS_OK: usize = 9;
    /// `pipeline.windows_moving_rejected` — windows discarded because the
    /// error detector declared the tag moving.
    pub const PIPELINE_WINDOWS_MOVING_REJECTED: usize = 10;
    /// `pipeline.windows_too_few_obs` — windows with fewer usable antenna
    /// observations than the solve needs.
    pub const PIPELINE_WINDOWS_TOO_FEW_OBS: usize = 11;
    /// `pipeline.extract_failures` — per-antenna extraction failures.
    pub const PIPELINE_EXTRACT_FAILURES: usize = 12;
    /// `pipeline.rounds_skipped` — hop rounds skipped by the multi-round
    /// path (incomplete extraction or a moving verdict).
    pub const PIPELINE_ROUNDS_SKIPPED: usize = 13;
    /// `detector.windows_clean` — verdicts with every channel kept.
    pub const DETECTOR_WINDOWS_CLEAN: usize = 14;
    /// `detector.windows_multipath` — verdicts with multipath-corrupted
    /// channels suppressed.
    pub const DETECTOR_WINDOWS_MULTIPATH: usize = 15;
    /// `detector.windows_moving` — verdicts rejecting the window for
    /// nonlinearity (tag motion).
    pub const DETECTOR_WINDOWS_MOVING: usize = 16;
    /// `detector.channels_rejected` — channels dropped across antennas by
    /// the robust fits in multipath-suppressed windows.
    pub const DETECTOR_CHANNELS_REJECTED: usize = 17;
    /// `material.features_extracted` — material feature vectors built.
    pub const MATERIAL_FEATURES_EXTRACTED: usize = 18;
    /// `batch.tags` — tags submitted to the batch engine.
    pub const BATCH_TAGS: usize = 19;
    /// `batch.workers` — worker threads of the most recent batch (gauge;
    /// merges as max).
    pub const BATCH_WORKERS: usize = 20;
    /// `sense.latency_us` — end-to-end sensing latency histogram, µs.
    pub const SENSE_LATENCY_US: usize = 21;
    /// `solve.latency_us` — joint-solve latency histogram, µs.
    pub const SOLVE_LATENCY_US: usize = 22;
    /// `solver.seeds_total` — multi-start position seeds considered by the
    /// coarse-to-fine scan (2-D and 3-D).
    pub const SOLVER_SEEDS_TOTAL: usize = 23;
    /// `solver.seeds_refined` — seeds that received a stage-1 LM
    /// refinement.
    pub const SOLVER_SEEDS_REFINED: usize = 24;
    /// `solver.seeds_pruned` — seeds skipped by the coarse ranking / early
    /// exit (never LM-refined).
    pub const SOLVER_SEEDS_PRUNED: usize = 25;
    /// `solver.warm_start_hits` — warm-started refinements accepted by the
    /// validation gate (multi-start scan skipped).
    pub const SOLVER_WARM_HITS: usize = 26;
    /// `solver.warm_start_misses` — warm-start attempts rejected by the
    /// gate (fell back to the multi-start scan).
    pub const SOLVER_WARM_MISSES: usize = 27;
    /// `frontend.windows` — per-antenna front-end extractions attempted.
    pub const FRONTEND_WINDOWS: usize = 28;
    /// `frontend.reads` — raw reader reports consumed by the front end.
    pub const FRONTEND_READS: usize = 29;
    /// `frontend.channels` — clean channel observations produced.
    pub const FRONTEND_CHANNELS: usize = 30;
    /// `frontend.trig_table_reads` — per-read phasors served by the
    /// quantized phase-code tables.
    pub const FRONTEND_TRIG_TABLE_READS: usize = 31;
    /// `frontend.trig_poly_reads` — per-read phasors served by the
    /// bounded-error polynomial backend.
    pub const FRONTEND_TRIG_POLY_READS: usize = 32;
    /// `frontend.trig_libm_reads` — per-read phasors served by libm
    /// (explicit backend or codeless-read fallback).
    pub const FRONTEND_TRIG_LIBM_READS: usize = 33;
    /// `frontend.trig_recurrence_reads` — per-read phasors served by the
    /// streaming phasor-recurrence backend (complex rotations).
    pub const FRONTEND_TRIG_RECURRENCE_READS: usize = 34;
    /// `streaming.updates` — reads pushed into streaming windows
    /// (accumulator updates).
    pub const STREAMING_UPDATES: usize = 35;
    /// `streaming.downdates` — reads expired out of streaming windows
    /// (accumulator downdates).
    pub const STREAMING_DOWNDATES: usize = 36;
    /// `streaming.refit_fallbacks` — streaming advances that took the
    /// full batch recompute because downdating would lose precision.
    pub const STREAMING_REFIT_FALLBACKS: usize = 37;
    /// `streaming.drift_ops` — update/downdate operations absorbed by
    /// drifted channels (pressure against the drift budget).
    pub const STREAMING_DRIFT_OPS: usize = 38;
    /// `streaming.rebuilds` — exact per-channel sum re-accumulations.
    pub const STREAMING_REBUILDS: usize = 39;
    /// `streaming.advance_latency_us` — `StreamingSession::advance`
    /// latency histogram, µs.
    pub const STREAMING_ADVANCE_LATENCY_US: usize = 40;
    /// `streaming.extract_latency_us` — per-antenna streaming-window
    /// extraction latency histogram, µs.
    pub const STREAMING_EXTRACT_LATENCY_US: usize = 41;
    /// `streaming.stale_tags` — tags whose last telemetry window produced
    /// no estimate (gauge; set by the replay/serve driver).
    pub const STREAMING_STALE_TAGS: usize = 42;
    /// `solver.lane_seed_blocks` — 4-seed blocks scored by the wide
    /// coarse-ranking lanes (2-D and 3-D).
    pub const SOLVER_LANE_SEED_BLOCKS: usize = 43;
    /// `solver.lane_row_blocks` — 4-row antenna blocks evaluated by the
    /// wide residual/Jacobian lanes of the LM cores.
    pub const SOLVER_LANE_ROW_BLOCKS: usize = 44;
    /// `solver.lane_scalar_rows` — seeds/rows that fell through to the
    /// scalar remainder or the scalar escape hatch.
    pub const SOLVER_LANE_SCALAR_ROWS: usize = 45;
    /// `solver.lambda_retries` — damped-step λ retries beyond the first
    /// attempt of each LM iteration (the re-solve tax the cached step
    /// solver cuts to O(P²)).
    pub const SOLVER_LAMBDA_RETRIES: usize = 46;
    /// `solver.chol_failures` — damped normal equations rejected as
    /// non-positive-definite (factorization failures that escalate λ).
    pub const SOLVER_CHOL_FAILURES: usize = 47;
    /// `solver.step_cached_solves` — O(P²) λ-resolves served from the
    /// tridiagonal step cache (`StepSolver::Cached` only).
    pub const SOLVER_STEP_CACHED_SOLVES: usize = 48;
}

#[cfg(feature = "obs")]
mod enabled {
    use crate::detector::MobilityVerdict;
    use rfp_obs::{recorder, MetricDef, Recorder};

    /// Log-spaced µs buckets covering sub-100 µs solves up to 100 ms+
    /// end-to-end windows.
    const LATENCY_BUCKETS_US: &[f64] = &[
        50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0, 20_000.0, 50_000.0,
        100_000.0,
    ];

    /// Finer log-spaced µs buckets for the incremental streaming paths,
    /// whose steady-state advances sit well under the batch pipeline's
    /// 50 µs first bucket.
    const STREAMING_LATENCY_BUCKETS_US: &[f64] = &[
        5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0, 10_000.0,
    ];

    /// The pipeline's metric descriptor table; entry *i* is the metric
    /// addressed by index *i* in [`super::id`].
    pub static METRICS: &[MetricDef] = &[
        MetricDef::counter("solver2d.solves", "completed 2-D joint solves"),
        MetricDef::counter("solver2d.iterations", "LM iterations across all 2-D starts"),
        MetricDef::counter("solver2d.residual_evals", "residual-vector evaluations (2-D)"),
        MetricDef::counter("solver2d.jacobian_evals", "Jacobian evaluations (2-D)"),
        MetricDef::counter("solver3d.solves", "completed 3-D joint solves"),
        MetricDef::counter("solver3d.iterations", "LM iterations across all 3-D starts"),
        MetricDef::counter("solver3d.residual_evals", "residual-vector evaluations (3-D)"),
        MetricDef::counter("solver3d.jacobian_evals", "Jacobian evaluations (3-D)"),
        MetricDef::counter("pipeline.windows_total", "sensing windows attempted"),
        MetricDef::counter("pipeline.windows_ok", "windows that produced an estimate"),
        MetricDef::counter(
            "pipeline.windows_moving_rejected",
            "windows discarded for tag motion",
        ),
        MetricDef::counter(
            "pipeline.windows_too_few_obs",
            "windows with too few usable antenna observations",
        ),
        MetricDef::counter("pipeline.extract_failures", "per-antenna extraction failures"),
        MetricDef::counter(
            "pipeline.rounds_skipped",
            "hop rounds skipped by the multi-round path",
        ),
        MetricDef::counter("detector.windows_clean", "verdicts with every channel kept"),
        MetricDef::counter(
            "detector.windows_multipath",
            "verdicts with multipath channels suppressed",
        ),
        MetricDef::counter("detector.windows_moving", "verdicts rejecting the window"),
        MetricDef::counter(
            "detector.channels_rejected",
            "channels dropped by the robust per-antenna fits",
        ),
        MetricDef::counter("material.features_extracted", "material feature vectors built"),
        MetricDef::counter("batch.tags", "tags submitted to the batch engine"),
        MetricDef::gauge("batch.workers", "worker threads of the most recent batch"),
        MetricDef::histogram(
            "sense.latency_us",
            "end-to-end sensing latency, microseconds",
            LATENCY_BUCKETS_US,
        ),
        MetricDef::histogram(
            "solve.latency_us",
            "joint-solve latency, microseconds",
            LATENCY_BUCKETS_US,
        ),
        MetricDef::counter("solver.seeds_total", "multi-start seeds considered"),
        MetricDef::counter("solver.seeds_refined", "seeds given stage-1 LM refinement"),
        MetricDef::counter("solver.seeds_pruned", "seeds skipped by the coarse ranking"),
        MetricDef::counter("solver.warm_start_hits", "warm starts accepted by the gate"),
        MetricDef::counter("solver.warm_start_misses", "warm starts rejected by the gate"),
        MetricDef::counter("frontend.windows", "per-antenna front-end extractions attempted"),
        MetricDef::counter("frontend.reads", "raw reader reports consumed by the front end"),
        MetricDef::counter("frontend.channels", "clean channel observations produced"),
        MetricDef::counter(
            "frontend.trig_table_reads",
            "per-read phasors served by the quantized phase-code tables",
        ),
        MetricDef::counter(
            "frontend.trig_poly_reads",
            "per-read phasors served by the bounded-error polynomial",
        ),
        MetricDef::counter(
            "frontend.trig_libm_reads",
            "per-read phasors served by libm (oracle backend or fallback)",
        ),
        MetricDef::counter(
            "frontend.trig_recurrence_reads",
            "per-read phasors served by the streaming phasor recurrence",
        ),
        MetricDef::counter("streaming.updates", "reads pushed into streaming windows"),
        MetricDef::counter("streaming.downdates", "reads expired out of streaming windows"),
        MetricDef::counter(
            "streaming.refit_fallbacks",
            "streaming advances that fell back to the full batch recompute",
        ),
        MetricDef::counter(
            "streaming.drift_ops",
            "update/downdate operations absorbed by drifted channels",
        ),
        MetricDef::counter("streaming.rebuilds", "exact per-channel sum re-accumulations"),
        MetricDef::histogram(
            "streaming.advance_latency_us",
            "streaming advance latency, microseconds",
            STREAMING_LATENCY_BUCKETS_US,
        ),
        MetricDef::histogram(
            "streaming.extract_latency_us",
            "per-antenna streaming extraction latency, microseconds",
            STREAMING_LATENCY_BUCKETS_US,
        ),
        MetricDef::gauge("streaming.stale_tags", "tags with no estimate in the last window"),
        MetricDef::counter(
            "solver.lane_seed_blocks",
            "4-seed blocks scored by the wide coarse-ranking lanes",
        ),
        MetricDef::counter(
            "solver.lane_row_blocks",
            "4-row antenna blocks evaluated by the wide residual lanes",
        ),
        MetricDef::counter(
            "solver.lane_scalar_rows",
            "seeds/rows handled by the scalar remainder or escape hatch",
        ),
        MetricDef::counter(
            "solver.lambda_retries",
            "damped-step lambda retries beyond each iteration's first attempt",
        ),
        MetricDef::counter(
            "solver.chol_failures",
            "damped normal equations rejected as non-positive-definite",
        ),
        MetricDef::counter(
            "solver.step_cached_solves",
            "O(P^2) lambda-resolves served from the tridiagonal step cache",
        ),
    ];

    pub use recorder::{counter_add, gauge_set, journal_record, journal_tick, observe_value};

    /// Whether a recorder is installed on this thread.
    #[inline]
    pub fn active() -> bool {
        recorder::active()
    }

    /// The streaming engine's watchdog: threshold rules over windowed
    /// [`METRICS`] deltas, matched to the failure modes the streaming
    /// design contains (see DESIGN.md §8–§9).
    ///
    /// * `fallback_rate` — refit fallbacks per front-end window. The
    ///   fallback is the bit-exact escape hatch; a rising rate means the
    ///   incremental path is no longer paying for itself (degraded at 5%,
    ///   unhealthy at 25% — the bench gate's ceiling).
    /// * `rebuild_pressure` — exact sum re-accumulations per window;
    ///   rebuilds are O(window) against the advance's O(hop), so pressure
    ///   here erodes the streaming speedup (degraded at 50%, unhealthy at
    ///   2 per window).
    /// * `warm_miss_rate` — solver warm-start gate misses per attempt;
    ///   misses re-run the multi-start scan (degraded at 50%, unhealthy
    ///   at 90%).
    /// * `stale_tags` — tags whose latest window produced no estimate
    ///   (gauge set by the serve/replay driver; degraded at 1, unhealthy
    ///   at 4).
    /// * `no_estimates` — attempted windows with zero successes for 3
    ///   (degraded) / 6 (unhealthy) consecutive telemetry windows.
    ///
    /// Rate rules guard against near-idle windows with a minimum
    /// denominator, so a trickle of reads never trips a ratio.
    pub fn streaming_health() -> rfp_obs::HealthEvaluator {
        use super::id;
        rfp_obs::HealthEvaluator::new()
            .rate(rfp_obs::RateRule {
                name: "fallback_rate",
                numerators: vec![id::STREAMING_REFIT_FALLBACKS],
                denominators: vec![id::FRONTEND_WINDOWS],
                min_denominator: 8,
                degraded_at: 0.05,
                unhealthy_at: 0.25,
            })
            .rate(rfp_obs::RateRule {
                name: "rebuild_pressure",
                numerators: vec![id::STREAMING_REBUILDS],
                denominators: vec![id::FRONTEND_WINDOWS],
                min_denominator: 8,
                degraded_at: 0.5,
                unhealthy_at: 2.0,
            })
            .rate(rfp_obs::RateRule {
                name: "warm_miss_rate",
                numerators: vec![id::SOLVER_WARM_MISSES],
                denominators: vec![id::SOLVER_WARM_HITS, id::SOLVER_WARM_MISSES],
                min_denominator: 4,
                degraded_at: 0.5,
                unhealthy_at: 0.9,
            })
            .gauge(rfp_obs::GaugeRule {
                name: "stale_tags",
                gauge: id::STREAMING_STALE_TAGS,
                degraded_at: 1.0,
                unhealthy_at: 4.0,
            })
            .stall(rfp_obs::StallRule {
                name: "no_estimates",
                ok: vec![id::PIPELINE_WINDOWS_OK],
                attempted: vec![id::PIPELINE_WINDOWS_TOTAL],
                degraded_after: 3,
                unhealthy_after: 6,
            })
    }

    /// Opens the named stage span on this thread's recorder.
    #[inline]
    pub fn span(name: &'static str) -> rfp_obs::SpanGuard {
        recorder::span(name)
    }

    /// Starts timing into latency histogram `idx` (µs, recorded on drop).
    #[inline]
    pub fn time_histogram(idx: usize) -> rfp_obs::TimerGuard {
        recorder::time_histogram(idx)
    }

    /// Records one detector verdict into the `detector.*` counters.
    pub fn verdict(v: &MobilityVerdict) {
        match v {
            MobilityVerdict::Clean => counter_add(super::id::DETECTOR_WINDOWS_CLEAN, 1),
            MobilityVerdict::MultipathSuppressed { rejected_channels } => {
                counter_add(super::id::DETECTOR_WINDOWS_MULTIPATH, 1);
                counter_add(super::id::DETECTOR_CHANNELS_REJECTED, *rejected_channels as u64);
            }
            MobilityVerdict::Moving { .. } => {
                counter_add(super::id::DETECTOR_WINDOWS_MOVING, 1);
            }
        }
    }

    /// One batch worker's recording context: a fresh recorder when the
    /// coordinator thread was observing at fan-out time, nothing
    /// otherwise. The coordinator merges worker contexts back in
    /// worker-index order, keeping count-type metrics deterministic at any
    /// worker count.
    #[derive(Debug)]
    pub struct WorkerObs(Option<Recorder>);

    impl WorkerObs {
        /// A worker context; records only when `observing` (the
        /// coordinator's [`active`] at spawn time).
        pub fn new(observing: bool) -> WorkerObs {
            WorkerObs(observing.then(|| Recorder::new(METRICS)))
        }

        /// Runs `f` with this context installed on the current thread,
        /// returning the result and the (updated) context.
        pub fn run<R>(self, f: impl FnOnce() -> R) -> (R, WorkerObs) {
            match self.0 {
                Some(rec) => {
                    let (out, rec) = recorder::observe_with(rec, f);
                    (out, WorkerObs(Some(rec)))
                }
                None => (f(), WorkerObs(None)),
            }
        }

        /// Merges everything this worker recorded into the coordinator's
        /// recorder (spans graft under the coordinator's open span).
        pub fn absorb_into_current(&self) {
            if let Some(rec) = &self.0 {
                recorder::absorb(rec);
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use rfp_obs::MetricKind;

        #[test]
        fn metric_table_matches_id_constants() {
            use crate::obs::id::*;
            let by_idx = [
                (SOLVER2D_SOLVES, "solver2d.solves"),
                (SOLVER2D_ITERATIONS, "solver2d.iterations"),
                (SOLVER2D_RESIDUAL_EVALS, "solver2d.residual_evals"),
                (SOLVER2D_JACOBIAN_EVALS, "solver2d.jacobian_evals"),
                (SOLVER3D_SOLVES, "solver3d.solves"),
                (SOLVER3D_ITERATIONS, "solver3d.iterations"),
                (SOLVER3D_RESIDUAL_EVALS, "solver3d.residual_evals"),
                (SOLVER3D_JACOBIAN_EVALS, "solver3d.jacobian_evals"),
                (PIPELINE_WINDOWS_TOTAL, "pipeline.windows_total"),
                (PIPELINE_WINDOWS_OK, "pipeline.windows_ok"),
                (PIPELINE_WINDOWS_MOVING_REJECTED, "pipeline.windows_moving_rejected"),
                (PIPELINE_WINDOWS_TOO_FEW_OBS, "pipeline.windows_too_few_obs"),
                (PIPELINE_EXTRACT_FAILURES, "pipeline.extract_failures"),
                (PIPELINE_ROUNDS_SKIPPED, "pipeline.rounds_skipped"),
                (DETECTOR_WINDOWS_CLEAN, "detector.windows_clean"),
                (DETECTOR_WINDOWS_MULTIPATH, "detector.windows_multipath"),
                (DETECTOR_WINDOWS_MOVING, "detector.windows_moving"),
                (DETECTOR_CHANNELS_REJECTED, "detector.channels_rejected"),
                (MATERIAL_FEATURES_EXTRACTED, "material.features_extracted"),
                (BATCH_TAGS, "batch.tags"),
                (BATCH_WORKERS, "batch.workers"),
                (SENSE_LATENCY_US, "sense.latency_us"),
                (SOLVE_LATENCY_US, "solve.latency_us"),
                (SOLVER_SEEDS_TOTAL, "solver.seeds_total"),
                (SOLVER_SEEDS_REFINED, "solver.seeds_refined"),
                (SOLVER_SEEDS_PRUNED, "solver.seeds_pruned"),
                (SOLVER_WARM_HITS, "solver.warm_start_hits"),
                (SOLVER_WARM_MISSES, "solver.warm_start_misses"),
                (FRONTEND_WINDOWS, "frontend.windows"),
                (FRONTEND_READS, "frontend.reads"),
                (FRONTEND_CHANNELS, "frontend.channels"),
                (FRONTEND_TRIG_TABLE_READS, "frontend.trig_table_reads"),
                (FRONTEND_TRIG_POLY_READS, "frontend.trig_poly_reads"),
                (FRONTEND_TRIG_LIBM_READS, "frontend.trig_libm_reads"),
                (FRONTEND_TRIG_RECURRENCE_READS, "frontend.trig_recurrence_reads"),
                (STREAMING_UPDATES, "streaming.updates"),
                (STREAMING_DOWNDATES, "streaming.downdates"),
                (STREAMING_REFIT_FALLBACKS, "streaming.refit_fallbacks"),
                (STREAMING_DRIFT_OPS, "streaming.drift_ops"),
                (STREAMING_REBUILDS, "streaming.rebuilds"),
                (STREAMING_ADVANCE_LATENCY_US, "streaming.advance_latency_us"),
                (STREAMING_EXTRACT_LATENCY_US, "streaming.extract_latency_us"),
                (STREAMING_STALE_TAGS, "streaming.stale_tags"),
                (SOLVER_LANE_SEED_BLOCKS, "solver.lane_seed_blocks"),
                (SOLVER_LANE_ROW_BLOCKS, "solver.lane_row_blocks"),
                (SOLVER_LANE_SCALAR_ROWS, "solver.lane_scalar_rows"),
                (SOLVER_LAMBDA_RETRIES, "solver.lambda_retries"),
                (SOLVER_CHOL_FAILURES, "solver.chol_failures"),
                (SOLVER_STEP_CACHED_SOLVES, "solver.step_cached_solves"),
            ];
            assert_eq!(by_idx.len(), METRICS.len());
            for (idx, name) in by_idx {
                assert_eq!(METRICS[idx].name, name, "index {idx}");
            }
            assert_eq!(METRICS[crate::obs::id::BATCH_WORKERS].kind, MetricKind::Gauge);
            assert_eq!(METRICS[crate::obs::id::SENSE_LATENCY_US].kind, MetricKind::Histogram);
            assert_eq!(
                METRICS[crate::obs::id::STREAMING_ADVANCE_LATENCY_US].kind,
                MetricKind::Histogram
            );
            assert_eq!(METRICS[crate::obs::id::STREAMING_STALE_TAGS].kind, MetricKind::Gauge);
        }

        #[test]
        fn streaming_health_rules_fold_over_metric_deltas() {
            use crate::obs::id::*;
            let mut ev = streaming_health();
            // A clean window: plenty of work, no fallbacks.
            let ((), rec) = recorder::observe(METRICS, || {
                counter_add(FRONTEND_WINDOWS, 100);
                counter_add(PIPELINE_WINDOWS_TOTAL, 10);
                counter_add(PIPELINE_WINDOWS_OK, 10);
            });
            let report = ev.observe(&rec.metrics.snapshot());
            assert_eq!(report.verdict, rfp_obs::Health::Healthy);

            // A degrading window: 10% fallback rate.
            let ((), rec) = recorder::observe(METRICS, || {
                counter_add(FRONTEND_WINDOWS, 100);
                counter_add(STREAMING_REFIT_FALLBACKS, 10);
                counter_add(PIPELINE_WINDOWS_TOTAL, 10);
                counter_add(PIPELINE_WINDOWS_OK, 10);
            });
            let report = ev.observe(&rec.metrics.snapshot());
            assert_eq!(report.verdict, rfp_obs::Health::Degraded);
            assert_eq!(report.reasons[0].rule, "fallback_rate");
        }

        #[test]
        fn verdict_routes_to_the_right_counters() {
            use crate::obs::id::*;
            let ((), rec) = recorder::observe(METRICS, || {
                verdict(&MobilityVerdict::Clean);
                verdict(&MobilityVerdict::MultipathSuppressed { rejected_channels: 7 });
                verdict(&MobilityVerdict::Moving { worst_residual_std: 0.9 });
            });
            assert_eq!(rec.metrics.counter(DETECTOR_WINDOWS_CLEAN), 1);
            assert_eq!(rec.metrics.counter(DETECTOR_WINDOWS_MULTIPATH), 1);
            assert_eq!(rec.metrics.counter(DETECTOR_CHANNELS_REJECTED), 7);
            assert_eq!(rec.metrics.counter(DETECTOR_WINDOWS_MOVING), 1);
        }
    }
}

#[cfg(not(feature = "obs"))]
mod disabled {
    use crate::detector::MobilityVerdict;

    /// Inert stand-in for the recorder's span guard.
    #[derive(Debug)]
    pub struct SpanGuard;

    /// Inert stand-in for the recorder's histogram timer guard.
    #[derive(Debug)]
    pub struct TimerGuard;

    /// Always `false` without the `obs` feature, so guarded snapshot code
    /// is dead and folds away.
    #[inline(always)]
    pub const fn active() -> bool {
        false
    }

    /// No-op counter probe.
    #[inline(always)]
    pub fn counter_add(_idx: usize, _n: u64) {}

    /// No-op gauge probe.
    #[inline(always)]
    pub fn gauge_set(_idx: usize, _v: f64) {}

    /// No-op histogram probe.
    #[inline(always)]
    pub fn observe_value(_idx: usize, _v: f64) {}

    /// No-op journal event probe.
    #[inline(always)]
    pub fn journal_record(_kind: &'static str, _key: u64, _value: u64) {}

    /// No-op journal clock probe.
    #[inline(always)]
    pub fn journal_tick(_tick: u64) {}

    /// No-op span probe.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// No-op histogram timer probe.
    #[inline(always)]
    pub fn time_histogram(_idx: usize) -> TimerGuard {
        TimerGuard
    }

    /// No-op verdict probe.
    #[inline(always)]
    pub fn verdict(_v: &MobilityVerdict) {}

    /// Inert stand-in for a batch worker's recording context.
    #[derive(Debug)]
    pub struct WorkerObs;

    impl WorkerObs {
        /// Inert context.
        #[inline(always)]
        pub fn new(_observing: bool) -> WorkerObs {
            WorkerObs
        }

        /// Runs `f` directly.
        #[inline(always)]
        pub fn run<R>(self, f: impl FnOnce() -> R) -> (R, WorkerObs) {
            (f(), WorkerObs)
        }

        /// No-op merge.
        #[inline(always)]
        pub fn absorb_into_current(&self) {}
    }
}

#[cfg(feature = "obs")]
pub use enabled::*;

#[cfg(not(feature = "obs"))]
pub use disabled::*;
