//! Antenna poses and polarization frames.
//!
//! A circularly-polarized reader antenna is described by its position, its
//! boresight (the direction it faces) and its *roll* about the boresight.
//! The paper's polarization model (Eq. 4) is written in terms of the
//! antenna's horizontal and vertical unit vectors `u` and `v`, both
//! perpendicular to the boresight; rolling the antenna rotates that frame.
//!
//! The roll matters: the orientation intercept `θ_orient` observed at antenna
//! `i` depends on the tag's dipole direction *expressed in antenna i's
//! `(u, v)` frame*. If every antenna were mounted with the same boresight and
//! roll, all antennas would observe the same `θ_orient` and the tag
//! orientation would be unobservable from intercept differences. RF-Prism
//! therefore mounts its antennas with distinct rolls (see `rfp-sim`'s
//! standard deployment, 0°/45°/90°).

use crate::{Vec2, Vec3};

/// The pose of a circularly-polarized reader antenna.
///
/// Invariants (maintained by the constructors): `boresight`, `u` and `v` are
/// unit vectors forming a right-handed orthonormal triad `u × v = boresight`.
///
/// # Example
///
/// ```
/// use rfp_geom::{AntennaPose, Vec3};
/// let pose = AntennaPose::looking_at(
///     Vec3::new(0.0, 0.0, 1.0),
///     Vec3::new(0.0, 2.0, 1.0),
///     0.0,
/// );
/// assert!((pose.boresight().dot(Vec3::Y) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AntennaPose {
    position: Vec3,
    boresight: Vec3,
    u: Vec3,
    v: Vec3,
    roll: f64,
}

impl AntennaPose {
    /// Creates a pose at `position` looking toward `target`, rolled by
    /// `roll` radians about the boresight.
    ///
    /// The un-rolled horizontal axis `u` is chosen perpendicular to both the
    /// world vertical (+z) and the boresight; when the boresight is within
    /// ~0.6° of vertical, +y is used as the reference instead so the frame
    /// stays well-defined.
    ///
    /// # Panics
    ///
    /// Panics if `position == target` (no boresight direction exists).
    pub fn looking_at(position: Vec3, target: Vec3, roll: f64) -> Self {
        let d = target - position;
        assert!(d.norm() > 0.0, "antenna cannot look at its own position");
        Self::with_boresight(position, d.normalized(), roll)
    }

    /// Creates a pose from an explicit (unit) boresight direction.
    ///
    /// # Panics
    ///
    /// Panics if `boresight` is not normalized to within 1e-6.
    pub fn with_boresight(position: Vec3, boresight: Vec3, roll: f64) -> Self {
        assert!(
            (boresight.norm() - 1.0).abs() < 1e-6,
            "boresight must be a unit vector"
        );
        let reference = if boresight.cross(Vec3::Z).norm() < 1e-4 {
            Vec3::Y
        } else {
            Vec3::Z
        };
        let u0 = reference.cross(boresight).normalized();
        let v0 = boresight.cross(u0);
        let u = u0.rotated_about(boresight, roll);
        let v = v0.rotated_about(boresight, roll);
        AntennaPose { position, boresight, u, v, roll }
    }

    /// Convenience constructor for the planar (2-D) experiments: antenna at
    /// `position` (a point in the z=0 plane), looking at `target`, rolled by
    /// `roll`.
    pub fn planar(position: Vec2, target: Vec2, roll: f64) -> Self {
        Self::looking_at(position.with_z(0.0), target.with_z(0.0), roll)
    }

    /// Antenna position in metres.
    #[inline]
    pub fn position(&self) -> Vec3 {
        self.position
    }

    /// Unit boresight direction.
    #[inline]
    pub fn boresight(&self) -> Vec3 {
        self.boresight
    }

    /// Horizontal polarization axis `u` (unit).
    #[inline]
    pub fn u(&self) -> Vec3 {
        self.u
    }

    /// Vertical polarization axis `v` (unit).
    #[inline]
    pub fn v(&self) -> Vec3 {
        self.v
    }

    /// Roll about the boresight, radians.
    #[inline]
    pub fn roll(&self) -> f64 {
        self.roll
    }

    /// Euclidean distance from the antenna to a point.
    #[inline]
    pub fn distance_to(&self, point: Vec3) -> f64 {
        self.position.distance(point)
    }

    /// Returns a copy of this pose with a different roll.
    pub fn with_roll(&self, roll: f64) -> Self {
        Self::with_boresight(self.position, self.boresight, roll)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    fn assert_orthonormal(p: &AntennaPose) {
        assert!((p.u().norm() - 1.0).abs() < 1e-12);
        assert!((p.v().norm() - 1.0).abs() < 1e-12);
        assert!((p.boresight().norm() - 1.0).abs() < 1e-12);
        assert!(p.u().dot(p.v()).abs() < 1e-12);
        assert!(p.u().dot(p.boresight()).abs() < 1e-12);
        assert!(p.v().dot(p.boresight()).abs() < 1e-12);
        // Right-handed: u × v = boresight.
        assert!(p.u().cross(p.v()).distance(p.boresight()) < 1e-12);
    }

    #[test]
    fn looking_at_frame_is_orthonormal() {
        let p = AntennaPose::looking_at(
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(1.0, 2.0, 0.5),
            0.3,
        );
        assert_orthonormal(&p);
    }

    #[test]
    fn zero_roll_u_is_horizontal() {
        let p = AntennaPose::looking_at(Vec3::ZERO, Vec3::Y, 0.0);
        assert!(p.u().z.abs() < 1e-12, "u must lie in the horizontal plane");
        assert!(p.v().distance(Vec3::Z) < 1e-12, "v points up for a level antenna");
    }

    #[test]
    fn roll_rotates_frame() {
        let p0 = AntennaPose::looking_at(Vec3::ZERO, Vec3::Y, 0.0);
        let p90 = p0.with_roll(FRAC_PI_2);
        assert_orthonormal(&p90);
        // Rolling by 90° maps u onto v.
        assert!(p90.u().distance(p0.v()) < 1e-12);
        assert_eq!(p90.roll(), FRAC_PI_2);
    }

    #[test]
    fn vertical_boresight_is_well_defined() {
        let p = AntennaPose::with_boresight(Vec3::ZERO, Vec3::Z, 0.0);
        assert_orthonormal(&p);
        let q = AntennaPose::with_boresight(Vec3::ZERO, -Vec3::Z, 0.0);
        assert_orthonormal(&q);
    }

    #[test]
    fn planar_constructor() {
        let p = AntennaPose::planar(Vec2::new(0.5, 0.0), Vec2::new(0.5, 2.0), 0.0);
        assert_eq!(p.position(), Vec3::new(0.5, 0.0, 0.0));
        assert!(p.boresight().distance(Vec3::Y) < 1e-12);
        assert!((p.distance_to(Vec3::new(0.5, 2.0, 0.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn looking_at_self_panics() {
        let _ = AntennaPose::looking_at(Vec3::ZERO, Vec3::ZERO, 0.0);
    }

    #[test]
    #[should_panic]
    fn non_unit_boresight_panics() {
        let _ = AntennaPose::with_boresight(Vec3::ZERO, Vec3::new(0.0, 2.0, 0.0), 0.0);
    }
}
