//! Random forest: bagged CART trees with per-split feature subsampling.
//!
//! An extension beyond the paper's three classifiers: the decision tree
//! already wins Fig. 13, and a forest is the standard variance-reduction
//! on top of it — each tree trains on a bootstrap resample and only sees a
//! random subset of features at each split, so the ensemble smooths the
//! single tree's axis-aligned brittleness.

use crate::dataset::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use crate::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyper-parameters for [`RandomForest::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree hyper-parameters.
    pub tree: TreeConfig,
    /// Features sampled per tree (0 = √d, the usual default).
    pub features_per_tree: usize,
    /// Bootstrap sample size as a fraction of the training set.
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            trees: 25,
            tree: TreeConfig::default(),
            features_per_tree: 0,
            sample_fraction: 1.0,
            seed: 0xf0_4e57,
        }
    }
}

/// A fitted random forest.
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, forest::{RandomForest, ForestConfig}, Classifier};
/// let mut ds = Dataset::new(2);
/// for i in 0..40 {
///     let x = i as f64 / 20.0 - 1.0;
///     ds.push(vec![x, -x], usize::from(x > 0.0));
/// }
/// let rf = RandomForest::fit(&ds, &ForestConfig::default());
/// assert_eq!(rf.predict(&[-0.7, 0.7]), 0);
/// assert_eq!(rf.predict(&[0.7, -0.7]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RandomForest {
    /// `(feature_indices, tree)` per member: each tree sees a projected
    /// feature space.
    members: Vec<(Vec<usize>, DecisionTree)>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForest {
    /// Trains `config.trees` bagged trees.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty or `config.trees == 0`.
    pub fn fit(train: &Dataset, config: &ForestConfig) -> Self {
        assert!(!train.is_empty(), "empty training set");
        assert!(config.trees > 0, "need at least one tree");
        let n = train.len();
        let d = train.feature_dim().expect("nonempty");
        let per_tree = if config.features_per_tree == 0 {
            ((d as f64).sqrt().round() as usize).clamp(1, d)
        } else {
            config.features_per_tree.min(d)
        };
        let sample_n = ((n as f64 * config.sample_fraction).round() as usize).max(1);
        let mut rng = StdRng::seed_from_u64(config.seed);

        let mut members = Vec::with_capacity(config.trees);
        for _ in 0..config.trees {
            // Feature subset for this tree.
            let mut features: Vec<usize> = (0..d).collect();
            for i in (1..d).rev() {
                features.swap(i, rng.gen_range(0..=i));
            }
            features.truncate(per_tree);
            features.sort_unstable();

            // Bootstrap resample projected onto the feature subset.
            let mut boot = Dataset::new(train.n_classes());
            for _ in 0..sample_n {
                let (f, l) = train.sample(rng.gen_range(0..n));
                boot.push(features.iter().map(|&j| f[j]).collect(), l);
            }
            // A bootstrap can be single-class; the tree handles that (one
            // leaf).
            members.push((features, DecisionTree::fit(&boot, &config.tree)));
        }
        RandomForest { members, n_classes: train.n_classes(), n_features: d }
    }

    /// Number of trees.
    pub fn tree_count(&self) -> usize {
        self.members.len()
    }

    /// Per-class vote fractions for one feature vector.
    pub fn predict_proba(&self, features: &[f64]) -> Vec<f64> {
        assert_eq!(features.len(), self.n_features, "feature dimension mismatch");
        let mut votes = vec![0.0f64; self.n_classes];
        for (idx, tree) in &self.members {
            let projected: Vec<f64> = idx.iter().map(|&j| features[j]).collect();
            votes[tree.predict(&projected)] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        for v in &mut votes {
            *v /= total;
        }
        votes
    }
}

impl Classifier for RandomForest {
    fn predict(&self, features: &[f64]) -> usize {
        let p = self.predict_proba(features);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite votes"))
            .map(|(i, _)| i)
            .expect("at least one class")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, spread: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(3);
        let centres = [(0.0, 0.0, 0.0), (3.0, 0.0, 1.0), (0.0, 3.0, -1.0)];
        for (c, &(cx, cy, cz)) in centres.iter().enumerate() {
            for _ in 0..n {
                ds.push(
                    vec![
                        cx + rng.gen_range(-spread..spread),
                        cy + rng.gen_range(-spread..spread),
                        cz + rng.gen_range(-spread..spread),
                    ],
                    c,
                );
            }
        }
        ds
    }

    #[test]
    fn separates_blobs() {
        let ds = blobs(40, 0.8, 1);
        let rf = RandomForest::fit(&ds, &ForestConfig::default());
        assert_eq!(rf.tree_count(), 25);
        assert_eq!(rf.predict(&[0.0, 0.0, 0.0]), 0);
        assert_eq!(rf.predict(&[3.0, 0.0, 1.0]), 1);
        assert_eq!(rf.predict(&[0.0, 3.0, -1.0]), 2);
    }

    #[test]
    fn beats_or_matches_single_tree_on_noisy_data() {
        let ds = blobs(60, 1.6, 2); // heavy overlap
        let (train, test) = ds.stratified_split(0.5, 3);
        let tree = DecisionTree::fit(&train, &TreeConfig::default());
        let rf = RandomForest::fit(&train, &ForestConfig::default());
        let acc = |preds: Vec<usize>| crate::metrics::accuracy(test.labels(), &preds);
        let tree_acc = acc(tree.predict_batch(test.features()));
        let rf_acc = acc(rf.predict_batch(test.features()));
        assert!(
            rf_acc + 0.05 >= tree_acc,
            "forest {rf_acc} should not lose badly to tree {tree_acc}"
        );
    }

    #[test]
    fn probabilities_sum_to_one() {
        let ds = blobs(20, 0.5, 4);
        let rf = RandomForest::fit(&ds, &ForestConfig { trees: 7, ..Default::default() });
        let p = rf.predict_proba(&[1.0, 1.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic_per_seed() {
        let ds = blobs(20, 1.0, 5);
        let a = RandomForest::fit(&ds, &ForestConfig::default());
        let b = RandomForest::fit(&ds, &ForestConfig::default());
        let q = vec![vec![1.5, 1.5, 0.2], vec![0.2, 2.4, -0.6]];
        assert_eq!(a.predict_batch(&q), b.predict_batch(&q));
    }

    #[test]
    fn feature_subsampling_respected() {
        let ds = blobs(15, 0.5, 6);
        let rf = RandomForest::fit(
            &ds,
            &ForestConfig { features_per_tree: 1, trees: 5, ..Default::default() },
        );
        // Still functional with single-feature trees.
        let p = rf.predict_proba(&[0.0, 0.0, 0.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_trees_panics() {
        let ds = blobs(5, 0.5, 7);
        let _ = RandomForest::fit(&ds, &ForestConfig { trees: 0, ..Default::default() });
    }
}
