//! Property suite pinning the workspace front-end kernels to the frozen
//! pre-rework implementations in [`rfp_dsp::reference`].
//!
//! The public allocating APIs (`preprocess_reads`, `theil_sen`,
//! `huber_line_fit`, …) delegate to the workspace kernels, so comparing
//! them against the reference module exercises the optimized paths while
//! using a genuinely independent oracle. Everything except the robust fit
//! is required to be **bit-identical** (same summation order, same
//! order-statistic selection); the robust fit's incremental
//! downdated-sums refit is algebraically equal but re-associates the
//! sums, so it gets a tight tolerance with an exactly-equal inlier mask.

use proptest::prelude::*;
use rfp_dsp::linfit::{ols, theil_sen, weighted_ols};
use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig, RawRead};
use rfp_dsp::reference;
use rfp_dsp::robust::{huber_line_fit, robust_line_fit, RobustFitConfig};
use rfp_dsp::trig::{self, TrigProvider};
use rfp_dsp::FrontEndWorkspace;

/// Read sets covering the degenerate shapes the front end must survive:
/// sparse channels (below `min_reads`), single-read channels, repeated
/// identical phases (zero spread), and channel indices far above the
/// dense-slot range.
fn arb_reads() -> impl Strategy<Value = Vec<RawRead>> {
    proptest::collection::vec(
        (0usize..30, 0.0f64..std::f64::consts::TAU, -80.0f64..-30.0, 0u8..2),
        0..120,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .enumerate()
            .map(|(i, (mut ch, phase, rssi, sparse))| {
                if sparse == 1 {
                    // A few channels land way outside the dense range.
                    ch += 900;
                }
                RawRead {
                    channel: ch,
                    frequency_hz: 902.75e6 + ch as f64 * 0.5e6,
                    phase,
                    rssi_dbm: rssi,
                    timestamp_s: i as f64 * 0.01,
                    phase_code: None,
                }
            })
            .collect()
    })
}

/// Snaps every read of `reads` onto the reader's 12-bit grid, attaching
/// the phase codes — the shape real quantized reader data arrives in.
fn quantized(reads: &[RawRead]) -> Vec<RawRead> {
    reads
        .iter()
        .map(|r| {
            let lsb = trig::PHASE_LSB_RAD;
            let phase =
                rfp_geom::angle::wrap_tau((r.phase / lsb).round() * lsb);
            RawRead { phase, phase_code: trig::code_for_phase(phase), ..*r }
        })
        .collect()
}

/// Arbitrary fit data with occasional duplicate x values (zero-dx slope
/// pairs) and occasional exactly-repeated y values.
fn arb_fit_data() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    proptest::collection::vec((0i32..40, -50.0f64..50.0), 2..60).prop_map(|pts| {
        let xs: Vec<f64> = pts.iter().map(|&(xi, _)| xi as f64 * 0.37).collect();
        let ys: Vec<f64> = pts.iter().map(|&(_, y)| y).collect();
        (xs, ys)
    })
}

proptest! {
    #[test]
    fn preprocess_matches_reference_exactly(
        reads in arb_reads(),
        pi_jumps in proptest::bool::ANY,
        min_reads in 0usize..3,
        quantize in proptest::bool::ANY,
        use_libm in proptest::bool::ANY,
    ) {
        // Table (the default) must be bit-identical to the reference on
        // both codeless reads (libm fallback) and quantized, code-carrying
        // reads (exact table lookups); Libm trivially so.
        let reads = if quantize { quantized(&reads) } else { reads };
        let config = PreprocessConfig {
            correct_pi_jumps: pi_jumps,
            min_reads_per_channel: min_reads,
            trig: if use_libm { TrigProvider::Libm } else { TrigProvider::Table },
        };
        let expected = reference::preprocess_reads(&reads, &config);
        let actual = preprocess_reads(&reads, &config);
        // Bit-identical including the error case: `==` on f64 fields.
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn workspace_carries_no_state_between_calls(
        first in arb_reads(),
        second in arb_reads(),
    ) {
        let config = PreprocessConfig::default();
        let mut reused = FrontEndWorkspace::default();
        let mut out = Vec::new();
        let _ = rfp_dsp::preprocess_reads_with(&mut reused, &first, &config, &mut out);
        let reused_result =
            rfp_dsp::preprocess_reads_with(&mut reused, &second, &config, &mut out)
                .map(|()| out.clone());

        let mut fresh = FrontEndWorkspace::default();
        let mut fresh_out = Vec::new();
        let fresh_result =
            rfp_dsp::preprocess_reads_with(&mut fresh, &second, &config, &mut fresh_out)
                .map(|()| fresh_out.clone());
        prop_assert_eq!(reused_result, fresh_result);
    }

    #[test]
    fn ols_matches_reference_exactly(data in arb_fit_data()) {
        let (xs, ys) = data;
        prop_assert_eq!(ols(&xs, &ys), reference::ols(&xs, &ys));
    }

    #[test]
    fn weighted_ols_matches_reference_exactly(
        data in arb_fit_data(),
        wseed in 0u64..1000,
    ) {
        let (xs, ys) = data;
        let weights: Vec<f64> = (0..xs.len())
            .map(|i| ((i as u64 * 2654435761 + wseed) % 7) as f64)
            .collect();
        prop_assert_eq!(
            weighted_ols(&xs, &ys, &weights),
            reference::weighted_ols(&xs, &ys, &weights)
        );
    }

    #[test]
    fn theil_sen_matches_reference_exactly(data in arb_fit_data()) {
        let (xs, ys) = data;
        prop_assert_eq!(theil_sen(&xs, &ys), reference::theil_sen(&xs, &ys));
    }

    #[test]
    fn huber_matches_reference_exactly(
        data in arb_fit_data(),
        delta in 0.1f64..5.0,
        iterations in 1usize..6,
    ) {
        let (xs, ys) = data;
        prop_assert_eq!(
            huber_line_fit(&xs, &ys, delta, iterations),
            reference::huber_line_fit(&xs, &ys, delta, iterations)
        );
    }

    #[test]
    fn degenerate_channels_match_reference_for_every_backend(
        quantize in proptest::bool::ANY,
        pi_jumps in proptest::bool::ANY,
    ) {
        // The fixed degenerate shapes below (dropped slots, single-read
        // channels, identical phases, vanishing double-angle resultant)
        // run through each backend; proptest just sweeps the four
        // (quantize, π-jump) corners.
        for reads in degenerate_windows() {
            let reads = if quantize { quantized(&reads) } else { reads };
            check_backends_against_reference(&reads, pi_jumps);
        }
    }

    #[test]
    fn robust_matches_reference_with_identical_inliers(data in arb_fit_data()) {
        let (xs, ys) = data;
        let config = RobustFitConfig::default();
        let expected = reference::robust_line_fit(&xs, &ys, &config);
        let actual = robust_line_fit(&xs, &ys, &config);
        match (actual, expected) {
            (Ok(a), Ok(e)) => {
                // The incremental downdated refit re-associates the OLS
                // sums, so the fit is equal only to rounding.
                prop_assert!((a.fit.slope - e.fit.slope).abs()
                    <= 1e-9 * (1.0 + e.fit.slope.abs()));
                prop_assert!((a.fit.intercept - e.fit.intercept).abs()
                    <= 1e-9 * (1.0 + e.fit.intercept.abs()));
                prop_assert_eq!(a.inliers, e.inliers);
                prop_assert_eq!(a.iterations, e.iterations);
            }
            (a, e) => prop_assert_eq!(a.is_err(), e.is_err()),
        }
    }
}

/// One raw read with the given channel and phase (codeless; `quantized`
/// snaps it onto the grid where needed).
fn plain_read(channel: usize, phase: f64) -> RawRead {
    RawRead {
        channel,
        frequency_hz: 902.75e6 + channel as f64 * 0.5e6,
        phase: rfp_geom::angle::wrap_tau(phase),
        rssi_dbm: -55.0,
        timestamp_s: channel as f64 * 0.2,
        phase_code: None,
    }
}

/// The degenerate channel shapes the reference oracle pins for every
/// trig backend: a dropped (below-min-reads) channel slot next to kept
/// ones, single-read channels, a channel whose reads all share one
/// identical phase (zero spread, unit resultant), and a channel whose
/// double-angle resultant vanishes (phases π/2 apart — the
/// `first_phase` fallback axis).
fn degenerate_windows() -> Vec<Vec<RawRead>> {
    vec![
        // Single-read channels only.
        vec![plain_read(0, 0.4), plain_read(1, 0.6), plain_read(2, 0.8)],
        // A thin channel (1 read) between full ones — dropped whenever
        // min_reads_per_channel is 2 (exercised below).
        vec![
            plain_read(0, 0.4),
            plain_read(0, 0.45),
            plain_read(1, 1.9),
            plain_read(2, 0.5),
            plain_read(2, 0.55),
        ],
        // All reads of every channel carry the identical phase.
        vec![
            plain_read(0, 1.234),
            plain_read(0, 1.234),
            plain_read(0, 1.234),
            plain_read(1, 1.3),
            plain_read(1, 1.3),
        ],
        // Vanishing double-angle resultant: two reads π/2 apart double to
        // antipodal phasors, forcing the first-phase fallback axis.
        vec![
            plain_read(0, 0.7),
            plain_read(0, 0.7 + std::f64::consts::FRAC_PI_2),
            plain_read(1, 0.9),
        ],
    ]
}

/// Runs one window through all three backends and both min-read settings,
/// pinning Table and Libm bitwise to the reference and Polynomial to its
/// documented tolerance with identical channel structure.
fn check_backends_against_reference(reads: &[RawRead], pi_jumps: bool) {
    for min_reads in [1usize, 2] {
        let base = PreprocessConfig {
            correct_pi_jumps: pi_jumps,
            min_reads_per_channel: min_reads,
            trig: TrigProvider::Libm,
        };
        let expected = reference::preprocess_reads(reads, &base);
        for trig_backend in [TrigProvider::Libm, TrigProvider::Table] {
            let actual =
                preprocess_reads(reads, &PreprocessConfig { trig: trig_backend, ..base });
            assert_eq!(
                actual, expected,
                "backend {trig_backend:?}, pi_jumps={pi_jumps}, min_reads={min_reads}"
            );
        }
        let poly = preprocess_reads(
            reads,
            &PreprocessConfig { trig: TrigProvider::Polynomial, ..base },
        );
        match (&poly, &expected) {
            (Ok(p), Ok(e)) => {
                assert_eq!(p.len(), e.len(), "polynomial channel mask diverged");
                for (a, b) in p.iter().zip(e) {
                    assert_eq!(a.channel, b.channel);
                    assert_eq!(a.read_count, b.read_count);
                    assert!(
                        (a.phase - b.phase).abs() < 1e-9,
                        "polynomial phase {} vs libm {} (pi_jumps={pi_jumps})",
                        a.phase,
                        b.phase
                    );
                    // spread = √(−2 ln r) is ill-conditioned at r → 1
                    // (identical-phase channels), hence the looser bound.
                    assert!((a.phase_spread - b.phase_spread).abs() < 1e-6);
                }
            }
            (p, e) => assert_eq!(p.is_err(), e.is_err()),
        }
    }
}
