//! Reader model: channel hopping schedule, dwell timing, quantization.
//!
//! Models the ImpinJ Speedway R420 used by the paper: 50-channel FCC hop
//! set, 200 ms dwell per channel, pseudo-random hop order, several tag
//! reads per dwell per antenna (the R420 time-multiplexes its four antenna
//! ports within a dwell), 12-bit phase reports and 0.5 dB RSSI reports.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rfp_phys::constants::{IMPINJ_DWELL_S, IMPINJ_PHASE_LSB_RAD, IMPINJ_RSSI_LSB_DB};
use rfp_phys::FrequencyPlan;

/// Reader configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReaderConfig {
    /// Channel plan the reader hops over.
    pub plan: FrequencyPlan,
    /// Dwell time per channel, seconds.
    pub dwell_s: f64,
    /// Reads of the target tag per channel *per antenna*.
    pub reads_per_channel: usize,
    /// Whether to quantize reported phase to the 12-bit LLRP grid.
    pub quantize_phase: bool,
    /// Whether to quantize reported RSSI to 0.5 dB.
    pub quantize_rssi: bool,
    /// Hop order: pseudo-random (true, FCC-compliant) or ascending (false).
    pub randomize_hop_order: bool,
}

impl ReaderConfig {
    /// The paper's R420 configuration.
    pub fn impinj_r420() -> Self {
        ReaderConfig {
            plan: FrequencyPlan::fcc_us(),
            dwell_s: IMPINJ_DWELL_S,
            reads_per_channel: 8,
            quantize_phase: true,
            quantize_rssi: true,
            randomize_hop_order: true,
        }
    }

    /// An idealized reader for model-validation benches: ascending hop
    /// order, no quantization.
    pub fn ideal() -> Self {
        ReaderConfig {
            plan: FrequencyPlan::fcc_us(),
            dwell_s: IMPINJ_DWELL_S,
            reads_per_channel: 8,
            quantize_phase: false,
            quantize_rssi: false,
            randomize_hop_order: false,
        }
    }

    /// Returns a copy with a different channel plan (ablation sweeps).
    pub fn with_plan(&self, plan: FrequencyPlan) -> Self {
        ReaderConfig { plan, ..self.clone() }
    }

    /// Returns a copy with a different per-channel read count.
    pub fn with_reads_per_channel(&self, reads: usize) -> Self {
        ReaderConfig { reads_per_channel: reads, ..self.clone() }
    }

    /// The sequence of channel indices for one full hop round.
    ///
    /// Pseudo-random (seeded, FCC style) when `randomize_hop_order` is set,
    /// ascending otherwise.
    pub fn hop_order(&self, seed: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.plan.channel_count()).collect();
        if self.randomize_hop_order {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x484f_5050);
            order.shuffle(&mut rng);
        }
        order
    }

    /// Total duration of one hop round, seconds (paper §VI-C: 10 s for the
    /// R420's 50 × 200 ms).
    pub fn round_duration_s(&self) -> f64 {
        self.dwell_s * self.plan.channel_count() as f64
    }

    /// Applies phase quantization if enabled.
    pub fn quantized_phase(&self, phase: f64) -> f64 {
        if self.quantize_phase {
            (phase / IMPINJ_PHASE_LSB_RAD).round() * IMPINJ_PHASE_LSB_RAD
        } else {
            phase
        }
    }

    /// Applies RSSI quantization if enabled.
    pub fn quantized_rssi(&self, rssi: f64) -> f64 {
        if self.quantize_rssi {
            (rssi / IMPINJ_RSSI_LSB_DB).round() * IMPINJ_RSSI_LSB_DB
        } else {
            rssi
        }
    }
}

impl Default for ReaderConfig {
    fn default() -> Self {
        Self::impinj_r420()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r420_round_takes_ten_seconds() {
        let cfg = ReaderConfig::impinj_r420();
        assert!((cfg.round_duration_s() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn hop_order_is_a_permutation() {
        let cfg = ReaderConfig::impinj_r420();
        let mut order = cfg.hop_order(3);
        assert_eq!(order.len(), 50);
        order.sort_unstable();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn hop_order_deterministic_per_seed_and_random_across_seeds() {
        let cfg = ReaderConfig::impinj_r420();
        assert_eq!(cfg.hop_order(1), cfg.hop_order(1));
        assert_ne!(cfg.hop_order(1), cfg.hop_order(2));
    }

    #[test]
    fn ideal_reader_hops_ascending() {
        let cfg = ReaderConfig::ideal();
        assert_eq!(cfg.hop_order(99), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn phase_quantization_grid() {
        let cfg = ReaderConfig::impinj_r420();
        let q = cfg.quantized_phase(1.0);
        assert!((q - 1.0).abs() <= IMPINJ_PHASE_LSB_RAD / 2.0 + 1e-15);
        let steps = q / IMPINJ_PHASE_LSB_RAD;
        assert!((steps - steps.round()).abs() < 1e-9);
        // Disabled on the ideal reader.
        assert_eq!(ReaderConfig::ideal().quantized_phase(1.0), 1.0);
    }

    #[test]
    fn rssi_quantization_half_db() {
        let cfg = ReaderConfig::impinj_r420();
        assert_eq!(cfg.quantized_rssi(-53.26), -53.5);
        assert_eq!(cfg.quantized_rssi(-53.24), -53.0);
    }

    #[test]
    fn with_helpers_override() {
        let cfg = ReaderConfig::impinj_r420()
            .with_plan(FrequencyPlan::fcc_us_subsampled(10))
            .with_reads_per_channel(3);
        assert_eq!(cfg.plan.channel_count(), 10);
        assert_eq!(cfg.reads_per_channel, 3);
    }
}
