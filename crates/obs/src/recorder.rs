//! The per-thread recorder: one [`Registry`] plus one [`SpanTree`],
//! installed into a thread-local slot so instrumented code never threads a
//! handle through its call graph.
//!
//! Recording is strictly opt-in: with no recorder installed every probe
//! ([`counter_add`], [`span`], …) is a thread-local load and a branch.
//! Callers that want a report wrap the workload in [`observe`]:
//!
//! ```
//! use rfp_obs::{MetricDef, recorder};
//!
//! static METRICS: &[MetricDef] = &[MetricDef::counter("work.items", "items processed")];
//!
//! let ((), rec) = recorder::observe(METRICS, || {
//!     let _stage = rfp_obs::span!("stage_a");
//!     recorder::counter_add(0, 3);
//! });
//! assert_eq!(rec.metrics.counter(0), 3);
//! assert_eq!(rec.spans.nodes()[0].name, "stage_a");
//! ```
//!
//! Worker threads each install their own recorder and hand it back to the
//! coordinator, which merges them **in worker-index order** into its own
//! ([`absorb`] / [`Recorder::merge_at_current`]) — fixed merge order plus
//! commutative counter addition is what makes multi-worker reports
//! deterministic in everything but wall-clock timings.

use crate::journal::Journal;
use crate::metrics::{MetricDef, Registry};
use crate::span::SpanTree;
use std::cell::RefCell;
use std::time::Instant;

/// A metrics registry, a span tree, and an event journal — everything one
/// thread records.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    /// Counter/gauge/histogram storage.
    pub metrics: Registry,
    /// Aggregated stage timings.
    pub spans: SpanTree,
    /// Bounded structured event ring (see [`Journal`]).
    pub journal: Journal,
}

impl Recorder {
    /// A fresh recorder over the descriptor table `defs`, with the
    /// default journal capacity.
    pub fn new(defs: &'static [MetricDef]) -> Self {
        Self::with_journal_capacity(defs, Journal::DEFAULT_CAPACITY)
    }

    /// A fresh recorder whose journal retains at most `capacity` events.
    pub fn with_journal_capacity(defs: &'static [MetricDef], capacity: usize) -> Self {
        Recorder {
            metrics: Registry::new(defs),
            spans: SpanTree::new(),
            journal: Journal::new(capacity),
        }
    }

    /// Merges another recorder produced from the same descriptor table:
    /// metrics merge per [`Registry::merge`]; the other's span forest is
    /// grafted under this recorder's innermost open span (or at top level
    /// if none is open); journal events are re-recorded in order (see
    /// [`Journal::merge`]).
    pub fn merge_at_current(&mut self, other: &Recorder) {
        self.metrics.merge(&other.metrics);
        self.spans.merge_at(self.spans.current(), &other.spans);
        self.journal.merge(&other.journal);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs `rec` as this thread's recorder, runs `f`, and returns `f`'s
/// result together with the recorder. A previously-installed recorder is
/// saved and restored, so scopes nest.
pub fn observe_with<R>(rec: Recorder, f: impl FnOnce() -> R) -> (R, Recorder) {
    let saved = CURRENT.with(|c| c.borrow_mut().replace(rec));
    let out = f();
    let rec = CURRENT.with(|c| {
        std::mem::replace(&mut *c.borrow_mut(), saved).expect("recorder still installed")
    });
    (out, rec)
}

/// [`observe_with`] against a fresh recorder over `defs`.
pub fn observe<R>(defs: &'static [MetricDef], f: impl FnOnce() -> R) -> (R, Recorder) {
    observe_with(Recorder::new(defs), f)
}

/// Whether a recorder is installed on this thread (i.e. probes record).
#[inline]
pub fn active() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Runs `f` against the installed recorder; does nothing when none is.
#[inline]
pub fn with_current<F: FnOnce(&mut Recorder)>(f: F) {
    CURRENT.with(|c| {
        if let Some(rec) = c.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Adds `n` to counter `idx` of the installed recorder, if any.
#[inline]
pub fn counter_add(idx: usize, n: u64) {
    with_current(|r| r.metrics.add(idx, n));
}

/// Sets gauge `idx` of the installed recorder, if any.
#[inline]
pub fn gauge_set(idx: usize, v: f64) {
    with_current(|r| r.metrics.set(idx, v));
}

/// Records `v` into histogram `idx` of the installed recorder, if any.
#[inline]
pub fn observe_value(idx: usize, v: f64) {
    with_current(|r| r.metrics.observe(idx, v));
}

/// Records a structured event into the installed recorder's journal, if
/// any; see [`Journal::record`].
#[inline]
pub fn journal_record(kind: &'static str, key: u64, value: u64) {
    with_current(|r| r.journal.record(kind, key, value));
}

/// Sets the tick stamped onto subsequent journal events of the installed
/// recorder, if any; see [`Journal::set_tick`].
#[inline]
pub fn journal_tick(tick: u64) {
    with_current(|r| r.journal.set_tick(tick));
}

/// Merges a worker's recorder into this thread's recorder (no-op when
/// none is installed); see [`Recorder::merge_at_current`].
pub fn absorb(other: &Recorder) {
    with_current(|r| r.merge_at_current(other));
}

/// RAII guard of one open span; created by [`span`]. Closes and credits
/// the span on drop. Inert (and free beyond one thread-local check) when
/// no recorder was installed at creation.
#[must_use = "a span guard records on drop; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when no recorder was active at creation.
    open: Option<(usize, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((idx, start)) = self.open.take() {
            let elapsed = start.elapsed();
            with_current(|r| r.spans.exit(idx, elapsed));
        }
    }
}

/// Opens span `name` on this thread's recorder and returns the guard that
/// closes it. With no recorder installed the guard is inert.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let mut open = None;
    with_current(|r| open = Some(r.spans.enter(name)));
    SpanGuard { open: open.map(|idx| (idx, Instant::now())) }
}

/// RAII guard that records its lifetime, in microseconds, into histogram
/// `idx` on drop; created by [`time_histogram`]. Inert when no recorder
/// was installed at creation.
#[must_use = "a timer guard records on drop; binding it to _ stops it immediately"]
#[derive(Debug)]
pub struct TimerGuard {
    start: Option<(usize, Instant)>,
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        if let Some((idx, start)) = self.start.take() {
            let us = start.elapsed().as_secs_f64() * 1e6;
            observe_value(idx, us);
        }
    }
}

/// Starts timing into histogram `idx` (microseconds, recorded on drop).
#[inline]
pub fn time_histogram(idx: usize) -> TimerGuard {
    let start = if active() { Some((idx, Instant::now())) } else { None };
    TimerGuard { start }
}

/// Opens a named span on the thread-local recorder, returning its RAII
/// guard — sugar for [`recorder::span`](crate::recorder::span).
///
/// ```
/// # use rfp_obs::{MetricDef, recorder};
/// # static METRICS: &[MetricDef] = &[];
/// # let (_, rec) = recorder::observe(METRICS, || {
/// let _guard = rfp_obs::span!("solve_2d");
/// # });
/// # assert_eq!(rec.spans.nodes()[0].name, "solve_2d");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::recorder::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKind;

    static DEFS: &[MetricDef] = &[
        MetricDef::counter("t.count", "counter"),
        MetricDef::histogram("t.lat", "latency", &[10.0, 100.0]),
    ];

    #[test]
    fn probes_without_recorder_are_no_ops() {
        assert!(!active());
        counter_add(0, 1);
        observe_value(1, 5.0);
        let _g = span("orphan");
        // Nothing to assert beyond "did not panic / did not record":
        let ((), rec) = observe(DEFS, || {});
        assert_eq!(rec.metrics.counter(0), 0);
        assert!(rec.spans.nodes().is_empty());
    }

    #[test]
    fn observe_scopes_nest_and_restore() {
        let ((), outer) = observe(DEFS, || {
            counter_add(0, 1);
            let ((), inner) = observe(DEFS, || counter_add(0, 10));
            assert_eq!(inner.metrics.counter(0), 10);
            counter_add(0, 2);
        });
        assert_eq!(outer.metrics.counter(0), 3);
    }

    #[test]
    fn span_guards_nest_through_the_tls() {
        let ((), rec) = observe(DEFS, || {
            let _a = span("outer");
            {
                let _b = span("inner");
            }
        });
        let mut seen = Vec::new();
        rec.spans.walk(&mut |d, n| seen.push((d, n.name, n.count)));
        assert_eq!(seen, vec![(0, "outer", 1), (1, "inner", 1)]);
    }

    #[test]
    fn timer_guard_lands_in_histogram() {
        let ((), rec) = observe(DEFS, || {
            let _t = time_histogram(1);
        });
        assert_eq!(rec.metrics.histogram(1).unwrap().count(), 1);
        assert_eq!(DEFS[1].kind, MetricKind::Histogram);
    }

    #[test]
    fn journal_probes_record_and_merge() {
        let ((), rec) = observe(DEFS, || {
            journal_tick(4);
            journal_record("refit_fallback", 2, 1);
        });
        let ev = rec.journal.events().next().unwrap();
        assert_eq!((ev.tick, ev.kind, ev.key, ev.value), (4, "refit_fallback", 2, 1));

        let ((), merged) = observe(DEFS, || absorb(&rec));
        assert_eq!(merged.journal.len(), 1);
        assert_eq!(merged.journal.events().next().unwrap().tick, 4);
    }

    #[test]
    fn absorb_merges_worker_into_current() {
        let mut worker = Recorder::new(DEFS);
        worker.metrics.add(0, 5);
        let s = worker.spans.enter("sense");
        worker.spans.exit(s, std::time::Duration::from_millis(1));
        let ((), rec) = observe(DEFS, || {
            let _batch = span("batch");
            absorb(&worker);
            absorb(&worker);
        });
        assert_eq!(rec.metrics.counter(0), 10);
        let mut seen = Vec::new();
        rec.spans.walk(&mut |d, n| seen.push((d, n.name, n.count)));
        assert_eq!(seen, vec![(0, "batch", 1), (1, "sense", 2)]);
    }
}
