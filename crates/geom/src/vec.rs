//! Plain 2-D and 3-D vectors.
//!
//! These are deliberately minimal: the workspace needs dot products, norms,
//! a cross product and planar rotation — nothing that would justify pulling
//! in a linear-algebra dependency.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector (or point) in metres.
///
/// Used for tag coordinates on the 2-D surveillance plane and for planar
/// antenna layouts.
///
/// # Example
///
/// ```
/// use rfp_geom::Vec2;
/// let p = Vec2::new(1.0, 2.0);
/// let q = Vec2::new(4.0, 6.0);
/// assert_eq!(p.distance(q), 5.0);
/// assert_eq!((q - p).norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Depth coordinate in metres.
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at angle `theta` radians from the +x axis.
    ///
    /// ```
    /// use rfp_geom::Vec2;
    /// let v = Vec2::from_angle(std::f64::consts::FRAC_PI_2);
    /// assert!((v.x).abs() < 1e-15 && (v.y - 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn from_angle(theta: f64) -> Self {
        Vec2::new(theta.cos(), theta.sin())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec2) -> f64 {
        self.x * rhs.x + self.y * rhs.y
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize a zero vector");
        self / n
    }

    /// The angle of the vector from the +x axis, in `(-π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotates the vector counter-clockwise by `theta` radians.
    #[inline]
    pub fn rotated(self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The perpendicular vector, rotated +90°.
    #[inline]
    pub fn perp(self) -> Vec2 {
        Vec2::new(-self.y, self.x)
    }

    /// Lifts the planar point into 3-D at height `z`.
    #[inline]
    pub fn with_z(self, z: f64) -> Vec3 {
        Vec3::new(self.x, self.y, z)
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4})", self.x, self.y)
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vec2> for f64 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: Vec2) -> Vec2 {
        rhs * self
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl From<(f64, f64)> for Vec2 {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vec2::new(x, y)
    }
}

impl From<Vec2> for (f64, f64) {
    #[inline]
    fn from(v: Vec2) -> Self {
        (v.x, v.y)
    }
}

/// A 3-D vector (or point) in metres.
///
/// Used for antenna poses, polarization frames and 3-D localization.
///
/// # Example
///
/// ```
/// use rfp_geom::Vec3;
/// let x = Vec3::new(1.0, 0.0, 0.0);
/// let y = Vec3::new(0.0, 1.0, 0.0);
/// assert_eq!(x.cross(y), Vec3::new(0.0, 0.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// Horizontal coordinate in metres.
    pub x: f64,
    /// Depth coordinate in metres.
    pub y: f64,
    /// Height coordinate in metres.
    pub z: f64,
}

impl Vec3 {
    /// The origin.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Unit +x.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    /// Unit +y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    /// Unit +z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Creates a vector from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Returns the unit vector in the same direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the vector is (numerically) zero.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "cannot normalize a zero vector");
        self / n
    }

    /// Projects onto the x–y plane, dropping z.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Rotates `self` about the (unit) `axis` by `theta` radians using
    /// Rodrigues' formula.
    ///
    /// `axis` must be normalized; this is asserted in debug builds.
    pub fn rotated_about(self, axis: Vec3, theta: f64) -> Vec3 {
        debug_assert!((axis.norm() - 1.0).abs() < 1e-9, "axis must be a unit vector");
        let (s, c) = theta.sin_cos();
        self * c + axis.cross(self) * s + axis * (axis.dot(self) * (1.0 - c))
    }

    /// True when every component is finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec3) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    #[inline]
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl From<(f64, f64, f64)> for Vec3 {
    #[inline]
    fn from((x, y, z): (f64, f64, f64)) -> Self {
        Vec3::new(x, y, z)
    }
}

impl From<Vec3> for (f64, f64, f64) {
    #[inline]
    fn from(v: Vec3) -> Self {
        (v.x, v.y, v.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(2.0 * a, Vec2::new(2.0, 4.0));
        assert_eq!(a / 2.0, Vec2::new(0.5, 1.0));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn vec2_dot_norm_distance() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.dot(a), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.norm_sq(), 25.0);
        assert_eq!(Vec2::ZERO.distance(a), 5.0);
    }

    #[test]
    fn vec2_rotation_and_angle() {
        let x = Vec2::new(1.0, 0.0);
        let r = x.rotated(FRAC_PI_2);
        assert!((r.x).abs() < 1e-15);
        assert!((r.y - 1.0).abs() < 1e-15);
        assert!((r.angle() - FRAC_PI_2).abs() < 1e-15);
        assert_eq!(x.perp(), Vec2::new(0.0, 1.0));
    }

    #[test]
    fn vec2_normalized_unit_norm() {
        let v = Vec2::new(5.0, -12.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn vec2_from_angle_round_trip() {
        for deg in [-170, -90, -45, 0, 30, 90, 179] {
            let theta = f64::from(deg).to_radians();
            let v = Vec2::from_angle(theta);
            assert!((v.angle() - theta).abs() < 1e-12, "deg={deg}");
        }
    }

    #[test]
    fn vec2_conversions() {
        let v: Vec2 = (1.5, 2.5).into();
        assert_eq!(v, Vec2::new(1.5, 2.5));
        let t: (f64, f64) = v.into();
        assert_eq!(t, (1.5, 2.5));
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert_eq!(a + b, Vec3::new(0.0, 2.5, 5.0));
        assert_eq!(a - b, Vec3::new(2.0, 1.5, 1.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        let mut c = a;
        c += b;
        c -= b;
        assert_eq!(c, a);
    }

    #[test]
    fn vec3_cross_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
        // Anti-commutative.
        assert_eq!(Vec3::Y.cross(Vec3::X), -Vec3::Z);
    }

    #[test]
    fn vec3_cross_is_orthogonal() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-2.0, 0.4, 1.1);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn vec3_rodrigues_rotation() {
        // Rotating +x about +z by 90° gives +y.
        let r = Vec3::X.rotated_about(Vec3::Z, FRAC_PI_2);
        assert!(r.distance(Vec3::Y) < 1e-15);
        // A full turn is the identity.
        let v = Vec3::new(0.3, -1.2, 0.7);
        let full = v.rotated_about(Vec3::new(0.0, 1.0, 0.0), 2.0 * PI);
        assert!(full.distance(v) < 1e-12);
        // Rotation preserves norm.
        let rot = v.rotated_about(Vec3::X, 1.234);
        assert!((rot.norm() - v.norm()).abs() < 1e-12);
    }

    #[test]
    fn vec3_xy_projection_and_lift() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(v.xy(), Vec2::new(1.0, 2.0));
        assert_eq!(v.xy().with_z(3.0), v);
    }

    #[test]
    fn finite_checks() {
        assert!(Vec2::new(1.0, 2.0).is_finite());
        assert!(!Vec2::new(f64::NAN, 0.0).is_finite());
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Vec2::ZERO).is_empty());
        assert!(!format!("{}", Vec3::ZERO).is_empty());
    }
}

/// The principal axes of a 2×2 symmetric covariance matrix — the 1-σ
/// uncertainty ellipse of a planar estimate.
///
/// # Example
///
/// ```
/// use rfp_geom::CovarianceEllipse;
/// // Elongated along x: σx² = 4, σy² = 1.
/// let e = CovarianceEllipse::from_covariance([[4.0, 0.0], [0.0, 1.0]]).unwrap();
/// assert!((e.semi_major - 2.0).abs() < 1e-12);
/// assert!((e.semi_minor - 1.0).abs() < 1e-12);
/// assert!(e.orientation.abs() < 1e-12); // major axis along +x
/// ```
pub mod vec_ellipse {
    /// 1-σ uncertainty ellipse parameters.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct CovarianceEllipse {
        /// 1-σ extent along the major axis (√ of the larger eigenvalue).
        pub semi_major: f64,
        /// 1-σ extent along the minor axis.
        pub semi_minor: f64,
        /// Angle of the major axis from +x, radians in `(-π/2, π/2]`.
        pub orientation: f64,
    }

    impl CovarianceEllipse {
        /// Eigen-decomposes a symmetric 2×2 covariance `[[cxx, cxy], [cxy, cyy]]`.
        ///
        /// Returns `None` if the matrix has a negative eigenvalue (not a
        /// covariance) or non-finite entries.
        pub fn from_covariance(c: [[f64; 2]; 2]) -> Option<CovarianceEllipse> {
            let (cxx, cxy, cyy) = (c[0][0], (c[0][1] + c[1][0]) / 2.0, c[1][1]);
            if !(cxx.is_finite() && cxy.is_finite() && cyy.is_finite()) {
                return None;
            }
            let trace_half = (cxx + cyy) / 2.0;
            let det = cxx * cyy - cxy * cxy;
            let disc = (trace_half * trace_half - det).max(0.0).sqrt();
            let (l1, l2) = (trace_half + disc, trace_half - disc);
            if l2 < -1e-12 {
                return None;
            }
            let l2 = l2.max(0.0);
            // Eigenvector of the larger eigenvalue.
            let orientation = if cxy.abs() < 1e-300 && cxx >= cyy {
                0.0
            } else if cxy.abs() < 1e-300 {
                std::f64::consts::FRAC_PI_2
            } else {
                (l1 - cxx).atan2(cxy)
            };
            // Wrap into (-π/2, π/2] (an axis, not a direction).
            let mut o = orientation;
            if o > std::f64::consts::FRAC_PI_2 {
                o -= std::f64::consts::PI;
            } else if o <= -std::f64::consts::FRAC_PI_2 {
                o += std::f64::consts::PI;
            }
            Some(CovarianceEllipse {
                semi_major: l1.sqrt(),
                semi_minor: l2.sqrt(),
                orientation: o,
            })
        }

        /// Area of the 1-σ ellipse.
        pub fn area(&self) -> f64 {
            std::f64::consts::PI * self.semi_major * self.semi_minor
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn isotropic_covariance_is_a_circle() {
            let e = CovarianceEllipse::from_covariance([[0.04, 0.0], [0.0, 0.04]]).unwrap();
            assert!((e.semi_major - 0.2).abs() < 1e-12);
            assert!((e.semi_minor - 0.2).abs() < 1e-12);
        }

        #[test]
        fn rotated_covariance_recovers_angle() {
            // Build C = R diag(4, 1) Rᵀ for a 30° rotation.
            let th = 30f64.to_radians();
            let (s, c) = th.sin_cos();
            let (l1, l2) = (4.0, 1.0);
            let cxx = c * c * l1 + s * s * l2;
            let cyy = s * s * l1 + c * c * l2;
            let cxy = s * c * (l1 - l2);
            let e = CovarianceEllipse::from_covariance([[cxx, cxy], [cxy, cyy]]).unwrap();
            assert!((e.semi_major - 2.0).abs() < 1e-9);
            assert!((e.semi_minor - 1.0).abs() < 1e-9);
            assert!((e.orientation - th).abs() < 1e-9, "angle {}", e.orientation);
        }

        #[test]
        fn vertical_major_axis() {
            let e = CovarianceEllipse::from_covariance([[1.0, 0.0], [0.0, 9.0]]).unwrap();
            assert!((e.semi_major - 3.0).abs() < 1e-12);
            assert!((e.orientation - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        }

        #[test]
        fn rejects_invalid_matrices() {
            assert!(CovarianceEllipse::from_covariance([[f64::NAN, 0.0], [0.0, 1.0]])
                .is_none());
            assert!(CovarianceEllipse::from_covariance([[-1.0, 0.0], [0.0, -2.0]])
                .is_none());
        }

        #[test]
        fn area_formula() {
            let e = CovarianceEllipse::from_covariance([[4.0, 0.0], [0.0, 1.0]]).unwrap();
            assert!((e.area() - std::f64::consts::PI * 2.0).abs() < 1e-12);
        }
    }
}
