//! Extension (paper §VII): "apply more powerful … methods to improve the
//! performance of material identification" — an MLP and a random forest on
//! the same disentangled features, against the paper's decision tree.

use rfp_bench::{matid, report};
use rfp_core::material::ClassifierKind;
use rfp_ml::mlp::MlpConfig;
use rfp_sim::Scene;

fn main() {
    report::header("Extension", "MLP vs decision tree on disentangled features (§VII)");
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 100, 50);
    let tree = matid::evaluate_all(&corpus, &ClassifierKind::paper_default());
    let forest = matid::evaluate_all(
        &corpus,
        &ClassifierKind::RandomForest(rfp_ml::forest::ForestConfig {
            trees: 40,
            features_per_tree: 12,
            ..Default::default()
        }),
    );
    let mlp = matid::evaluate_all(
        &corpus,
        &ClassifierKind::Mlp(MlpConfig {
            hidden: 48,
            epochs: 300,
            learning_rate: 0.03,
            ..Default::default()
        }),
    );
    report::row("Decision Tree", "87.9 %", &report::pct(tree.accuracy()));
    report::row("Random Forest (40)", "future work", &report::pct(forest.accuracy()));
    report::row("MLP (48 hidden)", "future work", &report::pct(mlp.accuracy()));
    println!();
    println!("the paper deliberately avoided neural classifiers to keep the gain of");
    println!("phase disentangling separable from classifier gains; with disentangled");
    println!("features the tree is already near the noise ceiling.");
    assert!(mlp.accuracy() > 0.4, "MLP accuracy {}", mlp.accuracy());
}
