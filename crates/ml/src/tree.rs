//! CART decision tree with Gini impurity.
//!
//! The paper's winning classifier (87.9 % on the 8-material task, Fig. 13).
//! Axis-aligned splits suit the RF-Prism features well: `k_t` alone nearly
//! separates the material classes, so a tree finds compact, robust rules
//! where KNN drowns in the 52-dimensional noise.

use crate::dataset::Dataset;
use crate::Classifier;

/// Hyper-parameters for [`DecisionTree::fit`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum number of samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum Gini impurity decrease for a split to be accepted.
    pub min_impurity_decrease: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 16, min_samples_leaf: 2, min_impurity_decrease: 1e-9 }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// A fitted CART decision tree.
///
/// # Example
///
/// ```
/// use rfp_ml::{Dataset, tree::DecisionTree, Classifier};
/// let mut ds = Dataset::new(2);
/// for i in 0..10 { ds.push(vec![i as f64], usize::from(i >= 5)); }
/// let t = DecisionTree::fit(&ds, &Default::default());
/// assert_eq!(t.predict(&[2.0]), 0);
/// assert_eq!(t.predict(&[7.0]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    n_features: usize,
}

impl DecisionTree {
    /// Grows a tree on `train` with the given hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `train` is empty.
    pub fn fit(train: &Dataset, config: &TreeConfig) -> Self {
        assert!(!train.is_empty(), "empty training set");
        let indices: Vec<usize> = (0..train.len()).collect();
        let root = grow(train, &indices, config, 0);
        DecisionTree { root, n_features: train.feature_dim().expect("nonempty") }
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }

    /// Total number of nodes (splits + leaves).
    pub fn node_count(&self) -> usize {
        fn c(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + c(left) + c(right),
            }
        }
        c(&self.root)
    }
}

impl Classifier for DecisionTree {
    fn predict(&self, features: &[f64]) -> usize {
        assert_eq!(features.len(), self.n_features, "feature dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    node = if features[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

fn majority_class(train: &Dataset, indices: &[usize]) -> usize {
    let mut counts = vec![0usize; train.n_classes()];
    for &i in indices {
        counts[train.labels()[i]] += 1;
    }
    counts
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(cls, _)| cls)
        .expect("at least one class")
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    impurity_decrease: f64,
    left: Vec<usize>,
    right: Vec<usize>,
}

fn find_best_split(
    train: &Dataset,
    indices: &[usize],
    config: &TreeConfig,
) -> Option<BestSplit> {
    let n = indices.len();
    let n_classes = train.n_classes();
    let dim = train.feature_dim().expect("nonempty");

    let mut parent_counts = vec![0usize; n_classes];
    for &i in indices {
        parent_counts[train.labels()[i]] += 1;
    }
    let parent_gini = gini(&parent_counts, n);
    if parent_gini == 0.0 {
        return None; // pure node
    }

    let mut best: Option<(usize, f64, f64, usize)> = None; // (feature, threshold, decrease, left_count)
    let mut sorted = indices.to_vec();
    for feature in 0..dim {
        sorted.sort_by(|&a, &b| {
            train.features()[a][feature]
                .partial_cmp(&train.features()[b][feature])
                .expect("finite features")
        });
        let mut left_counts = vec![0usize; n_classes];
        for split in 1..n {
            let prev = sorted[split - 1];
            left_counts[train.labels()[prev]] += 1;
            let x_prev = train.features()[prev][feature];
            let x_next = train.features()[sorted[split]][feature];
            if x_prev == x_next {
                continue; // cannot split between equal values
            }
            if split < config.min_samples_leaf || n - split < config.min_samples_leaf {
                continue;
            }
            let right_counts: Vec<usize> = parent_counts
                .iter()
                .zip(&left_counts)
                .map(|(p, l)| p - l)
                .collect();
            let g_left = gini(&left_counts, split);
            let g_right = gini(&right_counts, n - split);
            let weighted =
                (split as f64 * g_left + (n - split) as f64 * g_right) / n as f64;
            let decrease = parent_gini - weighted;
            if best.is_none_or(|(_, _, d, _)| decrease > d) {
                best = Some((feature, (x_prev + x_next) / 2.0, decrease, split));
            }
        }
    }

    let (feature, threshold, decrease, _) = best?;
    if decrease < config.min_impurity_decrease {
        return None;
    }
    let (left, right): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| train.features()[i][feature] <= threshold);
    if left.is_empty() || right.is_empty() {
        return None;
    }
    Some(BestSplit { feature, threshold, impurity_decrease: decrease, left, right })
}

fn grow(train: &Dataset, indices: &[usize], config: &TreeConfig, depth: usize) -> Node {
    if depth >= config.max_depth || indices.len() < 2 * config.min_samples_leaf {
        return Node::Leaf { class: majority_class(train, indices) };
    }
    match find_best_split(train, indices, config) {
        Some(split) if split.impurity_decrease >= config.min_impurity_decrease => {
            Node::Split {
                feature: split.feature,
                threshold: split.threshold,
                left: Box::new(grow(train, &split.left, config, depth + 1)),
                right: Box::new(grow(train, &split.right, config, depth + 1)),
            }
        }
        _ => Node::Leaf { class: majority_class(train, indices) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn splits_one_dimensional_classes() {
        let mut ds = Dataset::new(2);
        for i in 0..20 {
            ds.push(vec![i as f64], usize::from(i >= 10));
        }
        let cfg = TreeConfig { min_samples_leaf: 1, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        assert_eq!(t.predict(&[3.0]), 0);
        assert_eq!(t.predict(&[15.0]), 1);
        assert_eq!(t.depth(), 1, "a single threshold suffices");
    }

    #[test]
    fn xor_needs_depth_two() {
        let mut ds = Dataset::new(2);
        // Unequal corner counts: perfectly symmetric XOR has zero Gini gain
        // for every first split, so break the symmetry like real data would.
        for &(x, y, l, n) in
            &[(0.0, 0.0, 0, 3), (1.0, 1.0, 0, 1), (0.0, 1.0, 1, 2), (1.0, 0.0, 1, 2)]
        {
            for j in 0..n {
                ds.push(vec![x + 0.01 * j as f64, y + 0.01 * j as f64], l);
            }
        }
        let cfg = TreeConfig { min_samples_leaf: 1, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        assert_eq!(t.predict(&[0.0, 0.0]), 0);
        assert_eq!(t.predict(&[1.0, 1.0]), 0);
        assert_eq!(t.predict(&[0.0, 1.0]), 1);
        assert_eq!(t.predict(&[1.0, 0.0]), 1);
        assert!(t.depth() >= 2);
    }

    #[test]
    fn pure_node_is_single_leaf() {
        let mut ds = Dataset::new(2);
        for i in 0..5 {
            ds.push(vec![i as f64], 1);
        }
        let t = DecisionTree::fit(&ds, &Default::default());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[100.0]), 1);
    }

    #[test]
    fn max_depth_zero_gives_majority_vote() {
        let mut ds = Dataset::new(2);
        ds.push(vec![0.0], 0);
        ds.push(vec![1.0], 1);
        ds.push(vec![2.0], 1);
        let cfg = TreeConfig { max_depth: 0, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[0.0]), 1);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut ds = Dataset::new(2);
        // 9 samples of class 0, 1 of class 1: a leaf of 1 would isolate it.
        for i in 0..9 {
            ds.push(vec![i as f64], 0);
        }
        ds.push(vec![9.0], 1);
        let cfg = TreeConfig { min_samples_leaf: 3, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        // The lone class-1 sample cannot get its own leaf.
        assert_eq!(t.predict(&[9.0]), 0);
    }

    #[test]
    fn separable_gaussian_blobs_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ds = Dataset::new(3);
        let centres = [(0.0, 0.0), (4.0, 0.0), (0.0, 4.0)];
        for (c, &(cx, cy)) in centres.iter().enumerate() {
            for _ in 0..60 {
                ds.push(
                    vec![cx + rng.gen_range(-0.8..0.8), cy + rng.gen_range(-0.8..0.8)],
                    c,
                );
            }
        }
        let (train, test) = ds.stratified_split(0.5, 1);
        let t = DecisionTree::fit(&train, &Default::default());
        let preds = t.predict_batch(test.features());
        let acc = crate::metrics::accuracy(test.labels(), &preds);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn handles_constant_features() {
        let mut ds = Dataset::new(2);
        ds.push(vec![1.0, 0.0], 0);
        ds.push(vec![1.0, 1.0], 1);
        ds.push(vec![1.0, 0.1], 0);
        ds.push(vec![1.0, 0.9], 1);
        let cfg = TreeConfig { min_samples_leaf: 1, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        assert_eq!(t.predict(&[1.0, 0.05]), 0);
        assert_eq!(t.predict(&[1.0, 0.95]), 1);
    }

    #[test]
    #[should_panic]
    fn empty_training_panics() {
        let _ = DecisionTree::fit(&Dataset::new(1), &Default::default());
    }
}
