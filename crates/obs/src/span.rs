//! Nested span timing: a tree of named stages with accumulated monotonic
//! durations.
//!
//! A span is entered with [`SpanTree::enter`] and exited with
//! [`SpanTree::exit`]; nesting follows the call stack, so the tree mirrors
//! the pipeline's stage structure (`sense` → `extract` → `solve_2d` →
//! `joint_refine`, …). Repeated entries of the same stage under the same
//! parent **accumulate** into one node — the tree's size is bounded by the
//! number of distinct stage paths, not by the number of calls, so the
//! buffer stops allocating once every path has been seen once.
//!
//! The ergonomic way in is the guard-based API on the thread-local
//! recorder ([`crate::recorder::span`] / the [`crate::span!`] macro);
//! this module is the underlying data structure.

use std::time::Duration;

/// One aggregated stage in the span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name as given to `enter`.
    pub name: &'static str,
    /// Parent node index (`None` for top-level stages).
    pub parent: Option<usize>,
    /// Child node indices, in first-entry order.
    pub children: Vec<usize>,
    /// Total time spent inside this stage, nanoseconds (all entries).
    pub total_ns: u64,
    /// Number of times the stage was entered and exited.
    pub count: u64,
}

/// The aggregated span forest of one recorder. Node 0 does not exist as a
/// sentinel — top-level stages are listed in [`SpanTree::roots`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    /// Indices of the currently-open spans, outermost first.
    stack: Vec<usize>,
}

impl SpanTree {
    /// An empty tree.
    pub fn new() -> Self {
        SpanTree::default()
    }

    /// All nodes, in first-entry order (indices are stable).
    pub fn nodes(&self) -> &[SpanNode] {
        &self.nodes
    }

    /// Indices of the top-level stages, in first-entry order.
    pub fn roots(&self) -> &[usize] {
        &self.roots
    }

    /// Index of the innermost currently-open span, if any.
    pub fn current(&self) -> Option<usize> {
        self.stack.last().copied()
    }

    /// Opens stage `name` under the currently-open span (or at top level),
    /// reusing the node if this path has been seen before. Returns the
    /// node index, to be passed back to [`SpanTree::exit`].
    pub fn enter(&mut self, name: &'static str) -> usize {
        let parent = self.current();
        let idx = self.find_or_create(parent, name);
        self.stack.push(idx);
        idx
    }

    /// Closes span `idx`, crediting it with `elapsed`. Defensive against
    /// mismatched exits (a guard outliving a recorder swap): only the
    /// innermost open span can be closed; anything else is ignored.
    pub fn exit(&mut self, idx: usize, elapsed: Duration) {
        if self.stack.last() == Some(&idx) {
            self.stack.pop();
            let node = &mut self.nodes[idx];
            node.total_ns += elapsed.as_nanos().min(u64::MAX as u128) as u64;
            node.count += 1;
        }
    }

    fn find_or_create(&mut self, parent: Option<usize>, name: &'static str) -> usize {
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&idx) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(SpanNode { name, parent, children: Vec::new(), total_ns: 0, count: 0 });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Adds `total_ns`/`count` directly to the stage `name` under `parent`
    /// (creating it if needed) without touching the open-span stack — the
    /// merge primitive.
    fn credit(&mut self, parent: Option<usize>, name: &'static str, total_ns: u64, count: u64) -> usize {
        let idx = self.find_or_create(parent, name);
        self.nodes[idx].total_ns += total_ns;
        self.nodes[idx].count += count;
        idx
    }

    /// Grafts another tree's stages under `at` (or at top level when
    /// `None`), accumulating into existing same-named stages. Other's
    /// top-level stages become children of `at`; the structure below them
    /// is preserved. Merging is pure addition, so merging per-worker trees
    /// in a fixed order is deterministic in structure and counts (the
    /// timings themselves are wall-clock and vary run to run).
    pub fn merge_at(&mut self, at: Option<usize>, other: &SpanTree) {
        for &root in &other.roots {
            self.merge_node(at, other, root);
        }
    }

    fn merge_node(&mut self, parent: Option<usize>, other: &SpanTree, idx: usize) {
        let node = &other.nodes[idx];
        let here = self.credit(parent, node.name, node.total_ns, node.count);
        for &child in &node.children {
            self.merge_node(Some(here), other, child);
        }
    }

    /// Depth-first walk in first-entry order, calling `f(depth, node)` —
    /// the traversal every sink uses, so all outputs agree on ordering.
    pub fn walk<F: FnMut(usize, &SpanNode)>(&self, f: &mut F) {
        fn rec<F: FnMut(usize, &SpanNode)>(t: &SpanTree, idx: usize, depth: usize, f: &mut F) {
            f(depth, &t.nodes[idx]);
            for &c in &t.nodes[idx].children {
                rec(t, c, depth + 1, f);
            }
        }
        for &r in &self.roots {
            rec(self, r, 0, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn nesting_builds_paths_and_repeats_accumulate() {
        let mut t = SpanTree::new();
        for _ in 0..3 {
            let outer = t.enter("sense");
            let inner = t.enter("extract");
            t.exit(inner, ms(1));
            let inner = t.enter("solve");
            t.exit(inner, ms(2));
            t.exit(outer, ms(4));
        }
        // Three iterations collapse into one 3-node tree.
        assert_eq!(t.nodes().len(), 3);
        let mut seen = Vec::new();
        t.walk(&mut |depth, node| seen.push((depth, node.name, node.count, node.total_ns)));
        assert_eq!(
            seen,
            vec![
                (0, "sense", 3, 3 * 4_000_000),
                (1, "extract", 3, 3 * 1_000_000),
                (1, "solve", 3, 3 * 2_000_000),
            ]
        );
    }

    #[test]
    fn same_name_under_different_parents_is_distinct() {
        let mut t = SpanTree::new();
        let a = t.enter("a");
        let fit = t.enter("fit");
        t.exit(fit, ms(1));
        t.exit(a, ms(1));
        let b = t.enter("b");
        let fit = t.enter("fit");
        t.exit(fit, ms(1));
        t.exit(b, ms(1));
        assert_eq!(t.nodes().len(), 4);
        assert_eq!(t.roots().len(), 2);
    }

    #[test]
    fn mismatched_exit_is_ignored() {
        let mut t = SpanTree::new();
        let outer = t.enter("outer");
        let inner = t.enter("inner");
        t.exit(outer, ms(5)); // wrong: inner still open
        assert_eq!(t.nodes()[outer].count, 0);
        t.exit(inner, ms(1));
        t.exit(outer, ms(5));
        assert_eq!(t.nodes()[outer].count, 1);
    }

    #[test]
    fn merge_grafts_under_target() {
        let mut main = SpanTree::new();
        let batch = main.enter("batch");
        let mut worker = SpanTree::new();
        let s = worker.enter("sense");
        let e = worker.enter("extract");
        worker.exit(e, ms(1));
        worker.exit(s, ms(2));
        main.merge_at(Some(batch), &worker);
        main.merge_at(Some(batch), &worker); // second worker, same shape
        main.exit(batch, ms(10));
        let mut seen = Vec::new();
        main.walk(&mut |depth, node| seen.push((depth, node.name, node.count)));
        assert_eq!(
            seen,
            vec![(0, "batch", 1), (1, "sense", 2), (2, "extract", 2)]
        );
    }
}
