//! Antenna (reader-port) calibration — paper §IV-C.
//!
//! Different antenna ports add different constant phases (cables,
//! front-end paths). Since these offsets "only rely on the hardware
//! devices … they are determined once the reader and antennas are chosen
//! and will never be changed", the paper removes them with a one-time
//! procedure: read a reference tag through every antenna while keeping
//! everything else fixed, and difference out the per-port constants.
//!
//! [`AntennaCalibration::from_reference`] implements exactly that: given
//! the per-antenna observations of a reference tag at a *known* position
//! and orientation, the geometric and polarization parts of each intercept
//! are predicted and subtracted; what remains (relative to antenna 0) is
//! the port offset. [`AntennaCalibration::corrected`] applies the
//! corrections to raw reads before the normal pipeline runs.

use crate::model::AntennaObservation;
use rfp_dsp::preprocess::RawRead;
use rfp_geom::{angle, Vec2};
use rfp_phys::polarization::{orientation_phase, planar_dipole};

/// Per-port constant phase corrections, relative to port 0.
#[derive(Debug, Clone, PartialEq)]
pub struct AntennaCalibration {
    /// `offsets[i]` is subtracted from every phase read on antenna `i`.
    /// `offsets[0] == 0` by construction (only differences are physical).
    offsets: Vec<f64>,
}

impl AntennaCalibration {
    /// Estimates port offsets from per-antenna observations of a reference
    /// tag at `position` with orientation `alpha`.
    ///
    /// The slope of each observation is unaffected by a constant port
    /// offset, so only intercepts are used: after removing the predicted
    /// `θ_orient`, the common remainder is the tag's `b_t` — whatever
    /// varies across antennas beyond that is hardware.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty.
    pub fn from_reference(
        observations: &[AntennaObservation],
        position: Vec2,
        alpha: f64,
    ) -> Self {
        assert!(!observations.is_empty(), "need at least one antenna");
        let w = planar_dipole(alpha);
        let _ = position; // distance affects only slopes; intercepts suffice
        let residual: Vec<f64> = observations
            .iter()
            .map(|o| o.intercept - orientation_phase(&o.pose, w))
            .collect();
        let offsets = residual
            .iter()
            .map(|r| angle::wrap_pi(r - residual[0]))
            .collect();
        AntennaCalibration { offsets }
    }

    /// The per-port corrections (relative to port 0), radians.
    pub fn offsets(&self) -> &[f64] {
        &self.offsets
    }

    /// Number of calibrated ports.
    pub fn port_count(&self) -> usize {
        self.offsets.len()
    }

    /// Returns the reads with each antenna's offset subtracted — feed the
    /// result to the normal pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `reads_per_antenna.len()` differs from the port count.
    pub fn corrected(&self, reads_per_antenna: &[Vec<RawRead>]) -> Vec<Vec<RawRead>> {
        assert_eq!(
            reads_per_antenna.len(),
            self.offsets.len(),
            "one read group per calibrated port"
        );
        reads_per_antenna
            .iter()
            .zip(&self.offsets)
            .map(|(reads, &off)| {
                reads
                    .iter()
                    .map(|r| {
                        // Subtracting the offset moves the phase off the
                        // reader grid, so the stale code must not ride
                        // along; re-derive (usually None for a continuous
                        // calibration offset).
                        let phase = angle::wrap_tau(r.phase - off);
                        RawRead {
                            phase,
                            phase_code: rfp_dsp::trig::code_for_phase(phase),
                            ..*r
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{extract_observation, ExtractConfig};
    use crate::solver::{solve_2d, SolverConfig};
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn observations(scene: &Scene, tag: &SimTag, seed: u64) -> Vec<AntennaObservation> {
        let survey = scene.survey(tag, seed);
        scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect()
    }

    #[test]
    fn recovers_port_offsets() {
        let scene = Scene::standard_2d_uncalibrated(7)
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let reference_pos = Vec2::new(0.5, 1.2);
        let tag = SimTag::with_seeded_diversity(1)
            .with_motion(Motion::planar_static(reference_pos, 0.0));
        let obs = observations(&scene, &tag, 1);
        let cal = AntennaCalibration::from_reference(&obs, reference_pos, 0.0);
        assert_eq!(cal.port_count(), 3);
        assert_eq!(cal.offsets()[0], 0.0);
        for i in 1..3 {
            let truth = angle::wrap_pi(
                scene.antennas()[i].hardware_phase_offset
                    - scene.antennas()[0].hardware_phase_offset,
            );
            assert!(
                angle::distance(cal.offsets()[i], truth) < 1e-6,
                "port {i}: {} vs {truth}",
                cal.offsets()[i]
            );
        }
    }

    #[test]
    fn correction_restores_sensing_accuracy() {
        // Uncalibrated ports corrupt orientation/material; after applying
        // the §IV-C correction the solve matches the calibrated scene.
        let scene = Scene::standard_2d_uncalibrated(11);
        // Calibration happens pre-deployment in controlled conditions: same
        // hardware offsets (same seed), no measurement noise.
        let calib_scene = Scene::standard_2d_uncalibrated(11)
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let reference_pos = Vec2::new(0.5, 1.2);
        let reference = SimTag::with_seeded_diversity(1)
            .with_motion(Motion::planar_static(reference_pos, 0.0));
        let cal = AntennaCalibration::from_reference(
            &observations(&calib_scene, &reference, 2),
            reference_pos,
            0.0,
        );

        let truth_pos = Vec2::new(0.9, 1.8);
        let truth_alpha = 0.9;
        let tag = SimTag::with_seeded_diversity(2)
            .with_motion(Motion::planar_static(truth_pos, truth_alpha));
        let survey = scene.survey(&tag, 3);
        let corrected = cal.corrected(&survey.per_antenna);
        let obs: Vec<AntennaObservation> = scene
            .antenna_poses()
            .iter()
            .zip(&corrected)
            .map(|(&p, r)| extract_observation(p, r, &ExtractConfig::paper()).unwrap())
            .collect();
        let est = solve_2d(&obs, scene.region(), &SolverConfig::default()).unwrap();
        assert!(
            est.position.distance(truth_pos) < 0.25,
            "position error {}",
            est.position.distance(truth_pos)
        );
        assert!(
            angle::dipole_distance(est.orientation, truth_alpha).to_degrees() < 30.0,
            "orientation error {}°",
            angle::dipole_distance(est.orientation, truth_alpha).to_degrees()
        );
    }

    #[test]
    fn calibrated_scene_yields_zero_offsets() {
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let reference_pos = Vec2::new(0.3, 1.4);
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(reference_pos, 0.0));
        let cal = AntennaCalibration::from_reference(
            &observations(&scene, &tag, 4),
            reference_pos,
            0.0,
        );
        for &o in cal.offsets() {
            assert!(o.abs() < 1e-6, "offset {o}");
        }
    }

    #[test]
    #[should_panic]
    fn corrected_checks_port_count() {
        let cal = AntennaCalibration { offsets: vec![0.0, 0.1] };
        let _ = cal.corrected(&[Vec::new()]);
    }
}
