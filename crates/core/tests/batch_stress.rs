//! Concurrency stress: a 512-tag batch, solved repeatedly at a high worker
//! count, must produce byte-identical output every run (and not panic).
//! Any data race, scheduling-dependent accumulation order or leaked
//! worker-local state would show up as a digest mismatch here long before
//! it showed up as a visibly wrong estimate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_core::{RfPrism, SenseError, SensingResult};
use rfp_geom::Vec2;
use rfp_phys::Material;
use rfp_sim::{Motion, Scene, SimTag};

/// FNV-1a over every output bit of a batch, errors included.
fn digest(results: &[Result<SensingResult, SenseError>]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bits: u64| {
        for byte in bits.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for r in results {
        match r {
            Ok(s) => {
                let e = &s.estimate;
                for v in [
                    e.position.x,
                    e.position.y,
                    e.orientation,
                    e.kt,
                    e.bt,
                    e.cost,
                    e.residual_rms,
                ] {
                    eat(v.to_bits());
                }
                for o in &s.observations {
                    eat(o.slope.to_bits());
                    eat(o.intercept.to_bits());
                }
            }
            Err(e) => eat(format!("{e:?}").len() as u64),
        }
    }
    h
}

#[test]
fn stress_512_tags_byte_identical_across_runs() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let materials = [Material::FreeSpace, Material::Wood, Material::Glass, Material::Water];
    let mut rng = StdRng::seed_from_u64(0x5157_5052_4953_4d21);
    let region = scene.region();
    let tags: Vec<_> = (0..512u64)
        .map(|i| {
            let pos = Vec2::new(
                rng.gen_range(region.min().x..region.max().x),
                rng.gen_range(region.min().y..region.max().y),
            );
            let alpha = rng.gen_range(0.0..std::f64::consts::PI);
            let tag = SimTag::with_seeded_diversity(i)
                .attached_to(materials[(i % 4) as usize])
                .with_motion(Motion::planar_static(pos, alpha));
            scene.survey(&tag, i.wrapping_mul(0x9e37_79b9)).per_antenna
        })
        .collect();

    let cache = prism.batch_cache();
    let reference = digest(&prism.sense_batch_with(&cache, &tags, 1));
    // Repeated high-concurrency runs: same bytes every time, at every
    // worker count, including `0` (= all available CPUs).
    for jobs in [8, 8, 8, 2, 0] {
        let d = digest(&prism.sense_batch_with(&cache, &tags, jobs));
        assert_eq!(d, reference, "digest diverged at jobs={jobs}");
    }
}
