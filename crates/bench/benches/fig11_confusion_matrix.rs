//! Fig. 11: the 8×8 confusion matrix of the material identifier.
//!
//! Paper: every diagonal ≥ 0.85; the dominant confusion is water ↔
//! skim milk (6 %), explained by their similar permittivity.

use rfp_bench::{matid, report};
use rfp_core::material::ClassifierKind;
use rfp_phys::Material;
use rfp_sim::Scene;

fn main() {
    report::header("Fig. 11", "confusion matrix of the 8-material decision tree");
    let scene = Scene::standard_2d();
    let corpus = matid::build_corpus(&scene, 100, 50);
    let cm = matid::evaluate_all(&corpus, &ClassifierKind::paper_default());

    report::confusion_matrix(&cm);
    println!();
    report::row("overall accuracy", "87.9 %", &report::pct(cm.accuracy()));

    let norm = cm.normalized();
    let water = Material::Water.class_index().unwrap();
    let milk = Material::SkimMilk.class_index().unwrap();
    report::row("water→milk confusion", "6 %", &report::pct(norm[water][milk]));
    report::row("milk→water confusion", "6 %", &report::pct(norm[milk][water]));

    // Shape: strong diagonal, water/milk the worst pair.
    assert!(cm.accuracy() > 0.8, "overall accuracy {}", cm.accuracy());
    let mut worst_offdiag = 0.0f64;
    let mut worst_pair = (0usize, 0usize);
    for (t, row) in norm.iter().enumerate() {
        for (p, &v) in row.iter().enumerate() {
            if t != p && v > worst_offdiag {
                worst_offdiag = v;
                worst_pair = (t, p);
            }
        }
    }
    println!(
        "largest confusion: {} → {} ({:.1} %)",
        Material::from_class_index(worst_pair.0),
        Material::from_class_index(worst_pair.1),
        worst_offdiag * 100.0
    );
    let water_milk_pair = (worst_pair == (water, milk)) || (worst_pair == (milk, water));
    assert!(
        water_milk_pair || worst_offdiag < 0.12,
        "the dominant confusion should be water/milk (got {worst_pair:?})"
    );
}
