//! Security checkpoint (paper Fig. 1, "security checking"): bottles pause
//! at an inspection point and RF-Prism decides, without opening them,
//! whether the liquid inside is flammable (alcohol, oil) or benign
//! (water, milk) — while also verifying the declared position.
//!
//! Uses multi-round sensing ([`RfPrism::sense_rounds`]) for a
//! higher-confidence decision at the cost of inspection time.
//!
//! ```text
//! cargo run --release --example security_checkpoint
//! ```

use rf_prism::core::material::ClassifierKind;
use rf_prism::core::model::{extract_observation, ExtractConfig};
use rf_prism::core::MaterialIdentifier;
use rf_prism::ml::dataset::Dataset;
use rf_prism::prelude::*;

const LIQUIDS: [Material; 4] =
    [Material::Water, Material::SkimMilk, Material::EdibleOil, Material::Alcohol];

fn is_flagged(material: Material) -> bool {
    matches!(material, Material::Alcohol | Material::EdibleOil)
}

fn main() {
    let scene = Scene::standard_2d();
    let prism = RfPrism::new(scene.antenna_poses(), scene.reader().plan)
        .with_region(scene.region());
    let channel_count = scene.reader().plan.channel_count();
    let gate = Vec2::new(0.5, 1.2);

    // ---- Checkpoint provisioning ----------------------------------------
    // Calibrate the pool of inspection tags once, bare.
    let calib_pose = (Vec2::new(0.5, 1.0), 0.0);
    let mut calibrations = CalibrationDb::new();
    for id in 1..=3u64 {
        let bare = SimTag::with_seeded_diversity(id)
            .with_motion(Motion::planar_static(calib_pose.0, calib_pose.1));
        let survey = scene.survey(&bare, 700 + id);
        let obs: Vec<_> = scene
            .antenna_poses()
            .iter()
            .zip(&survey.per_antenna)
            .map(|(&p, r)| {
                extract_observation(p, r, &ExtractConfig::paper()).expect("calibration")
            })
            .collect();
        calibrations.insert(
            id,
            DeviceCalibration::from_observations(&obs, calib_pose.0, calib_pose.1),
        );
    }
    // Train a liquid classifier from reference bottles.
    let mut train = Dataset::new(Material::CLASSES.len());
    for (li, &liquid) in LIQUIDS.iter().enumerate() {
        for rep in 0..10u64 {
            let id = 1 + rep % 3;
            let tag = SimTag::with_seeded_diversity(id)
                .attached_to(liquid)
                .with_motion(Motion::planar_static(gate, 0.0));
            let survey = scene.survey(&tag, 2_000 + li as u64 * 20 + rep);
            if let Ok(result) = prism.sense(&survey.per_antenna) {
                let feats = result
                    .material_features(calibrations.get(id).unwrap(), channel_count);
                train.push(feats.to_vector(), liquid.class_index().unwrap());
            }
        }
    }
    let identifier = MaterialIdentifier::train(&train, &ClassifierKind::paper_default());
    println!("checkpoint armed: {} reference measurements\n", train.len());

    // ---- Inspection lane -------------------------------------------------
    let lane = [
        ("bottle A (declared: water)", Material::Water, 1u64),
        ("bottle B (declared: water)", Material::Alcohol, 2), // smuggler
        ("bottle C (declared: milk)", Material::SkimMilk, 3),
        ("bottle D (declared: oil)", Material::EdibleOil, 1),
    ];
    let mut flagged = 0;
    for (i, (label, truth, tag_id)) in lane.iter().enumerate() {
        let tag = SimTag::with_seeded_diversity(*tag_id)
            .attached_to(*truth)
            .with_motion(Motion::planar_static(gate, 0.25 * i as f64));
        // Two hop rounds per inspection for confidence.
        let rounds: Vec<_> = (0..2u64)
            .map(|r| scene.survey(&tag, 9_000 + i as u64 * 10 + r).per_antenna)
            .collect();
        let result = prism.sense_rounds(&rounds).expect("bottle parked at the gate");
        let feats = result
            .material_features(calibrations.get(*tag_id).unwrap(), channel_count);
        let identified = identifier.identify(&feats);
        let verdict = if is_flagged(identified) { "⛔ FLAG" } else { "✓ pass" };
        if is_flagged(identified) {
            flagged += 1;
        }
        println!(
            "{label:<28} sensed {:>7} at ({:+.2}, {:.2}) ± {:.1} cm → {verdict}",
            identified.label(),
            result.estimate.position.x,
            result.estimate.position.y,
            result.estimate.position_std_m * 100.0,
        );
    }
    println!();
    println!(
        "{} of {} bottles flagged for manual inspection \
         (bottle B's declaration did not match its contents)",
        flagged,
        lane.len()
    );
}
