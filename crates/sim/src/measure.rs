//! The measurement engine: runs a hop round and produces raw reads.
//!
//! For every dwell the reader time-multiplexes its antenna ports and
//! inventories the tag several times per port (the R420 reads a lone tag
//! tens of times per 200 ms dwell; we default to 8 per antenna). Each read
//! is assembled from the shared forward models plus the scene's corruption:
//!
//! ```text
//! θ = θ_prop(d(t), f) + θ_orient(A, w(t)) + θ_tag(f) + θ_reader(A)
//!     + multipath_deviation(A, f) + N(0, σ²) + π·Bernoulli(p)
//! ```
//!
//! then quantized and wrapped exactly like an LLRP phase report. The tag's
//! position/dipole are evaluated at the read's true timestamp, so a tag
//! that moves mid-round smears its phase line — which is what the paper's
//! error detector looks for.

use crate::scene::Scene;
use crate::tag::SimTag;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfp_dsp::preprocess::RawRead;
use rfp_geom::angle;
use rfp_phys::polarization::{orientation_phase, projection_magnitude};
use rfp_phys::rssi::{rssi_dbm, SENSITIVITY_FLOOR_DBM};
use rfp_phys::{propagation, Material};

/// The raw reads of one full hop round, grouped per antenna.
#[derive(Debug, Clone, PartialEq)]
pub struct HopSurvey {
    /// `per_antenna[i]` holds antenna *i*'s reads in time order.
    pub per_antenna: Vec<Vec<RawRead>>,
    /// The channel visit order used by this round.
    pub hop_order: Vec<usize>,
    /// Ground-truth material of the surveyed tag (experiment bookkeeping;
    /// never shown to the sensing pipeline).
    pub truth_material: Material,
}

impl HopSurvey {
    /// Number of antennas surveyed.
    pub fn antenna_count(&self) -> usize {
        self.per_antenna.len()
    }

    /// Total number of reads across antennas.
    pub fn total_reads(&self) -> usize {
        self.per_antenna.iter().map(Vec::len).sum()
    }
}

/// Runs one hop round (see [`Scene::survey`]).
pub(crate) fn run_survey(scene: &Scene, tag: &SimTag, seed: u64) -> HopSurvey {
    let reader = scene.reader();
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ tag.id());
    let hop_order = reader.hop_order(seed);
    let n_ant = scene.antennas().len();
    let noise = scene.noise();
    let electrical = tag.electrical();
    let motion = tag.motion();

    let mut per_antenna: Vec<Vec<RawRead>> = vec![Vec::new(); n_ant];
    let reads_total_per_dwell = reader.reads_per_channel * n_ant;
    let interference_pattern =
        scene.interference().dwell_pattern(hop_order.len(), seed);

    for (slot, &channel) in hop_order.iter().enumerate() {
        let f = reader.plan.frequency_hz(channel);
        let t0 = slot as f64 * reader.dwell_s;
        for r in 0..reader.reads_per_channel {
            for (ai, antenna) in scene.antennas().iter().enumerate() {
                let within = (r * n_ant + ai) as f64 + 0.5;
                let t = t0 + reader.dwell_s * within / reads_total_per_dwell as f64;

                if rng.gen::<f64>() < noise.drop_probability {
                    continue;
                }

                let position = motion.position(t);
                let dipole = motion.dipole(t);
                let d = antenna.pose.distance_to(position);
                let projection = projection_magnitude(&antenna.pose, dipole);
                let (mp_phase, mp_mag) =
                    scene.environment().deviation(antenna.pose.position(), position, f);

                let interfered = interference_pattern[slot];
                let mut rssi_clean = rssi_dbm(d, f, electrical, projection)
                    + 20.0 * mp_mag.max(1e-6).log10();
                if interfered {
                    rssi_clean -= scene.interference().rssi_drop_db;
                }
                let rssi = rssi_clean + crate::noise::NoiseModel::gaussian(&mut rng, noise.rssi_std_db);
                if rssi < SENSITIVITY_FLOOR_DBM {
                    continue; // tag not inventoried on this attempt
                }

                let mut phase_std = noise.phase_std_at(rssi_clean);
                if interfered {
                    phase_std = phase_std.hypot(scene.interference().phase_std_rad);
                }
                let mut phase = propagation::phase(d, f)
                    + orientation_phase(&antenna.pose, dipole)
                    + electrical.device_phase(f)
                    + antenna.hardware_phase_offset
                    + mp_phase
                    + crate::noise::NoiseModel::gaussian(&mut rng, phase_std);
                if rng.gen::<f64>() < noise.pi_jump_probability {
                    phase += std::f64::consts::PI;
                }
                let phase = angle::wrap_tau(reader.quantized_phase(angle::wrap_tau(phase)));

                per_antenna[ai].push(RawRead {
                    channel,
                    frequency_hz: f,
                    phase,
                    rssi_dbm: reader.quantized_rssi(rssi),
                    timestamp_s: t,
                    // Exactly on the 12-bit grid whenever the reader
                    // quantizes (the quantized-then-wrapped phase is a
                    // grid point bitwise), None on ideal readers — this
                    // is what engages the front end's table trig path.
                    phase_code: rfp_dsp::trig::code_for_phase(phase),
                });
            }
        }
    }

    HopSurvey { per_antenna, hop_order, truth_material: tag.material() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::motion::Motion;
    use crate::multipath::MultipathEnvironment;
    use crate::noise::NoiseModel;
    use crate::reader::ReaderConfig;
    use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig};
    use rfp_dsp::linfit::ols;
    use rfp_geom::Vec2;
    use rfp_phys::FrequencyPlan;

    fn clean_scene() -> Scene {
        Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal())
    }

    fn static_tag(x: f64, y: f64, alpha: f64) -> SimTag {
        SimTag::nominal(1).with_motion(Motion::planar_static(Vec2::new(x, y), alpha))
    }

    #[test]
    fn read_counts_match_schedule() {
        let scene = clean_scene();
        let survey = scene.survey(&static_tag(0.5, 1.5, 0.3), 1);
        assert_eq!(survey.antenna_count(), 3);
        for reads in &survey.per_antenna {
            assert_eq!(reads.len(), 50 * 8);
        }
        assert_eq!(survey.total_reads(), 3 * 50 * 8);
    }

    #[test]
    fn clean_reads_match_forward_model_exactly() {
        let scene = clean_scene();
        let tag = static_tag(0.2, 1.2, 0.5);
        let survey = scene.survey(&tag, 2);
        let pos = tag.motion().position(0.0);
        let dip = tag.motion().dipole(0.0);
        for (ai, reads) in survey.per_antenna.iter().enumerate() {
            let pose = scene.antennas()[ai].pose;
            for read in reads {
                let expect = angle::wrap_tau(
                    propagation::phase(pose.distance_to(pos), read.frequency_hz)
                        + orientation_phase(&pose, dip)
                        + tag.electrical().device_phase(read.frequency_hz),
                );
                assert!(
                    angle::distance(read.phase, expect) < 1e-9,
                    "antenna {ai} channel {}: got {} want {expect}",
                    read.channel,
                    read.phase
                );
            }
        }
    }

    #[test]
    fn fitted_slope_recovers_distance_plus_material_term() {
        let scene = clean_scene();
        let tag = SimTag::nominal(3)
            .attached_to(Material::Glass)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.0));
        let survey = scene.survey(&tag, 3);
        let obs =
            preprocess_reads(&survey.per_antenna[0], &PreprocessConfig::default()).unwrap();
        let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
        let fit = ols(&xs, &ys).unwrap();
        let d = scene.antennas()[0].pose.distance_to(tag.motion().position(0.0));
        let expected_k = propagation::slope_from_distance(d)
            + tag.electrical().linearized(&scene.reader().plan).kt;
        assert!(
            (fit.slope - expected_k).abs() < 2e-10,
            "slope {} vs expected {expected_k}",
            fit.slope
        );
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn survey_is_deterministic_per_seed() {
        let scene = Scene::standard_2d();
        let tag = static_tag(0.7, 2.0, 1.0);
        assert_eq!(scene.survey(&tag, 9), scene.survey(&tag, 9));
        assert_ne!(scene.survey(&tag, 9), scene.survey(&tag, 10));
    }

    /// rfp-dsp's table grid must be the reader's LLRP grid: the two
    /// crates define the LSB independently (rfp-dsp does not depend on
    /// rfp-phys), so pin them bit-equal here where both are visible.
    #[test]
    fn dsp_phase_grid_matches_reader_lsb() {
        assert_eq!(
            rfp_dsp::trig::PHASE_LSB_RAD.to_bits(),
            rfp_phys::constants::IMPINJ_PHASE_LSB_RAD.to_bits()
        );
        assert_eq!(rfp_dsp::trig::PHASE_CODES, 4096);
    }

    /// A quantizing reader's survey carries a phase code on every read
    /// (so the front end's table path engages end to end), and every code
    /// reproduces its phase exactly; an ideal reader's continuous phases
    /// carry none.
    #[test]
    fn quantized_surveys_carry_phase_codes() {
        let tag = static_tag(0.6, 1.7, 0.4);
        let quantized = Scene::standard_2d().survey(&tag, 11);
        let mut reads = 0usize;
        for r in quantized.per_antenna.iter().flatten() {
            reads += 1;
            let code = r.phase_code.expect("R420 reads are on the 12-bit grid");
            assert_eq!(
                (code as f64 * rfp_dsp::trig::PHASE_LSB_RAD).to_bits(),
                r.phase.to_bits(),
                "code {code} does not reproduce phase {:e}",
                r.phase
            );
        }
        assert!(reads > 100, "survey too small to be meaningful: {reads}");

        let ideal = Scene::standard_2d().with_reader(ReaderConfig::ideal()).survey(&tag, 11);
        assert!(
            ideal.per_antenna.iter().flatten().all(|r| r.phase_code.is_none()),
            "continuous phases must not claim grid codes"
        );
    }

    #[test]
    fn noise_widens_phase_spread() {
        let tag = static_tag(0.5, 1.5, 0.0);
        let clean = clean_scene().survey(&tag, 4);
        let noisy = Scene::standard_2d()
            .with_reader(ReaderConfig::ideal())
            .survey(&tag, 4);
        let spread = |s: &HopSurvey| {
            let obs =
                preprocess_reads(&s.per_antenna[0], &PreprocessConfig::default()).unwrap();
            obs.iter().map(|o| o.phase_spread).sum::<f64>() / obs.len() as f64
        };
        assert!(spread(&clean) < 1e-6);
        let sp = spread(&noisy);
        assert!(sp > 0.003 && sp < 0.3, "spread {sp}");
    }

    #[test]
    fn pi_jumps_survive_round_trip_correction() {
        // With π jumps on, pre-processing must still recover the clean line.
        let scene = Scene::standard_2d().with_reader(ReaderConfig::ideal()).with_noise(
            NoiseModel { phase_std_rad: 0.05, pi_jump_probability: 0.25, ..NoiseModel::clean() },
        );
        let tag = static_tag(0.4, 1.1, 0.2);
        let survey = scene.survey(&tag, 5);
        let obs =
            preprocess_reads(&survey.per_antenna[1], &PreprocessConfig::default()).unwrap();
        let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!(fit.residual_std < 0.1, "residual {}", fit.residual_std);
    }

    #[test]
    fn moving_tag_breaks_linearity() {
        // With the real reader's *random* hop order, motion scatters the
        // phase-vs-frequency samples; a sequential order would alias
        // constant velocity into a slope bias instead.
        let scene = clean_scene().with_reader(ReaderConfig {
            randomize_hop_order: true,
            ..ReaderConfig::ideal()
        });
        let still = scene.survey(&static_tag(0.2, 1.0, 0.0), 6);
        let moving = scene.survey(
            &SimTag::nominal(1).with_motion(Motion::planar_linear(
                Vec2::new(0.2, 1.0),
                Vec2::new(0.05, 0.02), // 5 cm/s drift during the 10 s round
                0.0,
            )),
            6,
        );
        let resid = |s: &HopSurvey| {
            let obs =
                preprocess_reads(&s.per_antenna[0], &PreprocessConfig::default()).unwrap();
            let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
            ols(&xs, &ys).unwrap().residual_std
        };
        assert!(resid(&still) < 0.01, "still residual {}", resid(&still));
        assert!(resid(&moving) > 0.3, "moving residual {}", resid(&moving));
    }

    #[test]
    fn multipath_corrupts_a_minority_of_channels() {
        let scene = clean_scene();
        let cluttered = clean_scene()
            .with_environment(MultipathEnvironment::cluttered(3, 11));
        let tag = static_tag(0.9, 1.8, 0.4);
        let base = scene.survey(&tag, 7);
        let mp = cluttered.survey(&tag, 7);
        let line_resid = |s: &HopSurvey| {
            let obs =
                preprocess_reads(&s.per_antenna[2], &PreprocessConfig::default()).unwrap();
            let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
            ols(&xs, &ys).unwrap().residual_std
        };
        assert!(line_resid(&mp) > 3.0 * line_resid(&base).max(1e-6));
    }

    #[test]
    fn subsampled_plan_yields_fewer_channels() {
        let scene = clean_scene().with_reader(
            ReaderConfig::ideal().with_plan(FrequencyPlan::fcc_us_subsampled(10)),
        );
        let survey = scene.survey(&static_tag(0.5, 1.5, 0.0), 8);
        let channels: std::collections::BTreeSet<usize> =
            survey.per_antenna[0].iter().map(|r| r.channel).collect();
        assert_eq!(channels.len(), 10);
    }

    #[test]
    fn truth_material_recorded() {
        let tag = SimTag::nominal(2)
            .attached_to(Material::Alcohol)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.0));
        let survey = clean_scene().survey(&tag, 12);
        assert_eq!(survey.truth_material, Material::Alcohol);
    }
}

#[cfg(test)]
mod interference_tests {
    use super::*;
    use crate::interference::InterferenceModel;
    use crate::motion::Motion;
    use crate::noise::NoiseModel;
    use crate::reader::ReaderConfig;
    use rfp_dsp::preprocess::{preprocess_reads, PreprocessConfig};
    use rfp_dsp::robust::{robust_line_fit, RobustFitConfig};
    use rfp_geom::Vec2;

    #[test]
    fn bursts_corrupt_a_minority_of_channels_and_get_rejected() {
        // Transient interference behaves like the paper says: it hits whole
        // dwells (= channels), and the robust fit rejects them like
        // multipath outliers.
        let scene = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal())
            .with_interference(InterferenceModel::occasional());
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(Vec2::new(0.5, 1.4), 0.3));
        let survey = scene.survey(&tag, 11);
        let obs =
            preprocess_reads(&survey.per_antenna[0], &PreprocessConfig::default()).unwrap();
        let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
        let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
        let r = robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap();
        let rejected = r.inliers.iter().filter(|&&k| !k).count();
        assert!(rejected >= 1, "some interfered channels must be rejected");
        assert!(
            rejected <= 20,
            "interference must stay a minority ({rejected} rejected)"
        );
        assert!(r.fit.residual_std < 0.05, "clean after rejection: {}", r.fit.residual_std);
    }

    #[test]
    fn interference_costs_little_after_suppression() {
        use rfp_phys::propagation;
        let base = Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal());
        let noisy = base.clone().with_interference(InterferenceModel::occasional());
        let tag = SimTag::nominal(1)
            .with_motion(Motion::planar_static(Vec2::new(0.7, 1.7), 0.2));
        let d = base.antennas()[1].pose.distance_to(tag.motion().position(0.0));
        let kt = tag.electrical().linearized(&base.reader().plan).kt;
        let k_true = propagation::slope_from_distance(d) + kt;

        let slope_of = |scene: &Scene, seed: u64| {
            let survey = scene.survey(&tag, seed);
            let obs =
                preprocess_reads(&survey.per_antenna[1], &PreprocessConfig::default())
                    .unwrap();
            let xs: Vec<f64> = obs.iter().map(|o| o.frequency_hz).collect();
            let ys: Vec<f64> = obs.iter().map(|o| o.phase).collect();
            robust_line_fit(&xs, &ys, &RobustFitConfig::default()).unwrap().fit.slope
        };
        let mut worst_bias_cm = 0.0f64;
        for seed in 0..6u64 {
            let bias =
                (slope_of(&noisy, seed) - k_true).abs() * 3.0e8 / (4.0 * std::f64::consts::PI);
            worst_bias_cm = worst_bias_cm.max(bias * 100.0);
        }
        assert!(
            worst_bias_cm < 3.0,
            "post-suppression slope bias {worst_bias_cm} cm too large"
        );
    }
}
