//! Frequency channel plans.
//!
//! A UHF reader avoids interference by hopping over a regulatory channel
//! set; the ImpinJ R420 used by the paper hops over 50 channels between
//! 902.75 and 927.25 MHz. The multi-frequency phase model needs the channel
//! list both to *generate* readings (simulator) and to *fit* the phase line
//! (disentangler), so the plan lives in this shared crate.

use crate::constants::{
    FCC_BAND_END_HZ, FCC_BAND_START_HZ, FCC_CHANNEL_COUNT, FCC_CHANNEL_SPACING_HZ,
};

/// A set of equally spaced channel centre frequencies.
///
/// Channels are indexed `0..channel_count()` in ascending frequency order.
/// (The over-the-air hop *order* is pseudo-random and is decided by the
/// reader model in `rfp-sim`; the plan itself is just the frequency table.)
///
/// # Example
///
/// ```
/// use rfp_phys::FrequencyPlan;
/// let plan = FrequencyPlan::fcc_us();
/// assert_eq!(plan.channel_count(), 50);
/// assert_eq!(plan.frequency_hz(0), 902.75e6);
/// assert_eq!(plan.frequency_hz(49), 927.25e6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPlan {
    start_hz: f64,
    spacing_hz: f64,
    count: usize,
}

impl FrequencyPlan {
    /// The FCC US plan used by the paper's ImpinJ R420: 50 channels,
    /// 902.75–927.25 MHz, 500 kHz spacing.
    pub fn fcc_us() -> Self {
        FrequencyPlan {
            start_hz: FCC_BAND_START_HZ,
            spacing_hz: FCC_CHANNEL_SPACING_HZ,
            count: FCC_CHANNEL_COUNT,
        }
    }

    /// A custom equally spaced plan.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`, `start_hz <= 0` or `spacing_hz <= 0` (a plan
    /// with a single channel may pass any positive spacing).
    pub fn new(start_hz: f64, spacing_hz: f64, count: usize) -> Self {
        assert!(count > 0, "a plan needs at least one channel");
        assert!(start_hz > 0.0 && spacing_hz > 0.0, "frequencies must be positive");
        FrequencyPlan { start_hz, spacing_hz, count }
    }

    /// A plan with the FCC band edges but only `count` channels — used by the
    /// channel-count ablation experiments.
    ///
    /// # Panics
    ///
    /// Panics if `count < 2`.
    pub fn fcc_us_subsampled(count: usize) -> Self {
        assert!(count >= 2, "need at least two channels to span the band");
        let spacing = (FCC_BAND_END_HZ - FCC_BAND_START_HZ) / (count as f64 - 1.0);
        FrequencyPlan { start_hz: FCC_BAND_START_HZ, spacing_hz: spacing, count }
    }

    /// Number of channels.
    #[inline]
    pub fn channel_count(&self) -> usize {
        self.count
    }

    /// Centre frequency of channel `index`, Hz.
    ///
    /// # Panics
    ///
    /// Panics if `index >= channel_count()`.
    #[inline]
    pub fn frequency_hz(&self, index: usize) -> f64 {
        assert!(index < self.count, "channel {index} out of range 0..{}", self.count);
        self.start_hz + self.spacing_hz * index as f64
    }

    /// All channel frequencies in ascending order, Hz.
    pub fn frequencies_hz(&self) -> Vec<f64> {
        (0..self.count).map(|i| self.frequency_hz(i)).collect()
    }

    /// Channel spacing, Hz.
    #[inline]
    pub fn spacing_hz(&self) -> f64 {
        self.spacing_hz
    }

    /// Lowest channel frequency, Hz.
    #[inline]
    pub fn start_hz(&self) -> f64 {
        self.start_hz
    }

    /// Highest channel frequency, Hz.
    #[inline]
    pub fn end_hz(&self) -> f64 {
        self.frequency_hz(self.count - 1)
    }

    /// Band span from first to last channel, Hz.
    #[inline]
    pub fn span_hz(&self) -> f64 {
        self.end_hz() - self.start_hz
    }

    /// Mean of the channel frequencies, Hz.
    #[inline]
    pub fn center_hz(&self) -> f64 {
        (self.start_hz + self.end_hz()) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcc_plan_matches_paper() {
        let p = FrequencyPlan::fcc_us();
        assert_eq!(p.channel_count(), 50);
        assert_eq!(p.frequency_hz(0), 902.75e6);
        assert_eq!(p.frequency_hz(1), 903.25e6);
        assert_eq!(p.end_hz(), 927.25e6);
        assert!((p.span_hz() - 24.5e6).abs() < 1.0);
        assert!((p.center_hz() - 915e6).abs() < 1.0);
    }

    #[test]
    fn frequencies_hz_is_sorted_and_complete() {
        let p = FrequencyPlan::fcc_us();
        let f = p.frequencies_hz();
        assert_eq!(f.len(), 50);
        assert!(f.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn subsampled_plan_keeps_band_edges() {
        let p = FrequencyPlan::fcc_us_subsampled(10);
        assert_eq!(p.channel_count(), 10);
        assert_eq!(p.frequency_hz(0), 902.75e6);
        assert!((p.end_hz() - 927.25e6).abs() < 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_channel_panics() {
        let p = FrequencyPlan::fcc_us();
        let _ = p.frequency_hz(50);
    }

    #[test]
    #[should_panic]
    fn zero_count_panics() {
        let _ = FrequencyPlan::new(900e6, 1e6, 0);
    }
}
