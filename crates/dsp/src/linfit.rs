//! Line fitting.
//!
//! The multi-frequency phase model (paper Eq. 6) turns every antenna's
//! 50-channel observation into the slope and intercept of a straight line,
//! so line fitting quality directly bounds sensing accuracy. Three fitters
//! are provided:
//!
//! * [`ols`] — ordinary least squares, the default for clean channels;
//! * [`weighted_ols`] — per-point weights (e.g. read counts per channel);
//! * [`theil_sen`] — median-of-slopes, used to seed the robust multipath
//!   rejection with an estimate that tolerates up to ~29 % corrupted
//!   channels.

use crate::stats;
use crate::workspace::{fit_diagnostics, FitWorkspace};

/// Result of a straight-line fit `y ≈ slope · x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ [0, 1] (1 = perfect line).
    /// Defined as 0 when the dependent variable has zero variance and the
    /// fit is exact; `NaN` never escapes.
    pub r_squared: f64,
    /// Standard deviation of the residuals.
    pub residual_std: f64,
    /// Number of points used.
    pub n: usize,
}

impl LineFit {
    /// Predicted value at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Residuals `y − prediction` for the given data.
    ///
    /// Allocates a fresh vector per call — kept for external callers'
    /// convenience. Hot paths inside this workspace use
    /// [`LineFit::residuals_into`] instead.
    pub fn residuals(&self, xs: &[f64], ys: &[f64]) -> Vec<f64> {
        xs.iter().zip(ys).map(|(&x, &y)| y - self.predict(x)).collect()
    }

    /// Writes the residuals `y − prediction` into `out` without
    /// allocating. `out` must already have the points' length.
    ///
    /// # Panics
    ///
    /// Panics when `xs`, `ys` and `out` lengths disagree.
    pub fn residuals_into(&self, xs: &[f64], ys: &[f64], out: &mut [f64]) {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert_eq!(xs.len(), out.len(), "output length mismatch");
        for ((&x, &y), o) in xs.iter().zip(ys).zip(out.iter_mut()) {
            *o = y - self.predict(x);
        }
    }
}

/// Errors returned by the fitting routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two points (or two distinct x values) were supplied.
    TooFewPoints,
    /// `xs` and `ys` (or `weights`) have different lengths.
    LengthMismatch,
    /// All x values coincide; the slope is undefined.
    DegenerateX,
    /// A weight was negative or all weights were zero.
    BadWeights,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::TooFewPoints => write!(f, "need at least two points to fit a line"),
            FitError::LengthMismatch => write!(f, "input slices have different lengths"),
            FitError::DegenerateX => write!(f, "all x values coincide; slope undefined"),
            FitError::BadWeights => write!(f, "weights must be non-negative with positive sum"),
        }
    }
}

impl std::error::Error for FitError {}

/// Ordinary least-squares line fit.
///
/// # Errors
///
/// Returns [`FitError`] when fewer than two points are given, the slices
/// differ in length, or all x values coincide.
///
/// # Example
///
/// ```
/// use rfp_dsp::linfit::ols;
/// let fit = ols(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0])?;
/// assert!((fit.slope - 2.0).abs() < 1e-12);
/// assert!((fit.intercept - 1.0).abs() < 1e-12);
/// # Ok::<(), rfp_dsp::linfit::FitError>(())
/// ```
pub fn ols(xs: &[f64], ys: &[f64]) -> Result<LineFit, FitError> {
    // Streamed unit-weight specialization of [`weighted_ols`]: identical
    // arithmetic (multiplying by a 1.0 weight is exact), no weight vector.
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    let wsum = xs.len() as f64;
    let xbar = xs.iter().sum::<f64>() / wsum;
    let ybar = ys.iter().sum::<f64>() / wsum;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - xbar) * (x - xbar);
        sxy += (x - xbar) * (y - ybar);
    }
    if sxx <= 0.0 {
        return Err(FitError::DegenerateX);
    }
    let slope = sxy / sxx;
    let intercept = ybar - slope * xbar;
    let (r_squared, residual_std) = fit_diagnostics(xs, ys, slope, intercept, ybar);
    Ok(LineFit { slope, intercept, r_squared, residual_std, n: xs.len() })
}

/// Weighted least-squares line fit.
///
/// # Errors
///
/// As [`ols`], plus [`FitError::BadWeights`] when a weight is negative or
/// all weights are zero.
pub fn weighted_ols(xs: &[f64], ys: &[f64], weights: &[f64]) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() || xs.len() != weights.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    if weights.iter().any(|&w| w < 0.0) {
        return Err(FitError::BadWeights);
    }
    let wsum: f64 = weights.iter().sum();
    if wsum <= 0.0 {
        return Err(FitError::BadWeights);
    }
    let xbar = xs.iter().zip(weights).map(|(x, w)| x * w).sum::<f64>() / wsum;
    let ybar = ys.iter().zip(weights).map(|(y, w)| y * w).sum::<f64>() / wsum;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for ((&x, &y), &w) in xs.iter().zip(ys).zip(weights) {
        sxx += w * (x - xbar) * (x - xbar);
        sxy += w * (x - xbar) * (y - ybar);
    }
    if sxx <= 0.0 {
        return Err(FitError::DegenerateX);
    }
    let slope = sxy / sxx;
    let intercept = ybar - slope * xbar;

    // Unweighted diagnostics over the supplied points (weights affect the
    // estimate, not the reported residual scale), streamed without a
    // residual vector.
    let (r_squared, residual_std) = fit_diagnostics(xs, ys, slope, intercept, ybar);
    Ok(LineFit { slope, intercept, r_squared, residual_std, n: xs.len() })
}

/// Theil–Sen estimator: slope is the median of all pairwise slopes,
/// intercept the median of `y − slope·x`.
///
/// Robust to up to ~29 % arbitrarily corrupted points, which is what the
/// multipath-suppression pass needs for its initial estimate. O(n²) pairs —
/// trivially fast for 50 channels.
///
/// # Errors
///
/// As [`ols`].
pub fn theil_sen(xs: &[f64], ys: &[f64]) -> Result<LineFit, FitError> {
    theil_sen_with(&mut FitWorkspace::default(), xs, ys)
}

/// [`theil_sen`] against caller-owned scratch: the O(n²) pairwise slopes
/// land in the workspace's slope buffer and the medians are taken by
/// in-place selection ([`stats::median_in_place`]) — zero allocations once
/// the buffers are sized. Returns the same fit as [`theil_sen`].
///
/// # Errors
///
/// As [`theil_sen`].
pub fn theil_sen_with(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    ws.slopes.clear();
    for i in 0..xs.len() {
        for j in (i + 1)..xs.len() {
            let dx = xs[j] - xs[i];
            if dx.abs() > 0.0 {
                ws.slopes.push((ys[j] - ys[i]) / dx);
            }
        }
    }
    if ws.slopes.is_empty() {
        return Err(FitError::DegenerateX);
    }
    let slope = stats::median_in_place(&mut ws.slopes).expect("nonempty");
    theil_sen_from_slope(ws, xs, ys, slope)
}

/// Completes a Theil–Sen fit from a precomputed median pairwise `slope`:
/// intercept is the median of `y − slope·x`, diagnostics are the shared
/// ones. Passing the slope [`theil_sen_with`] would compute on the same
/// columns yields a bit-identical [`LineFit`] — this is the tail of that
/// function, split out so incremental callers that maintain the O(n²)
/// pairwise-slope multiset across sliding-window advances can skip the
/// pair enumeration without changing a single output bit.
///
/// # Errors
///
/// As [`ols`] (length mismatch, fewer than two points).
pub fn theil_sen_from_slope(
    ws: &mut FitWorkspace,
    xs: &[f64],
    ys: &[f64],
    slope: f64,
) -> Result<LineFit, FitError> {
    if xs.len() != ys.len() {
        return Err(FitError::LengthMismatch);
    }
    if xs.len() < 2 {
        return Err(FitError::TooFewPoints);
    }
    ws.scratch.clear();
    ws.scratch.extend(xs.iter().zip(ys).map(|(&x, &y)| y - slope * x));
    let intercept = stats::median_in_place(&mut ws.scratch).expect("nonempty");

    let ybar = stats::mean(ys).expect("nonempty");
    let (r_squared, residual_std) = fit_diagnostics(xs, ys, slope, intercept, ybar);
    Ok(LineFit { slope, intercept, r_squared, residual_std, n: xs.len() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ols_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.5 * x - 1.0).collect();
        let fit = ols(&xs, &ys).unwrap();
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
        assert!(fit.residual_std < 1e-12);
        assert_eq!(fit.n, 4);
    }

    #[test]
    fn ols_errors() {
        assert_eq!(ols(&[1.0], &[1.0]).unwrap_err(), FitError::TooFewPoints);
        assert_eq!(ols(&[1.0, 2.0], &[1.0]).unwrap_err(), FitError::LengthMismatch);
        assert_eq!(
            ols(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err(),
            FitError::DegenerateX
        );
    }

    #[test]
    fn ols_r_squared_degrades_with_noise() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let clean: Vec<f64> = xs.iter().map(|x| 0.1 * x).collect();
        let noisy: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 0.1 * x + if i % 2 == 0 { 3.0 } else { -3.0 })
            .collect();
        let f1 = ols(&xs, &clean).unwrap();
        let f2 = ols(&xs, &noisy).unwrap();
        assert!(f1.r_squared > f2.r_squared);
        assert!(f2.residual_std > 2.5);
    }

    #[test]
    fn weighted_ols_ignores_zero_weight_points() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 2.0, 100.0];
        let w = [1.0, 1.0, 1.0, 0.0];
        let fit = weighted_ols(&xs, &ys, &w).unwrap();
        assert!((fit.slope - 1.0).abs() < 1e-12);
        assert!((fit.intercept).abs() < 1e-12);
    }

    #[test]
    fn weighted_ols_bad_weights() {
        let xs = [0.0, 1.0];
        let ys = [0.0, 1.0];
        assert_eq!(
            weighted_ols(&xs, &ys, &[-1.0, 1.0]).unwrap_err(),
            FitError::BadWeights
        );
        assert_eq!(
            weighted_ols(&xs, &ys, &[0.0, 0.0]).unwrap_err(),
            FitError::BadWeights
        );
    }

    #[test]
    fn constant_y_gives_zero_slope_full_r2() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [5.0, 5.0, 5.0];
        let fit = ols(&xs, &ys).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    fn theil_sen_matches_ols_on_clean_data() {
        let xs: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| -0.7 * x + 4.0).collect();
        let fit = theil_sen(&xs, &ys).unwrap();
        assert!((fit.slope + 0.7).abs() < 1e-12);
        assert!((fit.intercept - 4.0).abs() < 1e-12);
    }

    #[test]
    fn theil_sen_shrugs_off_outliers() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let mut ys: Vec<f64> = xs.iter().map(|x| 1.5 * x).collect();
        // Corrupt 5 of 20 points badly, all at high x so OLS tilts.
        for i in [15usize, 16, 17, 18, 19] {
            ys[i] += 40.0;
        }
        let ts = theil_sen(&xs, &ys).unwrap();
        let ls = ols(&xs, &ys).unwrap();
        assert!((ts.slope - 1.5).abs() < 0.05, "theil-sen slope {}", ts.slope);
        assert!((ls.slope - 1.5).abs() > 0.1, "ols should be pulled by outliers");
    }

    #[test]
    fn predict_and_residuals() {
        let fit = ols(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        assert!((fit.predict(2.0) - 5.0).abs() < 1e-12);
        let r = fit.residuals(&[0.0, 1.0], &[1.0, 3.0]);
        assert!(r.iter().all(|x| x.abs() < 1e-12));
    }

    #[test]
    fn residuals_into_matches_residuals() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 2.9, 5.2, 6.8];
        let fit = ols(&xs, &ys).unwrap();
        let alloc = fit.residuals(&xs, &ys);
        let mut buf = [0.0; 4];
        fit.residuals_into(&xs, &ys, &mut buf);
        assert_eq!(alloc.as_slice(), buf.as_slice());
    }

    #[test]
    #[should_panic(expected = "output length mismatch")]
    fn residuals_into_length_checked() {
        let fit = ols(&[0.0, 1.0], &[1.0, 3.0]).unwrap();
        let mut buf = [0.0; 3];
        fit.residuals_into(&[0.0, 1.0], &[1.0, 3.0], &mut buf);
    }

    #[test]
    fn streaming_fits_are_bit_identical_to_reference() {
        let xs: Vec<f64> = (0..37).map(|i| 9.02e8 + 5e5 * i as f64).collect();
        let ys: Vec<f64> =
            xs.iter().enumerate().map(|(i, x)| 1.3e-8 * x + ((i * 31 % 7) as f64) * 0.01).collect();
        assert_eq!(ols(&xs, &ys).unwrap(), crate::reference::ols(&xs, &ys).unwrap());
        assert_eq!(
            theil_sen(&xs, &ys).unwrap(),
            crate::reference::theil_sen(&xs, &ys).unwrap()
        );
        let w: Vec<f64> = (0..xs.len()).map(|i| 1.0 + (i % 3) as f64).collect();
        assert_eq!(
            weighted_ols(&xs, &ys, &w).unwrap(),
            crate::reference::weighted_ols(&xs, &ys, &w).unwrap()
        );
        // Workspace kernel == allocating API, buffers reused across calls.
        let mut ws = FitWorkspace::default();
        for rep in 0..3 {
            let shift = rep as f64 * 0.25;
            let ys2: Vec<f64> = ys.iter().map(|y| y + shift).collect();
            assert_eq!(
                theil_sen_with(&mut ws, &xs, &ys2).unwrap(),
                theil_sen(&xs, &ys2).unwrap()
            );
        }
    }
}
