//! Rectangular working regions and grid sampling.
//!
//! The paper deploys tags inside a 2 m × 2 m working region in front of the
//! antenna rack and evaluates on a 25-point grid. The same abstractions are
//! reused by the multi-start seeding of the joint solver, which scans a
//! coarse grid of candidate positions.

use crate::Vec2;

/// An axis-aligned rectangular region of the surveillance plane.
///
/// # Example
///
/// ```
/// use rfp_geom::{Region2, Vec2};
/// let r = Region2::new(Vec2::new(-1.0, 0.5), Vec2::new(1.0, 2.5));
/// assert!(r.contains(Vec2::new(0.0, 1.0)));
/// assert_eq!(r.center(), Vec2::new(0.0, 1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region2 {
    min: Vec2,
    max: Vec2,
}

impl Region2 {
    /// Creates a region from two opposite corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise strictly below `max`.
    pub fn new(min: Vec2, max: Vec2) -> Self {
        assert!(min.x < max.x && min.y < max.y, "degenerate region: {min} .. {max}");
        Region2 { min, max }
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Vec2 {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Vec2 {
        self.max
    }

    /// Width (x extent) in metres.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (y extent) in metres.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Geometric centre.
    #[inline]
    pub fn center(&self) -> Vec2 {
        (self.min + self.max) / 2.0
    }

    /// Whether the point lies inside (inclusive of the boundary).
    #[inline]
    pub fn contains(&self, p: Vec2) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the region.
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        Vec2::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// A regular `nx × ny` grid of points spanning the region, inset from the
    /// boundary by half a cell (so points are cell centres).
    ///
    /// # Panics
    ///
    /// Panics if `nx` or `ny` is zero.
    pub fn grid(&self, nx: usize, ny: usize) -> Grid2 {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell per axis");
        Grid2 { region: *self, nx, ny, i: 0 }
    }

    /// Expands the region by `margin` metres on every side.
    pub fn expanded(&self, margin: f64) -> Region2 {
        Region2::new(
            self.min - Vec2::new(margin, margin),
            self.max + Vec2::new(margin, margin),
        )
    }
}

/// Iterator over the cell-centre points of a regular grid on a [`Region2`].
///
/// Produced by [`Region2::grid`]; yields points row-major (x fastest).
#[derive(Debug, Clone)]
pub struct Grid2 {
    region: Region2,
    nx: usize,
    ny: usize,
    i: usize,
}

impl Grid2 {
    /// Total number of grid points.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// Whether the grid is empty (never true for grids from [`Region2::grid`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Iterator for Grid2 {
    type Item = Vec2;

    fn next(&mut self) -> Option<Vec2> {
        if self.i >= self.nx * self.ny {
            return None;
        }
        let ix = self.i % self.nx;
        let iy = self.i / self.nx;
        self.i += 1;
        let fx = (ix as f64 + 0.5) / self.nx as f64;
        let fy = (iy as f64 + 0.5) / self.ny as f64;
        Some(Vec2::new(
            self.region.min.x + fx * self.region.width(),
            self.region.min.y + fy * self.region.height(),
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.nx * self.ny - self.i;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Grid2 {}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Region2 {
        Region2::new(Vec2::new(0.0, 0.0), Vec2::new(2.0, 2.0))
    }

    #[test]
    fn region_basic_properties() {
        let r = unit();
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 2.0);
        assert_eq!(r.center(), Vec2::new(1.0, 1.0));
        assert!(r.contains(Vec2::new(0.0, 0.0)));
        assert!(r.contains(Vec2::new(2.0, 2.0)));
        assert!(!r.contains(Vec2::new(2.1, 1.0)));
    }

    #[test]
    fn clamp_moves_outside_points_to_boundary() {
        let r = unit();
        assert_eq!(r.clamp(Vec2::new(-1.0, 3.0)), Vec2::new(0.0, 2.0));
        assert_eq!(r.clamp(Vec2::new(1.0, 1.0)), Vec2::new(1.0, 1.0));
    }

    #[test]
    fn grid_count_and_containment() {
        let r = unit();
        let pts: Vec<Vec2> = r.grid(5, 5).collect();
        assert_eq!(pts.len(), 25);
        assert!(pts.iter().all(|&p| r.contains(p)));
        // Cell centres: first point is at (0.2, 0.2) for a 5x5 grid on [0,2]².
        assert!((pts[0].x - 0.2).abs() < 1e-12);
        assert!((pts[0].y - 0.2).abs() < 1e-12);
        // Last point mirrors it.
        assert!((pts[24].x - 1.8).abs() < 1e-12);
    }

    #[test]
    fn grid_is_exact_size() {
        let g = unit().grid(3, 4);
        assert_eq!(g.len(), 12);
        assert_eq!(g.size_hint(), (12, Some(12)));
        assert_eq!(g.count(), 12);
    }

    #[test]
    fn expanded_grows_all_sides() {
        let r = unit().expanded(0.5);
        assert_eq!(r.min(), Vec2::new(-0.5, -0.5));
        assert_eq!(r.max(), Vec2::new(2.5, 2.5));
    }

    #[test]
    #[should_panic]
    fn degenerate_region_panics() {
        let _ = Region2::new(Vec2::new(1.0, 0.0), Vec2::new(1.0, 2.0));
    }

    #[test]
    #[should_panic]
    fn zero_grid_panics() {
        let _ = unit().grid(0, 3);
    }
}
