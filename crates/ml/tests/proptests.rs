//! Property-based tests for the ML primitives.

use proptest::prelude::*;
use rfp_ml::dataset::Dataset;
use rfp_ml::dtw::dtw_distance;
use rfp_ml::knn::KnnClassifier;
use rfp_ml::metrics::ConfusionMatrix;
use rfp_ml::scaler::StandardScaler;
use rfp_ml::tree::{DecisionTree, TreeConfig};
use rfp_ml::Classifier;

fn labelled_points() -> impl Strategy<Value = Vec<(Vec<f64>, usize)>> {
    proptest::collection::vec(
        (proptest::collection::vec(-10.0f64..10.0, 3), 0usize..3),
        6..40,
    )
}

proptest! {
    #[test]
    fn stratified_split_partitions_exactly(points in labelled_points(), seed in 0u64..100) {
        let mut ds = Dataset::new(3);
        for (f, l) in &points {
            ds.push(f.clone(), *l);
        }
        let (train, test) = ds.stratified_split(0.6, seed);
        prop_assert_eq!(train.len() + test.len(), ds.len());
        // Per-class conservation.
        let total = ds.class_counts();
        let t1 = train.class_counts();
        let t2 = test.class_counts();
        for c in 0..3 {
            prop_assert_eq!(t1[c] + t2[c], total[c]);
        }
    }

    #[test]
    fn scaler_inverse_consistency(points in labelled_points()) {
        let mut ds = Dataset::new(3);
        for (f, l) in &points {
            ds.push(f.clone(), *l);
        }
        let s = StandardScaler::fit(&ds);
        let t = s.transform_dataset(&ds);
        // Column means ≈ 0 after transform.
        for d in 0..3 {
            let col: Vec<f64> = t.features().iter().map(|f| f[d]).collect();
            let mean = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn knn_k1_memorizes(points in labelled_points()) {
        // Deduplicate identical feature vectors (they may carry conflicting
        // labels, which 1-NN cannot memorize).
        let mut seen: Vec<Vec<f64>> = Vec::new();
        let mut ds = Dataset::new(3);
        for (f, l) in &points {
            if !seen.iter().any(|s| s == f) {
                seen.push(f.clone());
                ds.push(f.clone(), *l);
            }
        }
        let knn = KnnClassifier::fit(&ds, 1);
        for i in 0..ds.len() {
            let (f, l) = ds.sample(i);
            prop_assert_eq!(knn.predict(f), l);
        }
    }

    #[test]
    fn tree_consistent_on_training_data_when_separable(
        gap in 1.0f64..10.0,
        n in 4usize..30,
    ) {
        // Two classes separated by `gap` along one axis: the tree must fit
        // the training set perfectly.
        let mut ds = Dataset::new(2);
        for i in 0..n {
            let x = i as f64 * 0.1;
            ds.push(vec![x], 0);
            ds.push(vec![x + gap + n as f64 * 0.1], 1);
        }
        let cfg = TreeConfig { min_samples_leaf: 1, ..Default::default() };
        let t = DecisionTree::fit(&ds, &cfg);
        for i in 0..ds.len() {
            let (f, l) = ds.sample(i);
            prop_assert_eq!(t.predict(f), l);
        }
    }

    #[test]
    fn dtw_triangle_like_properties(
        a in proptest::collection::vec(-5.0f64..5.0, 1..20),
        b in proptest::collection::vec(-5.0f64..5.0, 1..20),
    ) {
        let dab = dtw_distance(&a, &b, None);
        let dba = dtw_distance(&b, &a, None);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry");
        prop_assert!(dab >= 0.0);
        prop_assert!(dtw_distance(&a, &a, None) < 1e-12, "identity");
        // Lockstep distance upper-bounds DTW for equal lengths.
        if a.len() == b.len() {
            let lockstep: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
            prop_assert!(dab <= lockstep + 1e-9);
        }
    }

    #[test]
    fn confusion_matrix_accuracy_bounds(
        truth in proptest::collection::vec(0usize..4, 1..50),
        seed in 0usize..4,
    ) {
        let predicted: Vec<usize> = truth.iter().map(|&t| (t + seed) % 4).collect();
        let cm = ConfusionMatrix::from_predictions(4, &truth, &predicted);
        let acc = cm.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        if seed == 0 {
            prop_assert!((acc - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(acc < 1e-12);
        }
        prop_assert_eq!(cm.total(), truth.len());
    }
}
