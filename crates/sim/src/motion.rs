//! Tag motion models.
//!
//! RF-Prism assumes the tag is static over one 10 s hop round and detects
//! violations with the error detector (paper §V-C). The simulator therefore
//! needs tags that move or rotate *during* the hop sequence so that the
//! detector has something to catch.

use rfp_geom::{Vec2, Vec3};
use rfp_phys::polarization::planar_dipole;

/// A tag's kinematic state over time: position and dipole direction as a
/// function of the time since the hop round started.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Motion {
    /// Stationary tag.
    Static {
        /// Tag position, metres.
        position: Vec3,
        /// Unit dipole direction.
        dipole: Vec3,
    },
    /// Constant-velocity translation (e.g. conveyor belt).
    Linear {
        /// Position at t = 0, metres.
        start: Vec3,
        /// Velocity, m/s.
        velocity: Vec3,
        /// Unit dipole direction (constant).
        dipole: Vec3,
    },
    /// In-place rotation of the dipole about an axis.
    Rotating {
        /// Tag position, metres (constant).
        position: Vec3,
        /// Dipole direction at t = 0 (unit).
        dipole0: Vec3,
        /// Rotation axis (unit).
        axis: Vec3,
        /// Angular rate, rad/s.
        omega: f64,
    },
}

impl Motion {
    /// A static tag on the z = 0 surveillance plane with planar dipole
    /// orientation `alpha` (radians from +x) — the 2-D experiment setup.
    pub fn planar_static(position: Vec2, alpha: f64) -> Self {
        Motion::Static { position: position.with_z(0.0), dipole: planar_dipole(alpha) }
    }

    /// A tag translating in the surveillance plane at `velocity` m/s.
    pub fn planar_linear(start: Vec2, velocity: Vec2, alpha: f64) -> Self {
        Motion::Linear {
            start: start.with_z(0.0),
            velocity: velocity.with_z(0.0),
            dipole: planar_dipole(alpha),
        }
    }

    /// A tag spinning on its mounting face at `omega` rad/s starting from
    /// orientation `alpha0` (rotation about the face normal, +y).
    pub fn planar_rotating(position: Vec2, alpha0: f64, omega: f64) -> Self {
        Motion::Rotating {
            position: position.with_z(0.0),
            dipole0: planar_dipole(alpha0),
            axis: -Vec3::Y,
            omega,
        }
    }

    /// Position at time `t` seconds.
    pub fn position(&self, t: f64) -> Vec3 {
        match *self {
            Motion::Static { position, .. } => position,
            Motion::Linear { start, velocity, .. } => start + velocity * t,
            Motion::Rotating { position, .. } => position,
        }
    }

    /// Dipole direction at time `t` seconds (unit vector).
    pub fn dipole(&self, t: f64) -> Vec3 {
        match *self {
            Motion::Static { dipole, .. } => dipole,
            Motion::Linear { dipole, .. } => dipole,
            Motion::Rotating { dipole0, axis, omega, .. } => {
                dipole0.rotated_about(axis, omega * t)
            }
        }
    }

    /// Whether the tag is truly static (used by tests and ground truth).
    pub fn is_static(&self) -> bool {
        match *self {
            Motion::Static { .. } => true,
            Motion::Linear { velocity, .. } => velocity.norm() == 0.0,
            Motion::Rotating { omega, .. } => omega == 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::FRAC_PI_2;

    #[test]
    fn static_tag_never_moves() {
        let m = Motion::planar_static(Vec2::new(1.0, 2.0), 0.3);
        assert_eq!(m.position(0.0), m.position(100.0));
        assert_eq!(m.dipole(0.0), m.dipole(100.0));
        assert!(m.is_static());
    }

    #[test]
    fn linear_motion_advances() {
        let m = Motion::planar_linear(Vec2::ZERO, Vec2::new(0.1, 0.0), 0.0);
        assert_eq!(m.position(10.0), Vec3::new(1.0, 0.0, 0.0));
        assert!(!m.is_static());
        let frozen = Motion::planar_linear(Vec2::ZERO, Vec2::ZERO, 0.0);
        assert!(frozen.is_static());
    }

    #[test]
    fn rotation_spins_dipole_only() {
        let m = Motion::planar_rotating(Vec2::new(0.5, 0.5), 0.0, FRAC_PI_2);
        assert_eq!(m.position(0.0), m.position(3.0));
        let d1 = m.dipole(1.0);
        // After 1 s at π/2 rad/s the dipole points along +z (rotated in the
        // facing plane).
        assert!(d1.distance(Vec3::Z) < 1e-12, "d1 = {d1}");
        assert!(!m.is_static());
    }

    #[test]
    fn planar_dipole_orientation_matches_alpha() {
        let m = Motion::planar_static(Vec2::ZERO, 0.7);
        let d = m.dipole(0.0);
        assert!((d.z.atan2(d.x) - 0.7).abs() < 1e-12);
        assert_eq!(d.y, 0.0);
    }
}
