//! The metrics registry: named counters, gauges and fixed-bucket
//! histograms behind compile-time metric descriptors.
//!
//! The design goal is an **allocation-free hot path**: a crate that wants
//! to be instrumented declares one `&'static [MetricDef]` descriptor table
//! and addresses every metric by its index into that table. A [`Registry`]
//! allocates its storage once, at construction, from the descriptor table;
//! recording is then a bounds-checked array access plus an integer add (or
//! a bucket scan for histograms) — no hashing, no string comparison, no
//! allocation.
//!
//! Registries built from the *same* descriptor table merge element-wise
//! ([`Registry::merge`]): counters and histogram buckets add, gauges take
//! the maximum. Addition is commutative, so merging per-worker registries
//! in any fixed order yields the same counter values as a sequential run —
//! the property the batch engine's determinism contract rests on.

/// What kind of value a metric accumulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone `u64` sum. Merge: addition.
    Counter,
    /// Last-set `f64` level. Merge: maximum (the only commutative choice
    /// that keeps per-worker merges order-independent).
    Gauge,
    /// Fixed-bucket `f64` distribution. Merge: element-wise addition.
    Histogram,
}

/// Compile-time description of one metric: its stable name (dotted
/// lowercase, e.g. `solver2d.residual_evals`), kind, one-line help text
/// and — for histograms — the inclusive upper bounds of its buckets
/// (ascending; an implicit `+Inf` bucket is always appended).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricDef {
    /// Stable dotted name, used by every sink.
    pub name: &'static str,
    /// Counter, gauge or histogram.
    pub kind: MetricKind,
    /// One-line description for humans and the Prometheus `# HELP` line.
    pub help: &'static str,
    /// Ascending inclusive bucket upper bounds (histograms only; empty
    /// for counters and gauges).
    pub buckets: &'static [f64],
}

impl MetricDef {
    /// Descriptor for a counter.
    pub const fn counter(name: &'static str, help: &'static str) -> Self {
        MetricDef { name, kind: MetricKind::Counter, help, buckets: &[] }
    }

    /// Descriptor for a gauge.
    pub const fn gauge(name: &'static str, help: &'static str) -> Self {
        MetricDef { name, kind: MetricKind::Gauge, help, buckets: &[] }
    }

    /// Descriptor for a fixed-bucket histogram; `buckets` are the
    /// ascending inclusive upper bounds (`+Inf` is implicit).
    pub const fn histogram(
        name: &'static str,
        help: &'static str,
        buckets: &'static [f64],
    ) -> Self {
        MetricDef { name, kind: MetricKind::Histogram, help, buckets }
    }
}

/// A fixed-bucket histogram: per-bucket counts plus count/sum/min/max.
///
/// Bucket `i` counts observations `v <= bounds[i]` that exceeded every
/// earlier bound; the final bucket (index `bounds.len()`) is the implicit
/// `+Inf` overflow bucket. Bounds come from the [`MetricDef`], so two
/// histograms of the same metric always merge bucket-for-bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// An empty histogram over `bounds`.
    pub fn new(bounds: &'static [f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// The ascending inclusive bucket upper bounds (without the implicit
    /// `+Inf` overflow bucket).
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket counts; one longer than [`Histogram::bounds`] — the last
    /// entry is the `+Inf` overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observed value (`+Inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observed value (`-Inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts:
    /// the bucket holding the target rank is found by a cumulative scan,
    /// then the value is linearly interpolated across that bucket's span.
    /// The first bucket interpolates from the observed minimum and the
    /// `+Inf` overflow bucket from its lower bound to the observed
    /// maximum, so the estimate is always inside `[min, max]`. `None`
    /// when the histogram is empty.
    ///
    /// The estimate is exact at bucket edges and off by at most one
    /// bucket width elsewhere — with log-spaced latency buckets that is a
    /// bounded *relative* error, which is what p50/p90/p99 reporting
    /// needs.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut below = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                below += c;
                continue;
            }
            if (below + c) as f64 >= rank {
                let lo = if i == 0 { self.min } else { self.bounds[i - 1].max(self.min) };
                let hi = if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
                if hi <= lo {
                    return Some(lo);
                }
                let frac = ((rank - below as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            below += c;
        }
        Some(self.max)
    }

    /// Element-wise merge of another histogram over the same bounds.
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert!(std::ptr::eq(self.bounds, other.bounds));
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One metric's current value inside a [`Registry`].
#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// The metrics registry: storage for one descriptor table's worth of
/// metrics, addressed by descriptor index. See the module docs for the
/// design rationale; see [`Registry::merge`] for the combination rules.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    defs: &'static [MetricDef],
    values: Vec<MetricValue>,
}

impl Registry {
    /// Allocates zeroed storage for every metric in `defs`. This is the
    /// only allocating operation; recording never allocates.
    pub fn new(defs: &'static [MetricDef]) -> Self {
        let values = defs
            .iter()
            .map(|d| match d.kind {
                MetricKind::Counter => MetricValue::Counter(0),
                MetricKind::Gauge => MetricValue::Gauge(0.0),
                MetricKind::Histogram => MetricValue::Histogram(Histogram::new(d.buckets)),
            })
            .collect();
        Registry { defs, values }
    }

    /// The descriptor table this registry was built from.
    pub fn defs(&self) -> &'static [MetricDef] {
        self.defs
    }

    /// Adds `n` to counter `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or not a counter.
    #[inline]
    pub fn add(&mut self, idx: usize, n: u64) {
        match &mut self.values[idx] {
            MetricValue::Counter(c) => *c += n,
            _ => panic!("metric {} is not a counter", self.defs[idx].name),
        }
    }

    /// Sets gauge `idx` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or not a gauge.
    #[inline]
    pub fn set(&mut self, idx: usize, v: f64) {
        match &mut self.values[idx] {
            MetricValue::Gauge(g) => *g = v,
            _ => panic!("metric {} is not a gauge", self.defs[idx].name),
        }
    }

    /// Records `v` into histogram `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or not a histogram.
    #[inline]
    pub fn observe(&mut self, idx: usize, v: f64) {
        match &mut self.values[idx] {
            MetricValue::Histogram(h) => h.observe(v),
            _ => panic!("metric {} is not a histogram", self.defs[idx].name),
        }
    }

    /// Current value of counter `idx` (0 for other kinds).
    pub fn counter(&self, idx: usize) -> u64 {
        match &self.values[idx] {
            MetricValue::Counter(c) => *c,
            _ => 0,
        }
    }

    /// Current value of gauge `idx` (0 for other kinds).
    pub fn gauge(&self, idx: usize) -> f64 {
        match &self.values[idx] {
            MetricValue::Gauge(g) => *g,
            _ => 0.0,
        }
    }

    /// Histogram `idx`, if that metric is a histogram.
    pub fn histogram(&self, idx: usize) -> Option<&Histogram> {
        match &self.values[idx] {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Merges another registry built from the same descriptor table:
    /// counters and histograms add element-wise, gauges take the maximum.
    ///
    /// # Panics
    ///
    /// Panics if the two registries use different descriptor tables.
    pub fn merge(&mut self, other: &Registry) {
        assert!(
            std::ptr::eq(self.defs, other.defs),
            "cannot merge registries over different metric tables"
        );
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            match (a, b) {
                (MetricValue::Counter(x), MetricValue::Counter(y)) => *x += y,
                (MetricValue::Gauge(x), MetricValue::Gauge(y)) => *x = x.max(*y),
                (MetricValue::Histogram(x), MetricValue::Histogram(y)) => x.merge(y),
                _ => unreachable!("same defs imply same kinds"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[f64] = &[1.0, 10.0, 100.0];
    const DEFS: &[MetricDef] = &[
        MetricDef::counter("test.count", "a counter"),
        MetricDef::gauge("test.level", "a gauge"),
        MetricDef::histogram("test.dist", "a histogram", BOUNDS),
    ];

    #[test]
    fn histogram_bucketing_places_values_correctly() {
        let mut h = Histogram::new(BOUNDS);
        // At, below, between, and beyond the bounds; bounds are inclusive.
        for v in [0.5, 1.0, 1.5, 10.0, 99.9, 100.0, 100.1, 1e9] {
            h.observe(v);
        }
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert!((h.min() - 0.5).abs() < 1e-12);
        assert!((h.max() - 1e9).abs() < 1.0);
        let expect_sum: f64 = 0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 100.0 + 100.1 + 1e9;
        assert!((h.sum() - expect_sum).abs() < 1e-6);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let mut h = Histogram::new(BOUNDS);
        // 10 observations spread uniformly over (0, 10]: buckets hold
        // [1] <=1.0 and [9] in (1, 10].
        for i in 1..=10 {
            h.observe(i as f64);
        }
        // p0 and p100 pin to the observed extremes.
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(10.0));
        // The median rank (5 of 10) lands in the (1, 10] bucket; the
        // interpolated estimate sits between the bucket edges and within
        // one bucket of the true median 5.5.
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 > 1.0 && p50 <= 10.0, "p50 = {p50}");
        let p90 = h.quantile(0.9).unwrap();
        assert!(p90 >= p50 && p90 <= 10.0, "p90 = {p90}");
        // Empty histogram has no quantiles.
        assert_eq!(Histogram::new(BOUNDS).quantile(0.5), None);
        // A single observation is its own quantile everywhere.
        let mut one = Histogram::new(BOUNDS);
        one.observe(42.0);
        assert_eq!(one.quantile(0.5), Some(42.0));
        assert_eq!(one.quantile(0.99), Some(42.0));
        // Overflow-bucket observations interpolate toward the max.
        let mut over = Histogram::new(BOUNDS);
        over.observe(500.0);
        over.observe(900.0);
        let p99 = over.quantile(0.99).unwrap();
        assert!((100.0..=900.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn empty_histogram_reports_infinities() {
        let h = Histogram::new(BOUNDS);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), f64::INFINITY);
        assert_eq!(h.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let mut a = Histogram::new(BOUNDS);
        let mut b = Histogram::new(BOUNDS);
        a.observe(0.5);
        a.observe(50.0);
        b.observe(5.0);
        b.observe(500.0);
        a.merge(&b);
        assert_eq!(a.bucket_counts(), &[1, 1, 1, 1]);
        assert_eq!(a.count(), 4);
        assert!((a.min() - 0.5).abs() < 1e-12);
        assert!((a.max() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn registry_records_and_merges() {
        let mut a = Registry::new(DEFS);
        a.add(0, 3);
        a.set(1, 2.0);
        a.observe(2, 5.0);
        let mut b = Registry::new(DEFS);
        b.add(0, 4);
        b.set(1, 7.0);
        b.observe(2, 50.0);
        a.merge(&b);
        assert_eq!(a.counter(0), 7);
        assert_eq!(a.gauge(1), 7.0); // max
        let h = a.histogram(2).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts(), &[0, 1, 1, 0]);
    }

    #[test]
    #[should_panic]
    fn kind_mismatch_panics() {
        let mut r = Registry::new(DEFS);
        r.add(1, 1); // gauge addressed as counter
    }
}
