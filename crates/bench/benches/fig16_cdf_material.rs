//! Fig. 16: localization error CDF with varying orientation *and material*
//! — RF-Prism vs MobiTagbot.
//!
//! Paper: RF-Prism 7.61 cm (still unchanged) vs MobiTagbot 24.94 cm
//! (~3.3× worse): the unmodelled material slope drags the hologram peak
//! far off. Our simulator's material slopes are calibrated against the
//! paper's Fig. 6 sweep magnitudes, which makes this bias somewhat larger
//! than the paper's testbed average (see EXPERIMENTS.md).

use rfp_bench::{compare, loc, report, setup};
use rfp_dsp::stats;
use rfp_phys::Material;
use rfp_sim::{MultipathEnvironment, Scene};

fn main() {
    report::header("Fig. 16", "CDF, varying orientation + material: RF-Prism vs MobiTagbot");
    // Even a tidy lab has residual multipath; a perfectly clean channel
    // would let the hologram reach unrealistic carrier-phase precision.
    let scene = Scene::standard_2d()
        .with_environment(MultipathEnvironment::cluttered(3, 73));
    let mut specs = loc::grid_material_specs(&scene, 2);
    // Rotate through the orientation sweep as well.
    for (i, s) in specs.iter_mut().enumerate() {
        s.alpha = setup::evaluation_orientations()[i % 6];
    }
    // MobiTagbot calibrated on the bare-carrier (plastic) state.
    let cmp = compare::mobitagbot_comparison(&scene, &specs, Material::Plastic);

    report::cdf_summary("RF-Prism", &cmp.prism_cm);
    report::cdf_summary("MobiTagbot", &cmp.mobitagbot_cm);
    println!();
    let prism_mean = stats::mean(&cmp.prism_cm).unwrap();
    let mtb_mean = stats::mean(&cmp.mobitagbot_cm).unwrap();
    report::row("RF-Prism mean", "7.61 cm", &report::cm(prism_mean));
    report::row("MobiTagbot mean", "24.94 cm", &report::cm(mtb_mean));

    // Shape: material changes devastate MobiTagbot, not RF-Prism.
    assert!(
        mtb_mean > 2.0 * prism_mean,
        "varying material must cost MobiTagbot dearly ({prism_mean} vs {mtb_mean})"
    );
    assert!(
        prism_mean < 20.0,
        "RF-Prism must stay in the centimetre regime ({prism_mean} cm)"
    );
}
