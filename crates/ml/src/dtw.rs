//! Dynamic Time Warping and the 1-NN DTW classifier.
//!
//! The Tagtag baseline (paper §VI-B) matches a query tag's phase-vs-channel
//! curve against labelled template curves with DTW and takes the label of
//! the closest template. DTW tolerates the small per-channel shifts that a
//! residual distance error leaves in the curve — which is exactly why
//! Tagtag survives *some* distance variation but degrades when the RSS
//! normalization is badly off (paper Fig. 18).

use crate::Classifier;

/// DTW distance between two series with an optional Sakoe–Chiba window.
///
/// With `window = None` the full alignment matrix is evaluated; with
/// `Some(w)` the warping path is constrained to `|i − j| ≤ w` (after the
/// standard length-difference adjustment), which is both faster and a
/// better metric for near-aligned series.
///
/// Returns `f64::INFINITY` if either series is empty.
///
/// # Example
///
/// ```
/// use rfp_ml::dtw::dtw_distance;
/// let a = [0.0, 1.0, 2.0, 3.0];
/// assert_eq!(dtw_distance(&a, &a, None), 0.0);
/// // A shifted copy is closer under DTW than under lockstep distance:
/// let b = [0.0, 0.0, 1.0, 2.0];
/// assert!(dtw_distance(&a, &b, None) < 3.0);
/// ```
pub fn dtw_distance(a: &[f64], b: &[f64], window: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return f64::INFINITY;
    }
    let w = match window {
        // Window must at least bridge the length difference.
        Some(w) => w.max(n.abs_diff(m)),
        None => n.max(m),
    };
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(f64::INFINITY);
        let j_lo = 1.max(i.saturating_sub(w));
        let j_hi = m.min(i + w);
        for j in j_lo..=j_hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// A 1-nearest-neighbour classifier under DTW distance over stored
/// template series.
///
/// # Example
///
/// ```
/// use rfp_ml::{dtw::DtwNearestNeighbor, Classifier};
/// let mut nn = DtwNearestNeighbor::new(2, Some(3));
/// nn.add_template(vec![0.0, 0.0, 0.0], 0);
/// nn.add_template(vec![0.0, 1.0, 2.0], 1);
/// assert_eq!(nn.predict(&[0.1, -0.1, 0.05]), 0);
/// assert_eq!(nn.predict(&[0.2, 1.1, 1.9]), 1);
/// ```
#[derive(Debug, Clone)]
pub struct DtwNearestNeighbor {
    templates: Vec<(Vec<f64>, usize)>,
    n_classes: usize,
    window: Option<usize>,
}

impl DtwNearestNeighbor {
    /// Creates an empty classifier over `n_classes` with the given warping
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if `n_classes == 0`.
    pub fn new(n_classes: usize, window: Option<usize>) -> Self {
        assert!(n_classes > 0);
        DtwNearestNeighbor { templates: Vec::new(), n_classes, window }
    }

    /// Adds one labelled template series.
    ///
    /// # Panics
    ///
    /// Panics if `label >= n_classes` or the series is empty.
    pub fn add_template(&mut self, series: Vec<f64>, label: usize) {
        assert!(label < self.n_classes, "label out of range");
        assert!(!series.is_empty(), "empty template series");
        self.templates.push((series, label));
    }

    /// Number of stored templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// DTW distance from `series` to the nearest template of each class
    /// (`f64::INFINITY` for classes with no templates). Useful for
    /// confidence inspection.
    pub fn class_distances(&self, series: &[f64]) -> Vec<f64> {
        let mut dist = vec![f64::INFINITY; self.n_classes];
        for (t, l) in &self.templates {
            let d = dtw_distance(series, t, self.window);
            if d < dist[*l] {
                dist[*l] = d;
            }
        }
        dist
    }
}

impl Classifier for DtwNearestNeighbor {
    /// # Panics
    ///
    /// Panics if no templates have been added.
    fn predict(&self, features: &[f64]) -> usize {
        assert!(!self.templates.is_empty(), "no templates");
        self.templates
            .iter()
            .map(|(t, l)| (dtw_distance(features, t, self.window), *l))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"))
            .map(|(_, l)| l)
            .expect("nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_distance_zero() {
        let s = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&s, &s, None), 0.0);
        assert_eq!(dtw_distance(&s, &s, Some(1)), 0.0);
    }

    #[test]
    fn symmetric() {
        let a = [0.0, 1.0, 0.5];
        let b = [0.2, 0.9, 0.1, 0.3];
        assert!((dtw_distance(&a, &b, None) - dtw_distance(&b, &a, None)).abs() < 1e-12);
    }

    #[test]
    fn empty_series_infinite() {
        assert_eq!(dtw_distance(&[], &[1.0], None), f64::INFINITY);
        assert_eq!(dtw_distance(&[1.0], &[], None), f64::INFINITY);
    }

    #[test]
    fn warping_beats_lockstep_on_shifted_series() {
        let a: Vec<f64> = (0..20).map(|i| ((i as f64) * 0.5).sin()).collect();
        // b is a delayed by 2 samples.
        let b: Vec<f64> = (0..20)
            .map(|i| (((i as f64) - 2.0).max(0.0) * 0.5).sin())
            .collect();
        let lockstep: f64 = a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum();
        let dtw = dtw_distance(&a, &b, None);
        assert!(dtw < lockstep, "dtw {dtw} lockstep {lockstep}");
    }

    #[test]
    fn window_constrains_warping() {
        let a: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..30).map(|i| i as f64 + 5.0).collect();
        // Tight window forces near-lockstep alignment → larger distance.
        let tight = dtw_distance(&a, &b, Some(0));
        let loose = dtw_distance(&a, &b, None);
        assert!(tight >= loose);
    }

    #[test]
    fn different_lengths_supported() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 2.0, 4.0];
        let d = dtw_distance(&a, &b, Some(1));
        assert!(d.is_finite());
    }

    #[test]
    fn nearest_neighbour_classifies() {
        let mut nn = DtwNearestNeighbor::new(2, None);
        for k in 0..5 {
            let flat: Vec<f64> = (0..10).map(|_| 0.1 * k as f64).collect();
            let ramp: Vec<f64> = (0..10).map(|i| 0.3 * i as f64 + 0.1 * k as f64).collect();
            nn.add_template(flat, 0);
            nn.add_template(ramp, 1);
        }
        assert_eq!(nn.template_count(), 10);
        assert_eq!(nn.predict(&[0.2; 10]), 0);
        let q: Vec<f64> = (0..10).map(|i| 0.28 * i as f64).collect();
        assert_eq!(nn.predict(&q), 1);
        let d = nn.class_distances(&[0.2; 10]);
        assert!(d[0] < d[1]);
    }

    #[test]
    #[should_panic]
    fn predict_without_templates_panics() {
        let nn = DtwNearestNeighbor::new(1, None);
        let _ = nn.predict(&[1.0]);
    }
}
