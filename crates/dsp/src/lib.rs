//! Signal pre-processing and robust fitting for RF-Prism.
//!
//! This crate implements the paper's *signal pre-processing module*
//! (Section III) and the estimation primitives used by the disentangler:
//!
//! * [`preprocess`] — turning raw per-read reader reports into one clean
//!   unwrapped phase per channel: π-jump correction (COTS readers flip the
//!   reported phase by π at random), circular per-channel averaging, and
//!   2π unwrapping across channels.
//! * [`linfit`] — ordinary/weighted least-squares and Theil–Sen line fits
//!   with goodness-of-fit diagnostics. Linear fitting is the workhorse of
//!   the whole system: the multi-frequency model (paper Eq. 6) reduces each
//!   antenna's observation to the slope and intercept of a line.
//! * [`robust`] — iterative outlier-channel rejection, the paper's
//!   *multipath suppression* (Section V-D): when a minority of channels is
//!   corrupted by frequency-selective multipath, drop them and keep the
//!   "clean" line.
//! * [`streaming`] — the incremental sliding-window front end
//!   ([`StreamingWindow`]): per-channel accumulators that update on read
//!   arrival and downdate on expiry, so advancing a window by `k` reads
//!   costs `O(k + channels)` instead of a batch recompute, with a
//!   bit-identical full-recompute fallback whenever downdating would lose
//!   precision.
//! * [`stats`] — small statistics helpers (mean, std, median, MAD,
//!   percentiles, empirical CDFs) shared by the solver and the experiment
//!   harness.
//! * [`trig`] — the pre-processing trigonometry backends
//!   ([`TrigProvider`]): quantized phase-code tables (bit-identical to
//!   libm, proven exhaustively over all 4096 codes), a bounded-error
//!   polynomial for continuous phases, and the libm oracle.
//! * [`workspace`] — reusable flat scratch buffers
//!   ([`FrontEndWorkspace`], [`FitWorkspace`]) that make the whole front
//!   end allocation-free in steady state; the `*_with` kernel variants in
//!   [`preprocess`], [`linfit`] and [`robust`] run against them.
//! * [`mod@reference`] — the pre-optimization allocating implementations,
//!   frozen verbatim as the benchmark baseline and property-test oracle.
//!
//! # Example: from noisy wrapped samples to a fitted line
//!
//! ```
//! use rfp_dsp::linfit::ols;
//! use rfp_geom::angle;
//!
//! // Wrapped phase samples of a steep line.
//! let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
//! let wrapped: Vec<f64> = xs.iter().map(|x| angle::wrap_tau(0.9 * x + 1.0)).collect();
//! let unwrapped = angle::unwrapped(&wrapped);
//! let fit = ols(&xs, &unwrapped).unwrap();
//! assert!((fit.slope - 0.9).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linfit;
pub mod preprocess;
pub mod reference;
pub mod robust;
pub mod stats;
pub mod streaming;
pub mod trig;
pub mod workspace;

pub use linfit::{ols, theil_sen_with, weighted_ols, LineFit};
pub use preprocess::{
    preprocess_reads, preprocess_reads_with, ChannelObservation, PreprocessConfig, RawRead,
};
pub use robust::{
    huber_line_fit, huber_line_fit_with, robust_line_fit, robust_line_fit_with,
    robust_line_fit_with_sensitivity, RobustFit, RobustFitConfig, RobustSummary,
};
pub use streaming::{
    StreamExtract, StreamingConfig, StreamingError, StreamingStats, StreamingWindow,
};
pub use trig::TrigProvider;
pub use workspace::{FitWorkspace, FrontEndWorkspace, OlsSums};
