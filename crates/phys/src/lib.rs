//! Shared physical forward models for the RF-Prism workspace.
//!
//! This crate holds *the* model of how an RFID phase reading comes to be —
//! the equations of Section IV of the paper. It is deliberately shared
//! between the testbed simulator (`rfp-sim`, which runs the model forward and
//! then corrupts it with noise, quantization, π jumps and multipath) and the
//! disentangler (`rfp-core`, which inverts the clean model). Keeping one copy
//! makes the inversion honest: the solver never sees the simulator's noise
//! internals, only the physics both sides agree on.
//!
//! The components, mirroring Eq. (1) of the paper
//! `θ = (θ_prop + θ_orient + θ_reader + θ_tag) mod 2π`:
//!
//! * [`propagation`] — `θ_prop(f) = 4π d f / c` (Eq. 3) plus free-space /
//!   backscatter path loss for RSSI.
//! * [`polarization`] — `θ_orient` between a circularly-polarized reader
//!   antenna and a linearly-polarized tag (Eq. 4).
//! * [`tag`] — `θ_device(f) = θ_reader + θ_tag`, produced by a resonant
//!   (RLC) model of the tag antenna whose resonance is detuned by the
//!   attached material; over the 902–928 MHz band the reflection phase is
//!   close to linear in `f` (Eq. 5), with material-specific slope `k_t` and
//!   intercept `b_t`.
//! * [`material`] — the eight-material database of the paper's evaluation
//!   (wood, plastic, glass, metal, water, skim milk, edible oil, alcohol).
//! * [`freq`] — the FCC UHF hopping plan of the ImpinJ R420
//!   (50 channels, 902.75–927.25 MHz).
//! * [`rssi`] — received-power model used by the Tagtag baseline.
//!
//! # Example: composing a clean phase reading
//!
//! ```
//! use rfp_geom::{AntennaPose, Vec2, Vec3};
//! use rfp_phys::{freq::FrequencyPlan, polarization, propagation, tag::TagElectrical};
//! use rfp_phys::material::Material;
//!
//! let plan = FrequencyPlan::fcc_us();
//! let antenna = AntennaPose::planar(Vec2::new(0.0, 0.0), Vec2::new(0.0, 2.0), 0.0);
//! let tag_pos = Vec3::new(0.3, 1.5, 0.0);
//! let dipole = Vec3::new(1.0, 0.0, 0.0);
//! let electrical = TagElectrical::nominal().with_material(Material::Glass);
//!
//! let f = plan.frequency_hz(0);
//! let theta = propagation::phase(antenna.position().distance(tag_pos), f)
//!     + polarization::orientation_phase(&antenna, dipole)
//!     + electrical.device_phase(f);
//! assert!(theta.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod constants;
pub mod freq;
pub mod material;
pub mod polarization;
pub mod propagation;
pub mod rssi;
pub mod tag;

pub use freq::FrequencyPlan;
pub use material::Material;
pub use tag::TagElectrical;
