//! The `rf-prism` command-line entry point. All logic lives in
//! `rfp_cli::commands` so it is unit-testable; this file only routes.

use rfp_cli::commands;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("simulate") => commands::simulate(&args[1..]).map(Output::Stdout),
        Some("sense") => run_sense(&args[1..]),
        Some("stream") => commands::stream(&args[1..]).map(Output::Stdout),
        Some("calibrate") => commands::calibrate(&args[1..]).map(Output::Stdout),
        Some("help") | None => Ok(Output::Stdout(commands::usage())),
        Some(other) => Err(commands::CommandError::Usage(format!(
            "unknown subcommand `{other}`\n\n{}",
            commands::usage()
        ))),
    };
    match result {
        Ok(Output::Stdout(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

enum Output {
    Stdout(String),
}

fn run_sense(args: &[String]) -> Result<Output, commands::CommandError> {
    // `--trace`, `--warm` and `--tuned` are bare switches; split them out
    // before the strict `--key value` parser sees the remainder.
    let mut trace = false;
    let mut warm = false;
    let mut tuned = false;
    let rest: Vec<String> = args
        .iter()
        .filter(|a| match a.as_str() {
            "--trace" => {
                trace = true;
                false
            }
            "--warm" => {
                warm = true;
                false
            }
            "--tuned" => {
                tuned = true;
                false
            }
            _ => true,
        })
        .cloned()
        .collect();
    let flags = commands::parse_flags(&rest)?;
    let log_path = flags
        .iter()
        .find(|(k, _)| k == "log")
        .map(|(_, v)| v.clone())
        .ok_or_else(|| commands::CommandError::Usage("sense needs --log <file>".into()))?;
    let log_text = std::fs::read_to_string(&log_path)?;
    let calib_text = match flags.iter().find(|(k, _)| k == "calib") {
        Some((_, path)) => Some(std::fs::read_to_string(path)?),
        None => None,
    };
    let jobs: usize = match flags.iter().find(|(k, _)| k == "jobs") {
        Some((_, v)) => v.parse().map_err(|_| {
            commands::CommandError::Usage(
                "--jobs expects a worker count (0 = all CPUs)".into(),
            )
        })?,
        None => 1,
    };
    let metrics_path = flags.iter().find(|(k, _)| k == "metrics").map(|(_, v)| v.clone());
    let (text, run) = commands::sense_observed(&log_text, calib_text.as_deref(), jobs, warm, tuned)?;
    let run = run.with_meta("log", &log_path);
    if let Some(path) = metrics_path {
        rfp_obs::report::write_json(std::path::Path::new(&path), &run.to_json())?;
    }
    if trace {
        eprint!("{}", run.summary());
    }
    Ok(Output::Stdout(text))
}
