//! Figs. 17–19: per-material identification accuracy, RF-Prism vs Tagtag,
//! under three regimes — everything fixed / varying distance / varying
//! distance + orientation.
//!
//! Paper: roughly equal when fixed; Tagtag loses ~7 points once the
//! distance varies (its RSS normalization is biased by lossy materials);
//! rotation adds nothing further (Tagtag's channel hopping cancels it).

use rfp_bench::compare::{tagtag_comparison, TagtagSetup};
use rfp_bench::report;
use rfp_phys::Material;
use rfp_sim::Scene;

fn main() {
    let scene = Scene::standard_2d();
    let reps = 24;
    for (fig, setup_kind) in [
        ("Fig. 17", TagtagSetup::Fixed),
        ("Fig. 18", TagtagSetup::VaryDistance),
        ("Fig. 19", TagtagSetup::VaryBoth),
    ] {
        report::header(
            fig,
            &format!("per-material accuracy, setup `{}`", setup_kind.label()),
        );
        let cmp = tagtag_comparison(&scene, setup_kind, reps);
        println!("{:>9} {:>12} {:>12}", "material", "RF-Prism", "Tagtag");
        for (i, m) in Material::CLASSES.iter().enumerate() {
            println!(
                "{:>9} {:>12} {:>12}",
                m.label(),
                report::pct(cmp.prism.class_accuracy(i).unwrap_or(0.0)),
                report::pct(cmp.tagtag.class_accuracy(i).unwrap_or(0.0)),
            );
        }
        report::row(
            "overall RF-Prism",
            match setup_kind {
                TagtagSetup::Fixed => "88.1 %",
                TagtagSetup::VaryDistance => "88.0 %",
                TagtagSetup::VaryBoth => "87.9 %",
            },
            &report::pct(cmp.prism.accuracy()),
        );
        report::row(
            "overall Tagtag",
            match setup_kind {
                TagtagSetup::Fixed => "85.0 %",
                TagtagSetup::VaryDistance => "80.7 %",
                TagtagSetup::VaryBoth => "80.5 %",
            },
            &report::pct(cmp.tagtag.accuracy()),
        );

        // Shape assertions.
        match setup_kind {
            TagtagSetup::Fixed => {
                assert!(
                    cmp.tagtag.accuracy() > 0.6,
                    "Tagtag must be competitive when nothing varies ({})",
                    cmp.tagtag.accuracy()
                );
            }
            TagtagSetup::VaryDistance | TagtagSetup::VaryBoth => {
                assert!(
                    cmp.prism.accuracy() > cmp.tagtag.accuracy(),
                    "RF-Prism must win once factors vary ({} vs {})",
                    cmp.prism.accuracy(),
                    cmp.tagtag.accuracy()
                );
            }
        }
    }
}
