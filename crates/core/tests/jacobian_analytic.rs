//! Analytic-Jacobian verification (DESIGN.md §6): across random scenes,
//! poses and evaluation points, the closed-form `∂r/∂p` of the 2-D and
//! 3-D residuals must agree with central differences to ≤ 1e-6
//! elementwise, and the analytic and numeric-fallback LM paths must
//! converge to the same optimum on clean synthetic scenes.

use proptest::prelude::*;
use rfp_core::model::AntennaObservation;
use rfp_core::solver::{
    residuals_2d, residuals_and_jacobian_2d, solve_2d, JacobianMode, SolverConfig,
};
use rfp_core::solver3d::{
    residuals_3d, residuals_and_jacobian_3d, solve_3d, Solver3DConfig,
};
use rfp_geom::{angle, AntennaPose, Vec2, Vec3};
use rfp_phys::polarization::{orientation_phase, planar_dipole};
use rfp_phys::propagation;
use rfp_sim::Scene;

/// Central-difference steps matching the solver's numeric fallback.
const STEPS_2D: [f64; 5] = [1e-4, 1e-4, 1e-4, 1e-13, 1e-4];
const STEPS_3D: [f64; 7] = [1e-4, 1e-4, 1e-4, 1e-4, 1e-4, 1e-13, 1e-4];

/// Exact observations straight from the forward model (no simulator, no
/// RSSI — the mode penalty is disabled by the `-∞` RSSI of `from_line`).
fn observations_from_truth(
    poses: &[AntennaPose],
    pos: Vec3,
    w: Vec3,
    kt: f64,
    bt: f64,
) -> Vec<AntennaObservation> {
    poses
        .iter()
        .map(|&pose| {
            let d = pose.position().distance(pos);
            AntennaObservation::from_line(
                pose,
                propagation::slope_from_distance(d) + kt,
                orientation_phase(&pose, w) + bt,
            )
        })
        .collect()
}

/// Asserts elementwise agreement of an analytic Jacobian with central
/// differences of the residual function.
fn assert_jacobian_matches<R>(residual: R, jac: &[f64], p: &[f64], steps: &[f64], m: usize)
where
    R: Fn(&[f64], &mut Vec<f64>),
{
    let n = p.len();
    let mut r_plus = Vec::new();
    let mut r_minus = Vec::new();
    let mut work = p.to_vec();
    for j in 0..n {
        let h = steps[j];
        work[j] = p[j] + h;
        residual(&work, &mut r_plus);
        work[j] = p[j] - h;
        residual(&work, &mut r_minus);
        work[j] = p[j];
        for i in 0..m {
            let num = (r_plus[i] - r_minus[i]) / (2.0 * h);
            let ana = jac[i * n + j];
            let tol = 1e-6 * (1.0 + ana.abs().max(num.abs()));
            assert!(
                (ana - num).abs() <= tol,
                "Jacobian entry ({i},{j}): analytic {ana} vs central-diff {num}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// 2-D: the analytic Jacobian agrees with central differences at
    /// random evaluation points near random truths.
    #[test]
    fn analytic_jacobian_2d_matches_central_differences(
        x in -0.4f64..1.4,
        y in 0.6f64..2.4,
        alpha in 0.0f64..std::f64::consts::PI,
        kt in -5e-8f64..5e-8,
        bt in 0.0f64..std::f64::consts::TAU,
        dx in -0.05f64..0.05,
        dy in -0.05f64..0.05,
        dalpha in -0.05f64..0.05,
        dbt in -0.05f64..0.05,
    ) {
        let poses = Scene::standard_2d().antenna_poses();
        let obs = observations_from_truth(
            &poses,
            Vec2::new(x, y).with_z(0.0),
            planar_dipole(alpha),
            kt,
            bt,
        );
        let config = SolverConfig::default();
        let p = [x + dx, y + dy, alpha + dalpha, kt, bt + dbt];
        let mut r = Vec::new();
        let mut jac = Vec::new();
        residuals_and_jacobian_2d(&obs, &p, &config, &mut r, Some(&mut jac));
        assert_jacobian_matches(
            |q: &[f64], out: &mut Vec<f64>| residuals_2d(&obs, q, &config, out),
            &jac,
            &p,
            &STEPS_2D,
            r.len(),
        );
    }

    /// 3-D: same agreement for the 7-parameter residuals over random
    /// positions and dipole directions.
    #[test]
    fn analytic_jacobian_3d_matches_central_differences(
        x in 0.0f64..1.2,
        y in 0.8f64..2.0,
        z in 0.1f64..1.2,
        theta in 0.1f64..1.47,
        phi in 0.0f64..std::f64::consts::TAU,
        kt in -5e-8f64..5e-8,
        bt in 0.0f64..std::f64::consts::TAU,
        dpos in -0.04f64..0.04,
        dang in -0.04f64..0.04,
    ) {
        let poses = Scene::six_antenna_3d().antenna_poses();
        let (st, ct) = theta.sin_cos();
        let (sp, cp) = phi.sin_cos();
        let w = Vec3::new(st * cp, st * sp, ct);
        // Near-degenerate polarization geometry (dipole almost parallel to
        // an antenna's boresight) makes θ_orient vary arbitrarily fast;
        // central differences are meaningless there, so skip those draws.
        for pose in &poses {
            let uw = pose.u().dot(w);
            let vw = pose.v().dot(w);
            prop_assume!(uw * uw + vw * vw > 1e-2);
        }
        let obs = observations_from_truth(&poses, Vec3::new(x, y, z), w, kt, bt);
        let config = Solver3DConfig::default();
        let p = [
            x + dpos,
            y - dpos,
            z + dpos,
            theta + dang,
            phi - dang,
            kt,
            bt + dang,
        ];
        let mut r = Vec::new();
        let mut jac = Vec::new();
        residuals_and_jacobian_3d(&obs, &p, &config, &mut r, Some(&mut jac));
        assert_jacobian_matches(
            |q: &[f64], out: &mut Vec<f64>| residuals_3d(&obs, q, &config, out),
            &jac,
            &p,
            &STEPS_3D,
            r.len(),
        );
    }

    /// Analytic and numeric LM land on the same optimum — the exact truth —
    /// to well within 1e-9 on clean synthetic 2-D scenes.
    #[test]
    fn analytic_and_numeric_lm_converge_identically_2d(
        x in -0.3f64..1.3,
        y in 0.7f64..2.3,
        alpha in 0.05f64..3.0,
        kt in -4e-8f64..4e-8,
        bt in 0.1f64..6.0,
    ) {
        let scene = Scene::standard_2d();
        let poses = scene.antenna_poses();
        let obs = observations_from_truth(
            &poses,
            Vec2::new(x, y).with_z(0.0),
            planar_dipole(alpha),
            kt,
            bt,
        );
        let analytic = solve_2d(&obs, scene.region(), &SolverConfig::default()).unwrap();
        let numeric_cfg =
            SolverConfig { jacobian: JacobianMode::Numeric, ..SolverConfig::default() };
        let numeric = solve_2d(&obs, scene.region(), &numeric_cfg).unwrap();
        prop_assert!(analytic.position.distance(numeric.position) < 1e-9);
        prop_assert!(angle::dipole_distance(analytic.orientation, numeric.orientation) < 1e-9);
        prop_assert!((analytic.kt - numeric.kt).abs() < 1e-15);
        prop_assert!(angle::distance(analytic.bt, numeric.bt) < 1e-9);
        // And both are at the truth.
        prop_assert!(analytic.position.distance(Vec2::new(x, y)) < 1e-9);
    }
}

/// Pinned (non-random) convergence check, 3-D included: the analytic and
/// numeric paths agree on a specific clean scene.
#[test]
fn pinned_analytic_numeric_agreement_3d() {
    let scene = Scene::six_antenna_3d();
    let poses = scene.antenna_poses();
    let theta = 0.8f64;
    let phi = 2.1f64;
    let (st, ct) = theta.sin_cos();
    let (sp, cp) = phi.sin_cos();
    let w = Vec3::new(st * cp, st * sp, ct);
    let obs =
        observations_from_truth(&poses, Vec3::new(0.6, 1.4, 0.7), w, -2.3e-8, 1.1);
    let analytic =
        solve_3d(&obs, scene.region(), (0.0, 1.5), &Solver3DConfig::default()).unwrap();
    let numeric_cfg =
        Solver3DConfig { jacobian: JacobianMode::Numeric, ..Solver3DConfig::default() };
    let numeric = solve_3d(&obs, scene.region(), (0.0, 1.5), &numeric_cfg).unwrap();
    assert!(analytic.position.distance(numeric.position) < 1e-9);
    assert!(analytic.dipole_axis_error(numeric.dipole) < 1e-9);
    assert!((analytic.kt - numeric.kt).abs() < 1e-14);
    assert!(angle::distance(analytic.bt, numeric.bt) < 1e-9);
    assert!(analytic.position.distance(Vec3::new(0.6, 1.4, 0.7)) < 1e-9);
}
