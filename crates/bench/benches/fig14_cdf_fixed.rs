//! Fig. 14: localization error CDF with fixed orientation and material —
//! RF-Prism vs MobiTagbot.
//!
//! Paper: RF-Prism mean 7.33 cm (std 3.50, max 16 cm) vs MobiTagbot
//! 8.25 cm (std 3.73): *the same level* when no entangled factor varies.

use rfp_bench::{compare, loc, report, setup};
use rfp_dsp::stats;
use rfp_phys::Material;
use rfp_sim::{MultipathEnvironment, Scene};

fn main() {
    report::header("Fig. 14", "CDF, fixed orientation + material: RF-Prism vs MobiTagbot");
    // Even a tidy lab has residual multipath; a perfectly clean channel
    // would let the hologram reach unrealistic carrier-phase precision.
    let scene = Scene::standard_2d()
        .with_environment(MultipathEnvironment::cluttered(3, 71));
    // 25 positions × reps, everything else frozen (α = 0, plastic carrier —
    // the same state MobiTagbot was calibrated in).
    let mut specs = Vec::new();
    let mut seed = 0u64;
    for position in setup::evaluation_grid(&scene) {
        for rep in 0..6u64 {
            seed += 1;
            specs.push(loc::TrialSpec {
                tag_seed: 1 + (seed % 5),
                material: Material::Plastic,
                position,
                alpha: 0.0,
                survey_seed: 30_000 + seed * 3 + rep,
            });
        }
    }
    let cmp = compare::mobitagbot_comparison(&scene, &specs, Material::Plastic);

    report::cdf_summary("RF-Prism", &cmp.prism_cm);
    report::cdf_summary("MobiTagbot", &cmp.mobitagbot_cm);
    println!();
    let prism_mean = stats::mean(&cmp.prism_cm).unwrap();
    let mtb_mean = stats::mean(&cmp.mobitagbot_cm).unwrap();
    report::row("RF-Prism mean", "7.33 cm", &report::cm(prism_mean));
    report::row("MobiTagbot mean", "8.25 cm", &report::cm(mtb_mean));

    // Shape: same level when nothing varies (within ~2×).
    assert!(
        mtb_mean < 2.5 * prism_mean + 2.0,
        "with everything fixed the two systems must be comparable \
         ({prism_mean} vs {mtb_mean})"
    );
}
