//! Tagtag-style material identification.
//!
//! Tagtag identifies the material a tag is attached to by matching the
//! tag's phase-vs-channel curve against labelled template curves. Two
//! normalizations stand in for RF-Prism's disentangling:
//!
//! 1. **Distance**: a coarse range estimate from the RSS readings
//!    (`d⁴` backscatter law) removes the propagation slope. The estimate
//!    is biased whenever the material itself absorbs power — the paper's
//!    explanation for Tagtag's degradation at varying distance (Fig. 18).
//! 2. **Orientation**: the per-curve mean is subtracted; since the
//!    orientation term is constant across channels, de-meaning cancels it
//!    (their "channel hopping" trick, which is why rotation does not widen
//!    the gap further in Fig. 20).
//!
//! The residual curves are compared with Dynamic Time Warping and
//! classified 1-NN, as in the original.

use rfp_core::model::{extract_observation, AntennaObservation, ExtractConfig, ExtractError};
use rfp_dsp::preprocess::RawRead;
use rfp_geom::AntennaPose;
use rfp_ml::dtw::DtwNearestNeighbor;
use rfp_ml::Classifier;
use rfp_phys::rssi::coarse_distance_from_rssi;
use rfp_phys::{propagation, Material};

/// The Tagtag baseline classifier.
#[derive(Debug, Clone)]
pub struct Tagtag {
    poses: Vec<AntennaPose>,
    templates: DtwNearestNeighbor,
    channel_count: usize,
}

/// Errors from the Tagtag pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TagtagError {
    /// No antenna produced a usable observation.
    NoUsableObservations {
        /// First extraction failure, if any.
        first_error: Option<ExtractError>,
    },
}

impl std::fmt::Display for TagtagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TagtagError::NoUsableObservations { .. } => {
                write!(f, "no antenna produced a usable observation")
            }
        }
    }
}

impl std::error::Error for TagtagError {}

impl Tagtag {
    /// Creates an empty classifier for antennas at `poses` over a plan with
    /// `channel_count` channels.
    ///
    /// # Panics
    ///
    /// Panics if `poses` is empty or `channel_count` is zero.
    pub fn new(poses: Vec<AntennaPose>, channel_count: usize) -> Self {
        assert!(!poses.is_empty(), "need at least one antenna");
        assert!(channel_count > 0, "need at least one channel");
        Tagtag {
            poses,
            // A small warping window: curves are already channel-aligned.
            templates: DtwNearestNeighbor::new(Material::CLASSES.len(), Some(3)),
            channel_count,
        }
    }

    /// Extracts Tagtag's normalized residual curve from one hop round.
    ///
    /// # Errors
    ///
    /// [`TagtagError::NoUsableObservations`] if every antenna fails
    /// extraction.
    pub fn features(
        &self,
        reads_per_antenna: &[Vec<RawRead>],
    ) -> Result<Vec<f64>, TagtagError> {
        assert_eq!(
            reads_per_antenna.len(),
            self.poses.len(),
            "one read group per antenna"
        );
        let mut curves: Vec<Vec<f64>> = Vec::new();
        let mut first_error = None;
        for (pose, reads) in self.poses.iter().zip(reads_per_antenna) {
            match extract_observation(*pose, reads, &ExtractConfig::paper()) {
                Ok(obs) => curves.push(self.residual_curve(&obs)),
                Err(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        }
        if curves.is_empty() {
            return Err(TagtagError::NoUsableObservations { first_error });
        }
        // Average the per-antenna residual curves channel-wise.
        let mut mean = vec![0.0f64; self.channel_count];
        let mut counts = vec![0usize; self.channel_count];
        for curve in &curves {
            for (j, v) in curve.iter().enumerate() {
                if v.is_finite() {
                    mean[j] += v;
                    counts[j] += 1;
                }
            }
        }
        for (m, &c) in mean.iter_mut().zip(&counts) {
            if c > 0 {
                *m /= c as f64;
            }
        }
        Ok(mean)
    }

    /// Residual phase curve of one antenna: measured unwrapped phase minus
    /// the RSS-ranged propagation estimate, de-meaned.
    fn residual_curve(&self, obs: &AntennaObservation) -> Vec<f64> {
        let d_hat = coarse_distance_from_rssi(obs.mean_rssi_dbm).max(0.05);
        let mut curve = vec![f64::NAN; self.channel_count];
        let mut vals = Vec::with_capacity(obs.channels.len());
        for (c, &inlier) in obs.channels.iter().zip(&obs.channel_inliers) {
            if !inlier || c.channel >= self.channel_count {
                continue;
            }
            let v = c.phase - propagation::phase(d_hat, c.frequency_hz);
            curve[c.channel] = v;
            vals.push(v);
        }
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        for v in &mut curve {
            if v.is_finite() {
                *v -= mean;
            } else {
                *v = 0.0; // missing channel: neutral value
            }
        }
        curve
    }

    /// Adds a labelled training example (already-extracted features).
    pub fn add_example(&mut self, features: Vec<f64>, material: Material) {
        let label = material.class_index().expect("training label must be a class");
        self.templates.add_template(features, label);
    }

    /// Number of stored templates.
    pub fn template_count(&self) -> usize {
        self.templates.template_count()
    }

    /// Identifies the material for an extracted feature curve.
    ///
    /// # Panics
    ///
    /// Panics if no training examples have been added.
    pub fn identify(&self, features: &[f64]) -> Material {
        Material::from_class_index(self.templates.predict(features))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfp_geom::Vec2;
    use rfp_sim::{Motion, NoiseModel, ReaderConfig, Scene, SimTag};

    fn scene() -> Scene {
        Scene::standard_2d()
            .with_noise(NoiseModel::clean())
            .with_reader(ReaderConfig::ideal())
    }

    fn survey_features(
        tagtag: &Tagtag,
        scene: &Scene,
        material: Material,
        pos: Vec2,
        seed: u64,
    ) -> Vec<f64> {
        let tag = SimTag::nominal(1)
            .attached_to(material)
            .with_motion(Motion::planar_static(pos, 0.0));
        let survey = scene.survey(&tag, seed);
        tagtag.features(&survey.per_antenna).unwrap()
    }

    #[test]
    fn distinguishes_materials_at_fixed_position() {
        let scene = scene();
        let mut tagtag = Tagtag::new(scene.antenna_poses(), 50);
        let pos = Vec2::new(0.5, 1.2);
        for (i, &m) in Material::CLASSES.iter().enumerate() {
            let f = survey_features(&tagtag, &scene, m, pos, 10 + i as u64);
            tagtag.add_example(f, m);
        }
        assert_eq!(tagtag.template_count(), 8);
        // Same position, new measurement noise seed: must classify right.
        for (i, &m) in Material::CLASSES.iter().enumerate() {
            let f = survey_features(&tagtag, &scene, m, pos, 50 + i as u64);
            assert_eq!(tagtag.identify(&f), m, "material {m}");
        }
    }

    #[test]
    fn metal_confused_more_when_distance_changes() {
        // Fig. 18's mechanism: the RSS range estimate is biased by lossy
        // materials, so training at one distance and testing at another
        // tilts the residual curve.
        let scene = scene();
        let tagtag_pos = Vec2::new(0.5, 1.0);
        let mut tagtag = Tagtag::new(scene.antenna_poses(), 50);
        for (i, &m) in Material::CLASSES.iter().enumerate() {
            let f = survey_features(&tagtag, &scene, m, tagtag_pos, 20 + i as u64);
            tagtag.add_example(f, m);
        }
        // The curve for water far away should differ from the water
        // template more than the same-position curve does.
        let near = survey_features(&tagtag, &scene, Material::Water, tagtag_pos, 77);
        let far = survey_features(&tagtag, &scene, Material::Water, Vec2::new(1.2, 2.3), 78);
        let d_near: f64 = near.iter().zip(&far).map(|(a, b)| (a - b).abs()).sum();
        assert!(d_near > 0.1, "distance change must alter the curve (Σ|Δ| = {d_near})");
    }

    #[test]
    fn features_have_fixed_length_and_zero_mean() {
        let scene = scene();
        let tagtag = Tagtag::new(scene.antenna_poses(), 50);
        let f = survey_features(&tagtag, &scene, Material::Wood, Vec2::new(0.3, 1.5), 5);
        assert_eq!(f.len(), 50);
        let mean: f64 = f.iter().sum::<f64>() / 50.0;
        assert!(mean.abs() < 0.2, "roughly de-meaned, got {mean}");
    }

    #[test]
    fn errors_without_reads() {
        let scene = scene();
        let tagtag = Tagtag::new(scene.antenna_poses(), 50);
        assert!(matches!(
            tagtag.features(&[Vec::new(), Vec::new(), Vec::new()]),
            Err(TagtagError::NoUsableObservations { .. })
        ));
    }
}
