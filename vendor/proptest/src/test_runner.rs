//! The case runner: configuration, the per-test RNG, and case outcomes.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng as _};

/// Runner configuration (subset of upstream's `ProptestConfig`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of `prop_assume!` rejections tolerated across the
    /// whole run before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed: the property is falsified.
    Fail(String),
    /// The case was discarded by `prop_assume!`.
    Reject(String),
}

impl TestCaseError {
    /// A failed-assertion outcome.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// A discarded-case outcome.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

/// The RNG handed to strategies. Deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn for_test(name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Uniform `f64` in `[low, high)`.
    pub fn gen_f64(&mut self, low: f64, high: f64) -> f64 {
        self.inner.gen_range(low..high)
    }

    /// Uniform `u64` in `[low, high)`.
    pub fn gen_u64(&mut self, low: u64, high: u64) -> u64 {
        self.inner.gen_range(low..high)
    }

    /// Uniform `usize` in `[low, high)`.
    pub fn gen_usize(&mut self, low: usize, high: usize) -> usize {
        self.inner.gen_range(low..high)
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        self.inner.gen::<f64>() < 0.5
    }
}

/// Drives one property: repeatedly samples arguments and evaluates the
/// body until `config.cases` cases succeed.
///
/// # Panics
///
/// Panics when a case fails (with the assertion message and case index) or
/// when `prop_assume!` rejects more than `config.max_global_rejects`
/// cases.
pub fn run<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::for_test(name);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut attempt: u32 = 0;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(reason)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected}) — last: {reason}"
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property `{name}` falsified at case {attempt} \
                     ({passed} passed, {rejected} rejected): {message}"
                );
            }
        }
        attempt += 1;
    }
}
