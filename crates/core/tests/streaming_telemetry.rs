//! Continuous-telemetry contract of the streaming engine (compiled only
//! with the `obs` feature): per-advance metric deltas tile the session's
//! end-of-run totals exactly, the latency histograms count one observation
//! per instrumented operation, the journal's deterministic tick tracks the
//! advance clock, and the streaming health rules fold to *healthy* over a
//! clean replay.

#![cfg(feature = "obs")]

use rfp_core::obs;
use rfp_core::RfPrism;
use rfp_geom::Vec2;
use rfp_obs::{MetricKind, MetricsSnapshot, TelemetryFrame};
use rfp_sim::{Motion, Scene, SimTag};

/// Drives `rounds` simulated rounds through a streaming session under a
/// fresh recorder, snapshotting a delta after every advance. Returns the
/// deltas, the final cumulative snapshot, the finished recorder, and the
/// number of successful advances.
fn replay_rounds(
    rounds: usize,
    seed: u64,
) -> (Vec<MetricsSnapshot>, MetricsSnapshot, rfp_obs::Recorder, u64) {
    let scene = Scene::standard_2d().with_noise(rfp_sim::NoiseModel::clean());
    let tag = SimTag::with_seeded_diversity(9)
        .with_motion(Motion::planar_static(Vec2::new(0.5, 1.5), 0.8));
    let stream = rfp_sim::stream_rounds(&scene, &tag, rounds, seed);
    let prism =
        RfPrism::new(scene.antenna_poses(), scene.reader().plan).with_region(scene.region());

    let mut deltas = Vec::new();
    let mut ok = 0u64;
    let ((), rec) = rfp_obs::recorder::observe(obs::METRICS, || {
        let mut session = prism.sense_streaming(scene.reader().round_duration_s());
        let mut last: Option<MetricsSnapshot> = None;
        for round in &stream {
            for (antenna, reads) in round.per_antenna.iter().enumerate() {
                for read in reads {
                    session.push(antenna, read);
                }
            }
            if let Ok(result) = session.advance(round.end_time_s) {
                ok += 1;
                session.recycle(result);
            }
            rfp_obs::recorder::with_current(|r| {
                let snap = r.metrics.snapshot();
                deltas.push(match &last {
                    Some(prev) => snap.delta_since(prev),
                    None => snap.clone(),
                });
                last = Some(snap);
            });
        }
    });
    let total = rec.metrics.snapshot();
    (deltas, total, rec, ok)
}

/// Per-advance deltas merged back together reproduce the cumulative
/// snapshot exactly — counters, gauges *and* histogram buckets — so a
/// frame stream loses nothing relative to the end-of-run report.
#[test]
fn per_advance_deltas_tile_the_session_totals() {
    let (deltas, total, _rec, ok) = replay_rounds(6, 17);
    assert_eq!(deltas.len(), 6);
    assert!(ok > 0, "clean fixture must produce estimates");

    let mut merged = MetricsSnapshot::zero(obs::METRICS);
    for delta in &deltas {
        merged.merge(delta);
    }
    for (idx, def) in obs::METRICS.iter().enumerate() {
        match def.kind {
            MetricKind::Counter => assert_eq!(
                merged.counter(idx),
                total.counter(idx),
                "counter {} does not tile",
                def.name
            ),
            MetricKind::Histogram => {
                let m = merged.histogram(idx).unwrap();
                let t = total.histogram(idx).unwrap();
                assert_eq!(m.count, t.count, "histogram {} count does not tile", def.name);
                assert_eq!(m.buckets, t.buckets, "histogram {} buckets do not tile", def.name);
            }
            // Gauges merge by max and delta by current level; a monotone
            // replay makes the final level the max, so they agree too.
            MetricKind::Gauge => assert_eq!(merged.gauge(idx), total.gauge(idx)),
        }
    }
}

/// The advance-latency histogram counts exactly one observation per
/// advance; the extract histogram counts one per antenna extraction (a
/// whole number of antennas per advance).
#[test]
fn latency_histograms_count_instrumented_operations() {
    let (_deltas, total, rec, _ok) = replay_rounds(5, 23);
    let advances = total.histogram(obs::id::STREAMING_ADVANCE_LATENCY_US).unwrap().count;
    assert_eq!(advances, 5, "one advance-latency observation per advance");
    let extracts = total.histogram(obs::id::STREAMING_EXTRACT_LATENCY_US).unwrap().count;
    assert!(extracts >= advances, "every advance extracts at least one antenna");
    assert_eq!(extracts % advances, 0, "extractions come in whole antenna sweeps");
    // The journal's deterministic tick is the advance clock.
    assert_eq!(rec.journal.tick(), advances);
    // Streaming work counters moved (windows update incrementally).
    assert!(total.counter(obs::id::STREAMING_UPDATES) > 0);
}

/// Folding the streaming health rules over the per-advance deltas of a
/// clean static replay yields *healthy* at every tick, and the verdicts
/// ride in well-formed telemetry frames.
#[test]
fn health_folds_healthy_over_a_clean_replay() {
    let (deltas, _total, _rec, _ok) = replay_rounds(6, 31);
    let mut evaluator = obs::streaming_health();
    for (k, delta) in deltas.iter().enumerate() {
        let report = evaluator.observe(delta);
        assert_eq!(
            report.verdict,
            rfp_obs::Health::Healthy,
            "tick {k} reasons: {:?}",
            report.reasons
        );
        let frame = TelemetryFrame::from_delta(k as u64, k as u64 + 1, delta, Some(report));
        let line = frame.to_jsonl_line();
        let back = TelemetryFrame::from_json(&line).expect("frame parses");
        assert_eq!(back, frame, "frame round-trips");
        assert!(!line.contains('\n'), "JSONL frames are single lines");
    }
}

/// Two identical replays produce byte-identical frame streams — the
/// deltas carry no wall-clock state (histograms are excluded from frames
/// by construction).
#[test]
fn frame_streams_are_reproducible_across_replays() {
    let frames = |seed| {
        let (deltas, _t, _r, _ok) = replay_rounds(4, seed);
        deltas
            .iter()
            .enumerate()
            .map(|(k, d)| TelemetryFrame::from_delta(k as u64, k as u64, d, None).to_jsonl_line())
            .collect::<Vec<_>>()
    };
    let a = frames(17);
    let b = frames(17);
    assert_eq!(a, b, "same log, same frames");
    assert!(!a.is_empty());
}
