//! State-of-the-art baselines the paper compares RF-Prism against.
//!
//! The original systems are closed-source MATLAB pipelines; each is
//! re-implemented here from its published description, operating on exactly
//! the same raw reads as RF-Prism so the comparisons are apples-to-apples:
//!
//! * [`mobitagbot`] — *MobiTagbot* (Shangguan & Jamieson, MobiSys'16): a
//!   channel-hopping hologram localizer. It matches the measured wrapped
//!   phases across channels and antennas against a propagation-only
//!   hypothesis, after a standard one-time bare-tag calibration. It cannot
//!   model orientation- or material-induced phase terms, which is the
//!   paper's point (Figs. 14–16): equal to RF-Prism when those factors are
//!   frozen, ~20 % worse under rotation, ~3× worse under material changes.
//! * [`tagtag`] — *Tagtag* (Xie et al., SenSys'19): material identification
//!   from phase/RSS curves. Distance is crudely removed with an
//!   RSS-derived range estimate and orientation with per-curve
//!   de-meaning (their channel-hopping trick); the residual curves are
//!   matched with DTW. Degrades when the RSS ranging is biased
//!   (Figs. 17–20).
//! * [`backpos`] — *BackPos* (Liu et al., TMC'15): hyperbolic positioning
//!   from pairwise phase differences. Implemented here on slope
//!   differences (its modern multi-frequency form); included as an extra
//!   reference point for the localization benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backpos;
pub mod mobitagbot;
pub mod tagtag;

pub use backpos::BackPos;
pub use mobitagbot::MobiTagbot;
pub use tagtag::Tagtag;
